//! Quickstart: deploy a fault-tolerant chain, push traffic through it, and
//! look at what the protocol did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn main() {
    // A classic enterprise chain (paper §1: "data center traffic commonly
    // passes through an intrusion detection system, a firewall, and a
    // network address translator"), tolerating f = 1 middlebox failure.
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Monitor { sharing_level: 1 }, // stands in for the IDS counters
            MbSpec::Firewall { rules: vec![] },
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 1),
            },
        ])
        .with_f(1),
    );

    println!(
        "deployed an FTC chain of {} replicas (f = {})",
        chain.len(),
        chain.cfg.f
    );

    // Send a few flows through.
    let packets = 200;
    for i in 0..packets {
        let pkt = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(192, 168, 1, 10), 5000 + (i % 8))
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build();
        chain.inject(pkt);
    }

    let released = chain
        .egress()
        .collect(packets as usize, Duration::from_secs(10));
    println!("released {}/{} packets", released.len(), packets);

    // The NAT rewrote every packet to its external address.
    let first = &released[0];
    let key = first.flow_key().expect("ipv4");
    println!("egress flow: {key}");
    assert_eq!(key.src_ip, Ipv4Addr::new(203, 0, 113, 1));

    // Piggyback trailers never leave the chain.
    assert!(released.iter().all(|p| !p.has_piggyback()));

    // Every middlebox's state is replicated at its successor (the ring).
    std::thread::sleep(Duration::from_millis(50));
    let m = &chain.metrics;
    println!(
        "protocol counters: injected={} released={} logs_applied={} piggyback_bytes/pkt={:.1}",
        m.injected.load(Ordering::Relaxed),
        m.released.load(Ordering::Relaxed),
        m.logs_applied.load(Ordering::Relaxed),
        m.mean_piggyback_bytes().unwrap_or(0.0),
    );
    let monitor_replica = &chain.replicas[1].state.replicated[&0];
    println!(
        "monitor state replicated at the firewall's server: {} packets counted",
        monitor_replica
            .store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0)
    );
}
