//! Failover drill: kill every replica of a running chain, one at a time,
//! and watch the orchestrator recover it — the paper's §7.5 scenario on the
//! multi-region cloud topology.
//!
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use ftc::orch::RecoveryReport;
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(i: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 0, 0, 2), 4000 + i)
        .dst(Ipv4Addr::new(10, 99, 0, 9), 443)
        .ident(i)
        .build()
}

fn main() {
    // Ch-Rec from Table 1: Firewall → Monitor → SimpleNAT, deployed across
    // cloud regions like the paper's SAVI testbed (scaled 4× faster so the
    // drill finishes quickly; ratios are preserved).
    let topology = Topology::savi_like().scaled(0.25);
    let regions = vec![RegionId(0), RegionId(2), RegionId(1)];
    let chain = FtcChain::deploy_in(
        ChainConfig::new(vec![
            MbSpec::Firewall { rules: vec![] },
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::SimpleNat {
                external_ip: Ipv4Addr::new(198, 51, 100, 7),
            },
        ])
        .with_f(1),
        topology,
        regions.clone(),
    );
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    // Warm the chain up so there is real state to recover.
    for i in 0..300 {
        orch.chain.inject(pkt(i));
    }
    let warm = orch.chain.egress().collect(300, Duration::from_secs(15));
    println!("warmup: released {}/300 packets", warm.len());
    std::thread::sleep(Duration::from_millis(100));

    for (idx, &region) in regions.iter().enumerate().take(orch.chain.len()) {
        let name = orch.chain.cfg.effective_middleboxes()[idx].name();
        println!("\n=== killing r{idx} ({name}) in region {} ===", region.0);
        orch.chain.kill(idx);
        assert!(!orch.chain.is_alive(idx));

        let report: RecoveryReport = orch
            .recover(idx, region)
            .expect("recovery must succeed with f = 1 and one failure");
        println!(
            "recovered: initialization {:.1?} + state recovery {:.1?} + rerouting {:.1?} \
             ({} bytes transferred)",
            report.initialization,
            report.state_recovery,
            report.rerouting,
            report.bytes_transferred
        );

        // Prove the chain still works and kept its state.
        let before = orch.chain.replicas[1]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0);
        for i in 0..50 {
            orch.chain.inject(pkt(1000 + i));
        }
        let got = orch.chain.egress().collect(50, Duration::from_secs(15));
        let after = orch.chain.replicas[1]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0);
        println!(
            "post-recovery traffic: {}/50 released; monitor counter {before} → {after}",
            got.len()
        );
        assert_eq!(after, before + got.len() as u64);
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("\nall three positions failed and recovered; no released update was lost");
}
