//! Writing your own middlebox against the FTC state API.
//!
//! The paper (§4.1): "for an existing middlebox to use FTC, its source code
//! must be modified to call our API for state reads and writes." This
//! example builds a rate limiter that does exactly that — all its state
//! lives in the transactional store, so FTC replicates it automatically and
//! a recovered replica enforces the same limits.
//!
//! ```sh
//! cargo run --release --example custom_middlebox
//! ```

use bytes::Bytes;
use ftc::prelude::*;
use ftc::stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;
use std::time::Duration;

/// A token-bucket rate limiter keyed by source address.
///
/// State layout (one variable per source):
///   `rl:<ip>` → `(tokens: u32, last_refill_packet_count: u32)`
///
/// To stay deterministic under replay, refills are driven by a global
/// packet counter rather than wall-clock time.
struct RateLimiter {
    /// Tokens granted per refill interval.
    burst: u32,
    /// Packets between refills.
    interval: u32,
}

impl RateLimiter {
    fn key(ip: Ipv4Addr) -> Bytes {
        Bytes::from(format!("rl:{ip}"))
    }
}

const TICK_KEY: &[u8] = b"rl:tick";

impl Middlebox for RateLimiter {
    fn name(&self) -> &str {
        "RateLimiter"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(flow) = pkt.flow_key() else {
            return Ok(Action::Drop);
        };
        // Advance the global tick (shared state: FTC serializes this).
        let tick = txn.read_u64(TICK_KEY)?.unwrap_or(0) + 1;
        txn.write_u64(Bytes::from_static(TICK_KEY), tick)?;

        let key = Self::key(flow.src_ip);
        let (mut tokens, mut last) = match txn.read_u64(&key)? {
            Some(v) => ((v >> 32) as u32, v as u32),
            None => (self.burst, tick as u32),
        };
        // Refill whole intervals since the last refill.
        let elapsed = (tick as u32).saturating_sub(last);
        if elapsed >= self.interval {
            tokens = self.burst;
            last = tick as u32;
        }
        if tokens == 0 {
            // Out of budget: drop, but keep the bookkeeping write so the
            // decision replicates (and survives failover).
            txn.write_u64(key, u64::from(last))?; // zero tokens in the high bits
            return Ok(Action::Drop);
        }
        tokens -= 1;
        txn.write_u64(key, (u64::from(tokens) << 32) | u64::from(last))?;
        Ok(Action::Forward)
    }
}

fn main() {
    // Mount the custom middlebox in front of a monitor. MbSpec has no
    // variant for user middleboxes, so we exercise it directly through a
    // replica-style store — the same way the chain runtime would.
    use ftc::stm::StateStore;

    let limiter = RateLimiter {
        burst: 3,
        interval: 10,
    };
    let store = StateStore::new(32);

    let heavy = Ipv4Addr::new(10, 0, 0, 99);
    let light = Ipv4Addr::new(10, 0, 0, 7);

    let mut forwarded = 0;
    let mut dropped = 0;
    for i in 0..12u16 {
        let src = if i % 4 == 3 { light } else { heavy };
        let mut pkt = UdpPacketBuilder::new()
            .src(src, 1000 + i)
            .dst(Ipv4Addr::new(1, 1, 1, 1), 80)
            .build();
        let out = store.transaction(|txn| limiter.process(&mut pkt, txn, ProcCtx::single()));
        match out.value {
            Action::Forward => forwarded += 1,
            Action::Drop => dropped += 1,
        }
        // Every decision produced a replication log FTC would piggyback:
        assert!(out.log.is_some());
    }
    println!("rate limiter: {forwarded} forwarded, {dropped} dropped (burst = 3 per 10 packets)");
    assert!(dropped > 0, "the heavy source must get clamped");

    // The same state survives a simulated failover: snapshot → restore.
    let snapshot = store.snapshot();
    let recovered = StateStore::new(32);
    recovered.restore(&snapshot);
    let heavy_key = RateLimiter::key(heavy);
    assert_eq!(store.peek(&heavy_key), recovered.peek(&heavy_key));
    println!(
        "state snapshot/restore verified: {} bytes of limiter state would be \
         recovered on failover",
        snapshot.byte_size()
    );

    // And it runs inside a real chain too, sandwiched by stock middleboxes.
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Firewall { rules: vec![] },
            MbSpec::Monitor { sharing_level: 1 },
        ])
        .with_f(1),
    );
    for i in 0..10 {
        chain.inject(
            UdpPacketBuilder::new()
                .src(light, 2000 + i)
                .dst(Ipv4Addr::new(9, 9, 9, 9), 53)
                .build(),
        );
    }
    let got = chain.egress().collect(10, Duration::from_secs(5));
    println!("companion chain released {}/10 packets", got.len());
}
