//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Implements the harness surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize` — as a
//! plain wall-clock timer with mean/min reporting. There is no statistical
//! regression analysis; the repo's bench gate compares recorded JSON
//! baselines instead (see `scripts/check.sh --bench-gate`).
//!
//! Setting `FTC_BENCH_QUICK=1` collapses warmup and measurement to a
//! handful of iterations so every bench entry point can run in the test
//! suite as a smoke check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the shim runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(3),
            sample_size: 50,
            quick: std::env::var("FTC_BENCH_QUICK").map_or(false, |v| v == "1"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## bench group: {name}");
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            quick: self.quick,
            name,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (mt, ss, quick) = (self.measurement_time, self.sample_size, self.quick);
        run_bench(name, mt, ss, quick, f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(
            &full,
            self.measurement_time,
            self.sample_size,
            self.quick,
            f,
        );
        self
    }

    /// Ends the group (reporting already happened per bench).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    measurement_time: Duration,
    sample_size: usize,
    quick: bool,
    mut f: F,
) {
    let mut b = Bencher {
        // Quick mode: two samples of one iteration — just proves the bench
        // body runs without error.
        samples_wanted: if quick { 2 } else { sample_size },
        iters_per_sample: if quick { 1 } else { 0 },
        measurement_time,
        sample_ns: Vec::new(),
        total_iters: 0,
    };
    f(&mut b);
    b.report(name);
}

/// Per-benchmark measurement context handed to the closure.
pub struct Bencher {
    samples_wanted: usize,
    /// 0 = auto-calibrate from `measurement_time`.
    iters_per_sample: u64,
    measurement_time: Duration,
    sample_ns: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine` over many iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run_samples(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run_samples(|iters| {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            elapsed
        });
    }

    fn run_samples<F: FnMut(u64) -> Duration>(&mut self, mut timed: F) {
        let iters = if self.iters_per_sample > 0 {
            self.iters_per_sample
        } else {
            self.calibrate(&mut timed)
        };
        for _ in 0..self.samples_wanted {
            let elapsed = timed(iters);
            self.sample_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
            self.total_iters += iters;
        }
    }

    /// Picks an iteration count so all samples fit in `measurement_time`.
    fn calibrate<F: FnMut(u64) -> Duration>(&mut self, timed: &mut F) -> u64 {
        let mut iters = 1u64;
        loop {
            let elapsed = timed(iters);
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let budget = self.measurement_time.as_secs_f64() / self.samples_wanted as f64;
                return ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
            }
            iters = iters.saturating_mul(4);
        }
    }

    fn report(&self, name: &str) {
        if self.sample_ns.is_empty() {
            eprintln!("bench {name:<44} (no samples)");
            return;
        }
        let mean = self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64;
        let min = self.sample_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        eprintln!(
            "bench {name:<44} mean {:>12}  min {:>12}  ({} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            self.total_iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_two_tiny_samples() {
        let mut b = Bencher {
            samples_wanted: 2,
            iters_per_sample: 1,
            measurement_time: Duration::from_secs(1),
            sample_ns: Vec::new(),
            total_iters: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 2);
        assert_eq!(b.sample_ns.len(), 2);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            samples_wanted: 1,
            iters_per_sample: 3,
            measurement_time: Duration::from_secs(1),
            sample_ns: Vec::new(),
            total_iters: 0,
        };
        b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.total_iters, 3);
    }

    #[test]
    fn group_api_chains() {
        std::env::set_var("FTC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(10)).sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
