//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Supports the surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, integer/float range
//! strategies, `any::<T>()`, `Just`, tuples, `prop_map`, `prop_oneof!`
//! (plain and weighted), `collection::{vec, btree_map}`, `BoxedStrategy`,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking.** A failing case reports its case index and shim seed
//!   so it can be replayed, but is not minimized.
//! * **Deterministic by construction.** Case seeds derive from the test
//!   name and case index, so every run explores the same inputs. This is
//!   a feature for CI reproducibility (and matches how the repo's model
//!   checker treats schedules), at the cost of never exploring new inputs
//!   across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the per-test driver loop.

    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Driver behind the `proptest!` macro: runs `body` once per case with
    /// a seed derived from the test name and case index. Not public API.
    #[doc(hidden)]
    pub fn run_proptest<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
        let base = fnv1a(name);
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
            let mut rng = TestRng::from_seed(seed);
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
                eprintln!(
                    "proptest shim: property `{name}` failed at case {case}/{} (seed {seed:#018x})",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// A type-erased strategy; cheaply cloneable.
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies; output of `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy for the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Creates a strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_incl - self.lo + 1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vecs of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeMap`s.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            // Duplicate keys collapse, so the result may be smaller than the
            // drawn size — same contract as the real crate.
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// Maps with `size` entries of `keys -> values`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_proptest(&__cfg, stringify!($name), |__ptrng| {
                $crate::__proptest_bind!(__ptrng; $($params)*);
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test assertion (no shrinking in this shim, so it is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection::{btree_map, vec};
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A(u8),
        B,
    }

    fn arb_kind() -> impl Strategy<Value = Kind> {
        prop_oneof![3 => (0u8..10).prop_map(Kind::A), 1 => Just(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 1u16..100, y in 2usize..=4, f in 0.0f64..0.35) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((0.0..0.35).contains(&f));
        }

        #[test]
        fn collections_and_tuples(
            mut v in vec(any::<u8>(), 0..10),
            m in btree_map(0u16..32, 0u64..100, 0..5),
            (a, b) in (0u8..6, 1u8..5),
        ) {
            v.push(a);
            prop_assert!(v.len() <= 11);
            prop_assert!(m.len() < 5);
            prop_assert!(b >= 1);
        }

        #[test]
        fn oneof_weighted(k in arb_kind(), ks in vec(arb_kind(), 1..4)) {
            match k {
                Kind::A(n) => prop_assert!(n < 10),
                Kind::B => {}
            }
            prop_assert!(!ks.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = vec(any::<u64>(), 3..6);
        let a = s.generate(&mut TestRng::from_seed(9));
        let b = s.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }
}
