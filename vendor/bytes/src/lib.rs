//! Offline stand-in for the `bytes` crate (API-compatible subset).
//!
//! The container this repo builds in has no crates-io access, so the
//! workspace vendors the byte-buffer types it actually uses:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable byte slice. Clones share
//!   the underlying allocation (reference counted), and [`Bytes::slice`]
//!   produces zero-copy sub-views — the property the FTC zero-copy packet
//!   read path relies on.
//! * [`BytesMut`] — a growable, uniquely owned buffer, convertible into a
//!   shared [`Bytes`] via [`BytesMut::freeze`].
//! * [`BufMut`] — the big-endian append trait used by the wire encoders.
//!
//! Semantics match the real crate for the subset exercised by the
//! workspace; anything not used here is intentionally absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones and sub-slices share
/// the allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage — no allocation at all.
    Static(&'static [u8]),
    /// A shared window `[start, end)` into a reference-counted allocation.
    Shared {
        buf: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Static(&[])
    }
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(s),
        }
    }

    /// Copies `s` into a fresh shared allocation.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        match &self.repr {
            Repr::Static(s) => Bytes {
                repr: Repr::Static(&s[lo..hi]),
            },
            Repr::Shared { buf, start, .. } => Bytes {
                repr: Repr::Shared {
                    buf: Arc::clone(buf),
                    start: start + lo,
                    end: start + hi,
                },
            },
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared {
                start: 0,
                end: v.len(),
                buf: Arc::new(v),
            },
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { vec: vec![0; len] }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Clears the buffer, retaining the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Resizes to `len`, filling new space with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.vec.resize(len, fill);
    }

    /// Splits off and returns the bytes from `at` to the end; `self` keeps
    /// `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            vec: self.vec.split_off(at),
        }
    }

    /// Converts into an immutable shared [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Consumes the buffer and returns the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { vec: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.vec {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Big-endian append operations for wire encoders.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Big-endian read-and-advance operations for wire decoders.
///
/// Like the real crate's `Buf`, the `get_*` methods panic when the buffer
/// holds fewer bytes than requested — callers check [`Buf::remaining`]
/// first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_sharing_and_slicing() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        let st = Bytes::from_static(b"hello");
        assert_eq!(&st.slice(..2)[..], b"he");
    }

    #[test]
    fn bytesmut_put_and_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090a0b0c0d0e0f);
        m.put_slice(b"xy");
        assert_eq!(m.len(), 1 + 2 + 4 + 8 + 2);
        let frozen = m.freeze();
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[frozen.len() - 2..], b"xy");
    }

    #[test]
    fn borrow_allows_slice_lookup() {
        use std::collections::HashMap;
        let mut map: HashMap<Bytes, u32> = HashMap::new();
        map.insert(Bytes::from_static(b"k"), 7);
        assert_eq!(map.get(&b"k"[..]), Some(&7));
    }

    #[test]
    fn split_off_behaves_like_vec() {
        let mut m = BytesMut::from(&b"abcdef"[..]);
        let tail = m.split_off(2);
        assert_eq!(&m[..], b"ab");
        assert_eq!(&tail[..], b"cdef");
    }
}
