//! Deterministic single-threaded scheduler mode ("det mode").
//!
//! The stand-in's default execution model is thread-per-task with
//! blocking-in-poll I/O, which is honest but impossible to model-check: OS
//! thread interleavings are not replayable. Det mode replaces it, per
//! thread, with a seedable step-executor so that an exploration harness
//! (`ftc_audit::async_check`) can drive the *real* socket backend through
//! chosen interleavings:
//!
//! - **Explicit ready-queue.** [`enter`] installs a thread-local core;
//!   while it is active, `tokio::spawn` enqueues the future here instead of
//!   starting a thread. One task is polled per [`step`], picked by the
//!   seeded chooser among all runnable tasks.
//! - **Progress-generation parking.** A task whose poll returns `Pending`
//!   is parked against the current *progress generation*. Any state change
//!   that could unblock someone (channel send, sim-socket write, socket
//!   shutdown) calls [`note_progress`], bumping the generation; every
//!   parked task becomes runnable again and re-polls. This is coarser than
//!   per-resource wakers but cannot miss a wakeup, which is what matters
//!   for exploration soundness. Futures that call `cx.waker().wake*()`
//!   (e.g. `yield_now`) are also re-queued directly.
//! - **Virtual time.** [`now`]/[`now_ns`] read a virtual clock that only
//!   advances when the executor is otherwise idle (or via [`block_sleep`]).
//!   Timers registered by `tokio::time::sleep` live on the parked task
//!   entries; when no task is runnable the clock jumps to the earliest
//!   deadline. Backoff/RTO logic therefore runs at full speed and fully
//!   deterministically.
//! - **Seeded choice.** Every nondeterministic decision — which task to
//!   poll, how many bytes a sim read returns — funnels through [`choose`],
//!   backed by a splitmix/xorshift generator seeded at [`enter`]. A
//!   schedule is therefore reproduced exactly by re-running with the same
//!   seed (plus the same externally-applied fault plan); witnesses are
//!   `(plan, seed)` pairs, no trace serialization needed. [`trace_hash`]
//!   fingerprints the choice stream so harnesses can count *distinct*
//!   interleavings.
//! - **Step budget.** [`enter`] takes a poll budget; exceeding it marks the
//!   run [`budget_exhausted`], which the harness reports as a
//!   livelock/deadlock verdict (invariant T4).
//!
//! Driver code (the harness itself, or `sock.rs`'s blocking entry points
//! such as RPC waits) must not block the executor thread; it cooperates via
//! [`block_until`] / [`block_sleep`], which run executor steps while
//! polling a condition. Those helpers panic if called from inside a task
//! poll — a task that needs to wait must return `Pending` instead.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Debug)]
enum TaskState {
    /// Explicitly runnable (fresh spawn or woken via waker).
    Ready,
    /// Parked after a `Pending` poll; runnable again once the progress
    /// generation moves past `gen` or the optional timer deadline is due.
    Parked { gen: u64, timer_ns: Option<u64> },
    /// Completed; slot retained so task ids stay stable.
    Done,
}

struct TaskEntry {
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: TaskState,
}

struct Core {
    base: Instant,
    now_ns: u64,
    gen: u64,
    tasks: Vec<TaskEntry>,
    rng: u64,
    steps: u64,
    step_budget: u64,
    budget_exhausted: bool,
    choices: u64,
    trace_hash: u64,
    in_poll: bool,
    timer_req: Option<u64>,
}

thread_local! {
    static CORE: RefCell<Option<Core>> = const { RefCell::new(None) };
    static WOKEN: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Waker handed to det-mode task polls: wake == "mark that task Ready".
/// Pushes to a side list (not the core) so `wake_by_ref` from inside a poll
/// cannot re-enter the core's `RefCell`.
struct TaskWaker(usize);

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        WOKEN.with(|w| w.borrow_mut().push(self.0));
    }
}

/// Guard for an active det-mode session; dropping it tears the executor
/// down (dropping all task futures) and clears the sim-socket registry.
#[derive(Debug)]
pub struct DetGuard {
    _priv: (),
}

impl Drop for DetGuard {
    fn drop(&mut self) {
        CORE.with(|c| c.borrow_mut().take());
        WOKEN.with(|w| w.borrow_mut().clear());
        crate::sim::reset();
    }
}

/// Enter det mode on this thread with the given choice seed and poll
/// budget. Panics if det mode is already active (no nesting).
pub fn enter(seed: u64, step_budget: u64) -> DetGuard {
    CORE.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(
            slot.is_none(),
            "det::enter: det mode already active on this thread"
        );
        // splitmix64 scramble so that nearby seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        *slot = Some(Core {
            base: Instant::now(),
            now_ns: 0,
            gen: 0,
            tasks: Vec::new(),
            rng: z | 1,
            steps: 0,
            step_budget,
            budget_exhausted: false,
            choices: 0,
            trace_hash: FNV_OFFSET,
            in_poll: false,
            timer_req: None,
        });
    });
    crate::sim::reset();
    DetGuard { _priv: () }
}

/// True while det mode is active on this thread.
pub fn active() -> bool {
    CORE.with(|c| c.borrow().is_some())
}

fn with_core<R>(f: impl FnOnce(&mut Core) -> R) -> R {
    CORE.with(|c| {
        let mut slot = c.borrow_mut();
        let core = slot.as_mut().expect("det mode not active");
        f(core)
    })
}

/// Virtual now as nanoseconds since [`enter`].
pub fn now_ns() -> u64 {
    with_core(|c| c.now_ns)
}

/// Virtual clock: a fixed base `Instant` (captured at [`enter`]) plus the
/// virtual offset, so code mixing `Instant` arithmetic keeps working.
pub fn now() -> Instant {
    with_core(|c| c.base + Duration::from_nanos(c.now_ns))
}

/// Record a state change that could unblock a parked task: bump the
/// progress generation. Cheap no-op when det mode is inactive.
pub fn note_progress() {
    CORE.with(|c| {
        if let Some(core) = c.borrow_mut().as_mut() {
            core.gen += 1;
        }
    });
}

fn next_choice(core: &mut Core, n: u32) -> u32 {
    // xorshift64* step.
    let mut x = core.rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    core.rng = x;
    let v = ((x.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 33) as u32 % n.max(1);
    core.choices += 1;
    core.trace_hash = (core.trace_hash ^ u64::from(v)).wrapping_mul(FNV_PRIME);
    v
}

/// Draw one schedule decision in `0..n`. Every source of nondeterminism in
/// a det run funnels through here, which is what makes `(plan, seed)`
/// witnesses replayable.
pub fn choose(n: u32) -> u32 {
    with_core(|c| next_choice(c, n))
}

/// Number of choices drawn so far this run.
pub fn choices() -> u64 {
    with_core(|c| c.choices)
}

/// FNV fingerprint of the choice stream; two runs with equal hashes took
/// the same decisions at every branch point.
pub fn trace_hash() -> u64 {
    with_core(|c| c.trace_hash)
}

/// Task polls executed so far this run.
pub fn steps() -> u64 {
    with_core(|c| c.steps)
}

/// True once the poll budget has been exceeded (T4: livelock verdict).
pub fn budget_exhausted() -> bool {
    with_core(|c| c.budget_exhausted)
}

/// Register a virtual-time wakeup for the task currently being polled.
/// Called by det-aware leaf futures (`time::sleep`, [`idle_wait`]).
pub(crate) fn request_timer(deadline_ns: u64) {
    with_core(|c| {
        debug_assert!(c.in_poll, "request_timer outside a task poll");
        c.timer_req = Some(match c.timer_req {
            Some(t) => t.min(deadline_ns),
            None => deadline_ns,
        });
    });
}

/// Spawn a boxed future onto the det executor.
pub(crate) fn spawn_boxed(fut: Pin<Box<dyn Future<Output = ()>>>) {
    with_core(|c| {
        c.tasks.push(TaskEntry {
            fut: Some(fut),
            state: TaskState::Ready,
        });
    });
}

fn eligible_ids(core: &Core) -> Vec<usize> {
    core.tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| match t.state {
            TaskState::Ready => true,
            TaskState::Parked { gen, timer_ns } => {
                gen < core.gen || timer_ns.is_some_and(|d| d <= core.now_ns)
            }
            TaskState::Done => false,
        })
        .map(|(i, _)| i)
        .collect()
}

/// Poll one eligible task, chooser-picked. Returns false if none is
/// eligible at the current virtual time or the budget is spent.
fn poll_one_eligible() -> bool {
    let picked = with_core(|core| {
        if core.budget_exhausted {
            return None;
        }
        let elig = eligible_ids(core);
        if elig.is_empty() {
            return None;
        }
        if core.steps >= core.step_budget {
            core.budget_exhausted = true;
            return None;
        }
        core.steps += 1;
        let idx = elig[next_choice(core, elig.len() as u32) as usize];
        core.in_poll = true;
        core.timer_req = None;
        Some((
            idx,
            core.tasks[idx]
                .fut
                .take()
                .expect("eligible task without future"),
        ))
    });
    let Some((idx, mut fut)) = picked else {
        return false;
    };
    let waker = Waker::from(Arc::new(TaskWaker(idx)));
    let mut cx = Context::from_waker(&waker);
    let res = fut.as_mut().poll(&mut cx);
    with_core(|core| {
        core.in_poll = false;
        match res {
            Poll::Ready(()) => core.tasks[idx].state = TaskState::Done,
            Poll::Pending => {
                core.tasks[idx].fut = Some(fut);
                core.tasks[idx].state = TaskState::Parked {
                    gen: core.gen,
                    timer_ns: core.timer_req.take(),
                };
            }
        }
        WOKEN.with(|w| {
            for id in w.borrow_mut().drain(..) {
                if matches!(core.tasks[id].state, TaskState::Parked { .. }) {
                    core.tasks[id].state = TaskState::Ready;
                }
            }
        });
    });
    true
}

fn next_timer_ns() -> Option<u64> {
    with_core(|core| {
        core.tasks
            .iter()
            .filter_map(|t| match t.state {
                TaskState::Parked { timer_ns, .. } => timer_ns,
                _ => None,
            })
            .min()
    })
}

fn advance_to(target_ns: u64) {
    with_core(|core| {
        if target_ns > core.now_ns {
            core.now_ns = target_ns;
        }
    });
}

/// Advance the virtual clock by `dur` without running tasks (timers due in
/// the window become runnable on the next step).
pub fn advance(dur: Duration) {
    let target = now_ns().saturating_add(dur.as_nanos() as u64);
    advance_to(target);
}

/// One executor step for exploration harnesses: poll one eligible task, or
/// — if none — jump virtual time to the earliest timer. Returns false when
/// fully idle (quiesced: nothing runnable, no timers) or out of budget.
pub fn step() -> bool {
    if poll_one_eligible() {
        return true;
    }
    if budget_exhausted() {
        return false;
    }
    match next_timer_ns() {
        Some(t) => {
            advance_to(t);
            // The timer's owner becomes eligible; poll it now so `step`
            // always makes real progress when it returns true.
            poll_one_eligible()
        }
        None => false,
    }
}

/// True when no task is runnable at the *current* virtual instant.
/// Pending periodic timers (e.g. idle housekeeping loops) do not count:
/// quiescence means the system only moves again if time moves.
pub fn quiesced_now() -> bool {
    with_core(|c| !c.budget_exhausted && eligible_ids(c).is_empty())
}

/// Cooperatively wait (driver side) until `cond` yields a value, running
/// executor steps and advancing virtual time as needed. `timeout` is in
/// virtual time; `None` waits until the executor fully quiesces. Returns
/// `None` on timeout, quiescence without progress, or budget exhaustion.
///
/// Panics if called from inside a task poll — tasks must return `Pending`.
pub fn block_until<T>(timeout: Option<Duration>, mut cond: impl FnMut() -> Option<T>) -> Option<T> {
    with_core(|c| {
        assert!(
            !c.in_poll,
            "det::block_until called from inside a task poll; return Pending instead"
        )
    });
    let deadline = timeout.map(|d| now_ns().saturating_add(d.as_nanos() as u64));
    loop {
        if let Some(v) = cond() {
            return Some(v);
        }
        if budget_exhausted() {
            return None;
        }
        if let Some(d) = deadline {
            if now_ns() >= d {
                return None;
            }
        }
        if poll_one_eligible() {
            continue;
        }
        // Idle at this instant: advance virtual time to the next timer,
        // capped at the caller's deadline.
        let target = match (next_timer_ns(), deadline) {
            (Some(t), Some(d)) => t.min(d),
            (Some(t), None) => t,
            (None, Some(d)) => d,
            // No timers, no deadline, nothing runnable: true deadlock with
            // respect to `cond`.
            (None, None) => return None,
        };
        advance_to(target);
    }
}

/// Driver-side virtual sleep: run the executor while the clock advances by
/// `dur`. The det-mode replacement for `std::thread::sleep` in backoff
/// loops.
pub fn block_sleep(dur: Duration) {
    let target = now_ns().saturating_add(dur.as_nanos() as u64);
    let _ = block_until(
        Some(dur),
        || if now_ns() >= target { Some(()) } else { None },
    );
    advance_to(target);
}

/// Task-side "wait for activity or a timeout": parks the calling task until
/// the progress generation moves or `dur` of virtual time elapses,
/// whichever is first. Det-mode replacement for idle `recv_timeout` loops.
pub fn idle_wait(dur: Duration) -> IdleWait {
    IdleWait { dur, armed: false }
}

/// Future returned by [`idle_wait`].
#[derive(Debug)]
pub struct IdleWait {
    dur: Duration,
    armed: bool,
}

impl Future for IdleWait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if !active() {
            return Poll::Ready(());
        }
        if self.armed {
            // Re-polled because the generation moved or the timer fired.
            Poll::Ready(())
        } else {
            self.armed = true;
            let deadline = now_ns().saturating_add(self.dur.as_nanos() as u64);
            request_timer(deadline);
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::mpsc;

    #[test]
    fn spawn_and_quiesce() {
        let _g = enter(1, 10_000);
        let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
        crate::spawn(async move {
            tx.send(7).await.unwrap();
        });
        let got = block_until(None, || rx.try_recv().ok());
        assert_eq!(got, Some(7));
        while step() {}
        assert!(quiesced_now());
    }

    #[test]
    fn same_seed_same_trace() {
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let _g = enter(42, 10_000);
            for n in 2..10 {
                let _ = choose(n);
            }
            hashes.push(trace_hash());
        }
        assert_eq!(hashes[0], hashes[1]);
        let _g = enter(43, 10_000);
        for n in 2..10 {
            let _ = choose(n);
        }
        assert_ne!(hashes[0], trace_hash(), "different seed should diverge");
    }

    #[test]
    fn virtual_sleep_is_instant_and_ordered() {
        let _g = enter(3, 10_000);
        let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
        let tx2 = tx.clone();
        crate::spawn(async move {
            crate::time::sleep(Duration::from_secs(5)).await;
            tx.send(2).await.unwrap();
        });
        crate::spawn(async move {
            crate::time::sleep(Duration::from_secs(1)).await;
            tx2.send(1).await.unwrap();
        });
        let wall = Instant::now();
        let a = block_until(None, || rx.try_recv().ok());
        let b = block_until(None, || rx.try_recv().ok());
        assert_eq!((a, b), (Some(1), Some(2)), "timers fire in deadline order");
        assert!(now_ns() >= 5_000_000_000);
        assert!(
            wall.elapsed() < Duration::from_secs(1),
            "virtual, not wall time"
        );
    }

    #[test]
    fn budget_flags_livelock() {
        let _g = enter(9, 64);
        crate::spawn(async {
            loop {
                crate::task::yield_now().await;
            }
        });
        while step() {}
        assert!(budget_exhausted());
    }
}
