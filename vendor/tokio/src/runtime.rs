//! Runtime construction. The stand-in scheduler is thread-per-task, so the
//! runtime itself carries no state — `Builder` knobs are accepted and
//! ignored, `block_on` drives the future on the caller's thread, and
//! `spawn` delegates to [`crate::task::spawn`].

use std::future::Future;
use std::io;

use crate::task::{self, JoinHandle};

/// Handle-less stand-in runtime.
#[derive(Debug, Default)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    /// Create a runtime (infallible in the stand-in).
    pub fn new() -> io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    /// Drive `fut` to completion on the current thread.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        task::block_on(fut)
    }

    /// Spawn a task onto its own OS thread.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        task::spawn(fut)
    }
}

/// Builder mirroring tokio's; every knob is accepted and ignored because
/// the stand-in has no worker pool or reactor to configure.
#[derive(Debug, Default)]
pub struct Builder {
    _priv: (),
}

impl Builder {
    /// Multi-thread flavor (the stand-in is always thread-per-task).
    pub fn new_multi_thread() -> Builder {
        Builder { _priv: () }
    }

    /// Current-thread flavor (identical to multi-thread here).
    pub fn new_current_thread() -> Builder {
        Builder { _priv: () }
    }

    /// Accepted and ignored.
    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    /// Accepted and ignored (there is no reactor or timer driver to enable).
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Accepted and ignored.
    pub fn thread_name(&mut self, _name: impl Into<String>) -> &mut Builder {
        self
    }

    /// Build the runtime (infallible in the stand-in).
    pub fn build(&mut self) -> io::Result<Runtime> {
        Runtime::new()
    }
}
