//! Task spawning. Every spawned task runs on its own OS thread.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};

use crate::sync::oneshot;

/// Waker that unparks the thread driving the future.
struct ThreadUnparker(Thread);

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive a future to completion on the current thread.
///
/// Because the stand-in's leaf futures block inside `poll`, this usually
/// completes in a single poll; the park/unpark loop exists so that
/// hand-written cooperative futures also work.
pub(crate) fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadUnparker(thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = Box::pin(fut);
    if crate::det::active() {
        // Det mode: drive the executor instead of parking the thread —
        // the wakeups this future is waiting for come from det tasks.
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    assert!(
                        crate::det::step(),
                        "block_on would deadlock: det executor quiesced with the future pending"
                    );
                }
            }
        }
    }
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => thread::park(),
        }
    }
}

/// Error returned when a task's thread panicked before producing a value.
#[derive(Debug)]
pub struct JoinError(());

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task panicked before completing")
    }
}

impl std::error::Error for JoinError {}

/// Handle to a spawned task; awaiting it yields the task's output.
///
/// Dropping the handle detaches the task (the thread keeps running), same
/// as tokio.
pub struct JoinHandle<T> {
    rx: oneshot::Receiver<T>,
}

impl<T> JoinHandle<T> {
    /// True once the task has produced its value (or panicked).
    pub fn is_finished(&self) -> bool {
        self.rx.is_terminated()
    }

    /// Stand-in deviation: threads cannot be cancelled from outside, so
    /// `abort` merely detaches. Cancel blocked I/O via
    /// [`crate::net::CancelHandle`] instead.
    pub fn abort(&self) {}
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.rx)
            .poll(cx)
            .map(|r| r.map_err(|_| JoinError(())))
    }
}

/// Spawn a future onto its own OS thread — or, in [det
/// mode](crate::det), onto the deterministic executor's ready queue.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let (tx, rx) = oneshot::channel();
    if crate::det::active() {
        crate::det::spawn_boxed(Box::pin(async move {
            let out = fut.await;
            let _ = tx.send(out);
        }));
        return JoinHandle { rx };
    }
    thread::Builder::new()
        .name("tokio-task".into())
        .spawn(move || {
            let out = block_on(fut);
            let _ = tx.send(out);
        })
        .expect("failed to spawn tokio stand-in task thread");
    JoinHandle { rx }
}

/// Run a blocking closure on a dedicated thread.
///
/// In this stand-in every task already owns a thread, so this is just
/// [`spawn`] around the closure.
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    spawn(async move { f() })
}

/// Yield execution back to the scheduler once.
pub async fn yield_now() {
    struct YieldOnce(bool);
    impl Future for YieldOnce {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldOnce(false).await
}
