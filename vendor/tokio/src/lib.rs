//! Offline in-tree stand-in for the `tokio` crate.
//!
//! The container that builds this repository has no crates.io access, so this
//! crate re-implements the narrow tokio API subset that `ftc-net`'s socket
//! backend uses. It is **not** an event-driven reactor; the execution model
//! is deliberately simple and honest about its trade-offs:
//!
//! - **Thread-per-task scheduler.** [`spawn`] starts a dedicated OS thread
//!   that drives the future to completion with a thread-parker waker.
//!   [`runtime::Runtime::block_on`] drives a future on the caller's thread.
//! - **Blocking-in-poll I/O.** [`net`] sockets wrap `std::net` /
//!   `std::os::unix::net` and perform ordinary blocking syscalls inside
//!   `poll`. Because every task owns a thread, blocking a poll only blocks
//!   that task. There is no epoll/kqueue reactor (that would require `libc`,
//!   which is not vendored), so a blocked read is cancelled by shutting the
//!   socket down from another task (see [`net::CancelHandle`]), not by
//!   dropping the future.
//! - **Waker-correct channels.** [`sync::mpsc`] and [`sync::oneshot`] are
//!   condvar-backed and wake pending receivers properly, so they behave the
//!   same under `block_on` and under spawned tasks.
//! - **No `timeout`.** `tokio::time::timeout` cannot be implemented honestly
//!   when polls may block, so it is intentionally absent; callers use
//!   socket-level deadlines (`recv_timeout` on channels, shutdown on
//!   sockets) instead.
//!
//! Read/write methods are inherent `async fn`s on the stream types rather
//! than `AsyncReadExt`/`AsyncWriteExt` extension-trait methods; call sites
//! look the same minus the trait imports.
//!
//! There is a second execution mode: [`det`] installs a thread-local
//! deterministic single-threaded step-executor with virtual time and a
//! seeded scheduler, and [`sim`] provides in-memory sockets with fault
//! injection. While det mode is active on a thread, `spawn`, the channels,
//! `time::sleep`, and sim-socket I/O all route through the deterministic
//! core, so model-checking harnesses can replay exact interleavings from a
//! `(plan, seed)` pair. Real TCP/UDS sockets are not det-aware; det-mode
//! runs use [`sim`] streams.

pub mod det;
pub mod net;
pub mod runtime;
pub mod sim;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
