//! In-memory simulated sockets for [det mode](crate::det).
//!
//! A thread-local registry maps string names ("sim addresses") to
//! listeners; `connect` pairs a client stream with a pending server stream
//! synchronously, and all bytes move through in-memory per-direction
//! buffers. Nothing here touches the OS, so a det-mode exploration run is
//! hermetic: the registry is reset on every [`crate::det::enter`] and the
//! same names can be reused run after run.
//!
//! Fault hooks for exploration harnesses:
//!
//! - [`refuse_next`]: make the next N dials to a name fail with
//!   `ConnectionRefused` (exercises backoff/redial).
//! - [`cut_conn`] / [`cut_all`]: break an established connection — buffered
//!   bytes already written are still delivered, then readers see EOF and
//!   writers get `BrokenPipe` (the same observable sequence as a peer
//!   reset under the stand-in's shutdown-based cancellation).
//! - [`cut_conn_after`]: break a connection automatically after N more
//!   bytes are written in one direction — the partial-write fault, which
//!   lands mid-frame at any byte offset the harness picks.
//! - Short reads: when det mode is active, every read returns a
//!   chooser-picked prefix of the buffered bytes, so frame-decoder
//!   re-entry at arbitrary split points is explored for free.
//!
//! The registry is `thread_local!` because det mode is single-threaded by
//! construction; two tests exploring concurrently from different threads
//! get disjoint sim worlds.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex};

use crate::det;
use crate::net::{OwnedReadHalf, OwnedWriteHalf};

#[derive(Debug, Default)]
struct DirState {
    buf: VecDeque<u8>,
    /// Writer gone (or connection cut): readers drain `buf` then see EOF.
    closed: bool,
    /// Partial-write fault: break the whole connection after this many
    /// more bytes are accepted in this direction.
    cut_after: Option<usize>,
}

/// One established sim connection: two independent directed byte pipes.
/// Uses `std::sync::Mutex` (not `RefCell`) because stream halves are held
/// by spawned futures, which must be `Send` to satisfy the spawn bounds —
/// even though det mode never actually crosses threads.
#[derive(Debug, Default)]
pub(crate) struct SimConn {
    c2s: Mutex<DirState>,
    s2c: Mutex<DirState>,
}

impl SimConn {
    /// Break the connection: both directions stop accepting writes and
    /// readers see EOF after draining what was already delivered.
    fn break_conn(&self) {
        self.c2s.lock().unwrap().closed = true;
        self.s2c.lock().unwrap().closed = true;
        det::note_progress();
    }
}

/// One endpoint of a sim connection. Cloning yields another handle to the
/// same endpoint (the sim analogue of `try_clone`).
#[derive(Debug, Clone)]
pub struct SimStream {
    conn: Arc<SimConn>,
    client: bool,
}

impl SimStream {
    fn out_dir(&self) -> &Mutex<DirState> {
        if self.client {
            &self.conn.c2s
        } else {
            &self.conn.s2c
        }
    }

    fn in_dir(&self) -> &Mutex<DirState> {
        if self.client {
            &self.conn.s2c
        } else {
            &self.conn.c2s
        }
    }

    /// Append the whole buffer to the outgoing pipe, honouring any armed
    /// partial-write cut.
    pub(crate) fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let cut = {
            let mut dir = self.out_dir().lock().unwrap();
            if dir.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim conn closed"));
            }
            match dir.cut_after {
                Some(rem) if buf.len() >= rem => {
                    dir.buf.extend(&buf[..rem]);
                    dir.cut_after = None;
                    true
                }
                Some(rem) => {
                    dir.buf.extend(buf);
                    dir.cut_after = Some(rem - buf.len());
                    false
                }
                None => {
                    dir.buf.extend(buf);
                    false
                }
            }
        };
        if cut {
            self.conn.break_conn();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "sim conn cut mid-write",
            ));
        }
        det::note_progress();
        Ok(())
    }

    /// Non-blocking read attempt: `Ok(Some(n))` bytes copied, `Ok(None)`
    /// would block, `Ok(Some(0))` EOF. In det mode the returned size is a
    /// chooser-picked prefix of what is buffered (short-read exploration).
    pub(crate) fn try_read(&self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        let mut dir = self.in_dir().lock().unwrap();
        if dir.buf.is_empty() {
            return if dir.closed { Ok(Some(0)) } else { Ok(None) };
        }
        if buf.is_empty() {
            return Ok(Some(0));
        }
        let avail = dir.buf.len().min(buf.len());
        let n = if det::active() && avail > 1 {
            // Candidate split points: a 1-byte trickle, a small prefix
            // (frame-header-ish), and everything available. Bounded to
            // three so the schedule space stays explorable.
            let mut cands = vec![1usize, avail.min(4), avail];
            cands.sort_unstable();
            cands.dedup();
            let pick = det::choose(cands.len() as u32) as usize;
            cands[pick]
        } else {
            avail
        };
        for (i, slot) in buf.iter_mut().enumerate().take(n) {
            *slot = dir.buf.pop_front().expect("sim read underrun");
            debug_assert!(i < n);
        }
        Ok(Some(n))
    }

    /// Read into `buf`, completing when bytes (or EOF/reset) are available.
    pub(crate) fn read<'a>(&'a self, buf: &'a mut [u8]) -> SimRead<'a> {
        SimRead { stream: self, buf }
    }

    /// Close the outgoing direction (EOF for the peer's reader).
    pub(crate) fn shutdown_write(&self) {
        self.out_dir().lock().unwrap().closed = true;
        det::note_progress();
    }

    /// Break the connection in both directions (CancelHandle semantics).
    pub(crate) fn shutdown_both(&self) {
        self.conn.break_conn();
    }

    /// Split into the unified owned halves used by `ftc-net`.
    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        crate::net::sim_split(self)
    }
}

/// Future returned by [`SimStream::read`]; parks the task until bytes,
/// EOF, or a reset arrive.
#[derive(Debug)]
pub(crate) struct SimRead<'a> {
    stream: &'a SimStream,
    buf: &'a mut [u8],
}

impl std::future::Future for SimRead<'_> {
    type Output = io::Result<usize>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<io::Result<usize>> {
        let me = self.get_mut();
        match me.stream.try_read(me.buf) {
            Ok(Some(n)) => std::task::Poll::Ready(Ok(n)),
            Ok(None) => std::task::Poll::Pending,
            Err(e) => std::task::Poll::Ready(Err(e)),
        }
    }
}

#[derive(Debug, Default)]
struct ListenerSlot {
    pending: VecDeque<SimStream>,
    refuse: u32,
    open: bool,
}

#[derive(Debug, Default)]
struct Registry {
    listeners: HashMap<String, ListenerSlot>,
    conns: Vec<Arc<SimConn>>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Clear the registry. Called on every `det::enter`/`DetGuard` drop so
/// exploration runs are hermetic.
pub(crate) fn reset() {
    REGISTRY.with(|r| *r.borrow_mut() = Registry::default());
}

/// Listener bound to a sim name; accept yields the server-side stream.
#[derive(Debug)]
pub struct SimListener {
    name: String,
}

impl SimListener {
    /// Bind `name`. Fails with `AddrInUse` if the name is already bound in
    /// this thread's registry.
    pub fn bind(name: &str) -> io::Result<SimListener> {
        REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            let slot = reg.listeners.entry(name.to_string()).or_default();
            if slot.open {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("sim name {name:?} already bound"),
                ));
            }
            slot.open = true;
            Ok(SimListener {
                name: name.to_string(),
            })
        })
    }

    /// Accept one pending connection (parks until a dial arrives).
    pub async fn accept(&self) -> io::Result<(SimStream, String)> {
        SimAccept { name: &self.name }.await
    }
}

struct SimAccept<'a> {
    name: &'a str,
}

impl std::future::Future for SimAccept<'_> {
    type Output = io::Result<(SimStream, String)>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            match reg.listeners.get_mut(self.name) {
                Some(slot) => match slot.pending.pop_front() {
                    Some(s) => std::task::Poll::Ready(Ok((s, self.name.to_string()))),
                    None if !slot.open => std::task::Poll::Ready(Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "sim listener closed",
                    ))),
                    None => std::task::Poll::Pending,
                },
                None => std::task::Poll::Ready(Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "sim listener gone",
                ))),
            }
        })
    }
}

/// Dial `name`: synchronous (the registry is local). Honours
/// [`refuse_next`] counts; unbound names refuse.
pub fn connect(name: &str) -> io::Result<SimStream> {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        let Some(slot) = reg.listeners.get_mut(name) else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no sim listener at {name:?}"),
            ));
        };
        if !slot.open {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("sim listener at {name:?} closed"),
            ));
        }
        if slot.refuse > 0 {
            slot.refuse -= 1;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("sim dial to {name:?} refused (fault injection)"),
            ));
        }
        let conn = Arc::new(SimConn::default());
        slot.pending.push_back(SimStream {
            conn: Arc::clone(&conn),
            client: false,
        });
        reg.conns.push(Arc::clone(&conn));
        det::note_progress();
        Ok(SimStream { conn, client: true })
    })
}

/// Make the next `n` dials to `name` fail with `ConnectionRefused`.
pub fn refuse_next(name: &str, n: u32) {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .listeners
            .entry(name.to_string())
            .or_default()
            .refuse = n;
    });
}

/// Number of connections established so far this run (cut ones included).
pub fn conn_count() -> usize {
    REGISTRY.with(|r| r.borrow().conns.len())
}

/// Break connection `idx` (establishment order) in both directions.
pub fn cut_conn(idx: usize) {
    let conn = REGISTRY.with(|r| r.borrow().conns.get(idx).cloned());
    if let Some(c) = conn {
        c.break_conn();
    }
}

/// Arm a partial-write fault on connection `idx`: after `after` more bytes
/// are written in the chosen direction, the connection breaks mid-write.
pub fn cut_conn_after(idx: usize, client_to_server: bool, after: usize) {
    REGISTRY.with(|r| {
        if let Some(c) = r.borrow().conns.get(idx) {
            let dir = if client_to_server { &c.c2s } else { &c.s2c };
            dir.lock().unwrap().cut_after = Some(after);
        }
    });
}

/// Break every connection established so far.
pub fn cut_all() {
    let conns = REGISTRY.with(|r| r.borrow().conns.clone());
    for c in conns {
        c.break_conn();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_once<F: std::future::Future>(fut: F) -> std::task::Poll<F::Output> {
        struct Noop;
        impl std::task::Wake for Noop {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        let waker = std::task::Waker::from(std::sync::Arc::new(Noop));
        let mut cx = std::task::Context::from_waker(&waker);
        let mut fut = Box::pin(fut);
        fut.as_mut().poll(&mut cx)
    }

    #[test]
    fn connect_write_read_roundtrip() {
        let _g = det::enter(5, 10_000);
        let l = SimListener::bind("a").unwrap();
        let client = connect("a").unwrap();
        client.write_all(b"hello").unwrap();
        // The dial queued the server end synchronously, so accept is ready.
        let std::task::Poll::Ready(Ok((server, _))) = poll_once(l.accept()) else {
            panic!("accept should be ready after a queued dial");
        };
        let mut buf = [0u8; 16];
        let mut got = Vec::new();
        while got.len() < 5 {
            match server.try_read(&mut buf).unwrap() {
                Some(n) => got.extend_from_slice(&buf[..n]),
                None => break,
            }
        }
        assert_eq!(&got, b"hello");
    }

    #[test]
    fn refuse_then_accept() {
        let _g = det::enter(6, 10_000);
        let _l = SimListener::bind("b").unwrap();
        refuse_next("b", 2);
        assert!(connect("b").is_err());
        assert!(connect("b").is_err());
        assert!(connect("b").is_ok());
    }

    #[test]
    fn cut_after_breaks_mid_write() {
        let _g = det::enter(7, 10_000);
        let _l = SimListener::bind("c").unwrap();
        let client = connect("c").unwrap();
        cut_conn_after(0, true, 3);
        let err = client.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The 3 bytes before the cut were delivered; then EOF.
        let server = SimStream {
            conn: REGISTRY.with(|r| r.borrow().conns[0].clone()),
            client: false,
        };
        let mut buf = [0u8; 8];
        let mut got = Vec::new();
        loop {
            match server.try_read(&mut buf).unwrap() {
                Some(0) => break,
                Some(n) => got.extend_from_slice(&buf[..n]),
                None => panic!("cut conn must EOF, not block"),
            }
        }
        assert_eq!(&got, b"abc");
        assert!(client.write_all(b"x").is_err());
    }
}
