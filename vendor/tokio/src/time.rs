//! Time utilities. `sleep` blocks the task's thread inside `poll`, which is
//! correct in the thread-per-task model. `tokio::time::timeout` is
//! intentionally absent: it cannot be implemented honestly when polls may
//! block, so callers use channel `recv_timeout` / socket shutdown instead.
//!
//! In [det mode](crate::det) both functions switch to virtual time:
//! [`sleep`] registers a timer on the deterministic executor and parks the
//! task, and [`now`] reads the virtual clock (which only advances when the
//! executor is idle). Time-based logic — backoff, RTO retransmission —
//! therefore runs instantly and reproducibly during exploration.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

pub use std::time::{Duration, Instant};

use crate::det;

/// Current instant: `Instant::now()` normally, the virtual clock in det
/// mode. Transport code uses this instead of `Instant::now()` directly so
/// that deadlines and backoff are deterministic under exploration.
pub fn now() -> Instant {
    if det::active() {
        det::now()
    } else {
        Instant::now()
    }
}

/// Sleep for `dur`. Blocks the task's thread normally; parks the task on a
/// virtual-time timer in det mode.
pub async fn sleep(dur: Duration) {
    if det::active() {
        DetSleep {
            dur,
            deadline_ns: None,
        }
        .await
    } else {
        std::thread::sleep(dur);
    }
}

struct DetSleep {
    dur: Duration,
    deadline_ns: Option<u64>,
}

impl Future for DetSleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let dur = self.dur;
        let deadline = *self
            .deadline_ns
            .get_or_insert_with(|| det::now_ns().saturating_add(dur.as_nanos() as u64));
        if det::now_ns() >= deadline {
            Poll::Ready(())
        } else {
            det::request_timer(deadline);
            Poll::Pending
        }
    }
}
