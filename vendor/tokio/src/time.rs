//! Time utilities. `sleep` blocks the task's thread inside `poll`, which is
//! correct in the thread-per-task model. `tokio::time::timeout` is
//! intentionally absent: it cannot be implemented honestly when polls may
//! block, so callers use channel `recv_timeout` / socket shutdown instead.

pub use std::time::{Duration, Instant};

/// Sleep for `dur` (blocks the task's thread).
pub async fn sleep(dur: Duration) {
    std::thread::sleep(dur);
}
