//! TCP and Unix-domain-socket types wrapping `std::net` /
//! `std::os::unix::net` with blocking-in-poll I/O.
//!
//! Deviations from tokio, documented in `vendor/README.md`:
//!
//! - Read/write methods are inherent `async fn`s (no `AsyncReadExt` /
//!   `AsyncWriteExt` traits).
//! - `into_split` on both stream kinds returns the *same*
//!   [`OwnedReadHalf`] / [`OwnedWriteHalf`] pair (internally an enum over
//!   TCP/UDS), so transport code holds halves uniformly across backends.
//! - Dropping a future does not cancel in-flight I/O; use
//!   [`CancelHandle::cancel`] (socket shutdown) to unblock a reader from
//!   another task.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::path::Path;

use crate::sim::SimStream;

/// Internal socket handle, unifying TCP, UDS, and [det-mode
/// sim](crate::sim) streams so transport code holds halves uniformly.
#[derive(Debug)]
enum Io {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
    Sim(SimStream),
}

impl Io {
    fn try_clone(&self) -> io::Result<Io> {
        match self {
            Io::Tcp(s) => s.try_clone().map(Io::Tcp),
            Io::Unix(s) => s.try_clone().map(Io::Unix),
            Io::Sim(s) => Ok(Io::Sim(s.clone())),
        }
    }

    /// Blocking read for the OS-socket variants; sim reads go through the
    /// async path in [`OwnedReadHalf::read`] instead.
    fn read_blocking(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Io::Tcp(s) => s.read(buf),
            Io::Unix(s) => s.read(buf),
            Io::Sim(_) => unreachable!("sim reads use the poll-based path"),
        }
    }

    fn read_exact_blocking(&mut self, buf: &mut [u8]) -> io::Result<()> {
        match self {
            Io::Tcp(s) => s.read_exact(buf),
            Io::Unix(s) => s.read_exact(buf),
            Io::Sim(_) => unreachable!("sim reads use the poll-based path"),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Io::Tcp(s) => s.write_all(buf),
            Io::Unix(s) => s.write_all(buf),
            Io::Sim(s) => s.write_all(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Io::Tcp(s) => s.flush(),
            Io::Unix(s) => s.flush(),
            Io::Sim(_) => Ok(()),
        }
    }

    fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Io::Tcp(s) => s.shutdown(how),
            Io::Unix(s) => s.shutdown(how),
            Io::Sim(s) => {
                match how {
                    Shutdown::Write => s.shutdown_write(),
                    Shutdown::Read | Shutdown::Both => s.shutdown_both(),
                }
                Ok(())
            }
        }
    }
}

/// Split a det-mode sim stream into the unified owned halves.
pub(crate) fn sim_split(s: SimStream) -> (OwnedReadHalf, OwnedWriteHalf) {
    (
        OwnedReadHalf {
            io: Io::Sim(s.clone()),
        },
        OwnedWriteHalf { io: Io::Sim(s) },
    )
}

/// Handle that unblocks a task stuck in a read/write on the same socket by
/// shutting the socket down. This is the stand-in's cancellation mechanism
/// (futures cannot be dropped mid-blocking-poll).
#[derive(Debug)]
pub struct CancelHandle {
    io: Io,
}

impl CancelHandle {
    /// Shut the socket down in both directions; blocked reads return
    /// `Ok(0)` / an error and blocked writes fail. Idempotent; errors are
    /// ignored (the peer may already be gone).
    pub fn cancel(&self) {
        let _ = self.io.shutdown(Shutdown::Both);
    }
}

/// Owned read half of a TCP or UDS stream.
#[derive(Debug)]
pub struct OwnedReadHalf {
    io: Io,
}

impl OwnedReadHalf {
    /// Read up to `buf.len()` bytes; `Ok(0)` means EOF. Blocking-in-poll
    /// for OS sockets; parks the task (det executor) for sim streams.
    pub async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match &mut self.io {
            Io::Sim(s) => s.read(buf).await,
            io => io.read_blocking(buf),
        }
    }

    /// Read exactly `buf.len()` bytes or fail.
    pub async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        match &mut self.io {
            Io::Sim(s) => {
                let mut filled = 0;
                while filled < buf.len() {
                    let n = s.read(&mut buf[filled..]).await?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "sim stream closed mid read_exact",
                        ));
                    }
                    filled += n;
                }
                Ok(())
            }
            io => io.read_exact_blocking(buf),
        }
    }

    /// Obtain a cancellation handle for this socket.
    pub fn cancel_handle(&self) -> io::Result<CancelHandle> {
        Ok(CancelHandle {
            io: self.io.try_clone()?,
        })
    }
}

/// Owned write half of a TCP or UDS stream.
#[derive(Debug)]
pub struct OwnedWriteHalf {
    io: Io,
}

impl OwnedWriteHalf {
    /// Write the whole buffer or fail.
    pub async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.io.write_all(buf)
    }

    /// Flush buffered writes (a no-op for raw sockets).
    pub async fn flush(&mut self) -> io::Result<()> {
        self.io.flush()
    }

    /// Shut down the write direction, signalling EOF to the peer.
    pub async fn shutdown(&mut self) -> io::Result<()> {
        self.io.shutdown(Shutdown::Write)
    }

    /// Obtain a cancellation handle for this socket.
    pub fn cancel_handle(&self) -> io::Result<CancelHandle> {
        Ok(CancelHandle {
            io: self.io.try_clone()?,
        })
    }
}

fn split(io: Io) -> io::Result<(OwnedReadHalf, OwnedWriteHalf)> {
    let clone = io.try_clone()?;
    Ok((OwnedReadHalf { io }, OwnedWriteHalf { io: clone }))
}

/// TCP stream.
#[derive(Debug)]
pub struct TcpStream {
    io: Io,
}

impl TcpStream {
    /// Connect to `addr` (blocking-in-poll).
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let s = std::net::TcpStream::connect(addr)?;
        Ok(TcpStream { io: Io::Tcp(s) })
    }

    /// Wrap an already-connected `std` stream. (The real tokio requires the
    /// socket to be in non-blocking mode; the stand-in's I/O is blocking by
    /// design, so the socket is used as-is.)
    pub fn from_std(s: std::net::TcpStream) -> io::Result<TcpStream> {
        Ok(TcpStream { io: Io::Tcp(s) })
    }

    /// Set `TCP_NODELAY`.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        match &self.io {
            Io::Tcp(s) => s.set_nodelay(nodelay),
            _ => Ok(()),
        }
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match &self.io {
            Io::Tcp(s) => s.local_addr(),
            _ => Err(io::Error::new(io::ErrorKind::Other, "not a TCP socket")),
        }
    }

    /// Peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        match &self.io {
            Io::Tcp(s) => s.peer_addr(),
            _ => Err(io::Error::new(io::ErrorKind::Other, "not a TCP socket")),
        }
    }

    /// Split into independently owned read/write halves (via `try_clone`).
    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        split(self.io).expect("failed to clone socket handle for split")
    }
}

/// TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        Ok(TcpListener {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    /// Wrap an already-bound `std` listener.
    pub fn from_std(inner: std::net::TcpListener) -> io::Result<TcpListener> {
        Ok(TcpListener { inner })
    }

    /// Accept one connection (blocking-in-poll).
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (s, addr) = self.inner.accept()?;
        Ok((TcpStream { io: Io::Tcp(s) }, addr))
    }

    /// The bound local address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// Unix-domain stream.
#[derive(Debug)]
pub struct UnixStream {
    io: Io,
}

impl UnixStream {
    /// Connect to the socket at `path` (blocking-in-poll).
    pub async fn connect<P: AsRef<Path>>(path: P) -> io::Result<UnixStream> {
        let s = std::os::unix::net::UnixStream::connect(path)?;
        Ok(UnixStream { io: Io::Unix(s) })
    }

    /// Wrap an already-connected `std` stream.
    pub fn from_std(s: std::os::unix::net::UnixStream) -> io::Result<UnixStream> {
        Ok(UnixStream { io: Io::Unix(s) })
    }

    /// Split into independently owned read/write halves (via `try_clone`).
    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        split(self.io).expect("failed to clone socket handle for split")
    }
}

/// Unix-domain listener.
#[derive(Debug)]
pub struct UnixListener {
    inner: std::os::unix::net::UnixListener,
}

impl UnixListener {
    /// Bind to `path` (the path must not already exist).
    pub fn bind<P: AsRef<Path>>(path: P) -> io::Result<UnixListener> {
        Ok(UnixListener {
            inner: std::os::unix::net::UnixListener::bind(path)?,
        })
    }

    /// Wrap an already-bound `std` listener.
    pub fn from_std(inner: std::os::unix::net::UnixListener) -> io::Result<UnixListener> {
        Ok(UnixListener { inner })
    }

    /// Accept one connection (blocking-in-poll).
    pub async fn accept(&self) -> io::Result<(UnixStream, std::os::unix::net::SocketAddr)> {
        let (s, addr) = self.inner.accept()?;
        Ok((UnixStream { io: Io::Unix(s) }, addr))
    }
}
