//! Synchronization primitives: condvar-backed `mpsc` and `oneshot`
//! channels. Receive futures block inside `poll`, which is safe in the
//! thread-per-task scheduler; senders always notify the condvar so blocked
//! receivers wake promptly.

/// Multi-producer, single-consumer channel.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        rx_alive: bool,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        recv_cv: Condvar,
        send_cv: Condvar,
    }

    /// Error returned by `send` when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("channel closed")
        }
    }

    /// Error returned by `try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Closed(T),
    }

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Sending half; cheaply cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("mpsc lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.recv_cv.notify_all();
                drop(inner);
                // A det-parked receiver must wake to observe disconnection.
                crate::det::note_progress();
            }
        }
    }

    impl<T> Sender<T> {
        fn push(&self, value: T, block: bool) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            loop {
                if !inner.rx_alive {
                    return Err(TrySendError::Closed(value));
                }
                let full = inner.cap.is_some_and(|c| inner.buf.len() >= c);
                if !full {
                    inner.buf.push_back(value);
                    self.shared.recv_cv.notify_one();
                    drop(inner);
                    // Wake det-parked receivers (no-op outside det mode).
                    crate::det::note_progress();
                    return Ok(());
                }
                if !block {
                    return Err(TrySendError::Full(value));
                }
                assert!(
                    !crate::det::active(),
                    "blocking send on a full bounded mpsc is unsupported in det mode"
                );
                inner = self.shared.send_cv.wait(inner).expect("mpsc lock poisoned");
            }
        }

        /// Send a value, waiting for capacity if the channel is bounded.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.push(value, true).map_err(|e| match e {
                TrySendError::Closed(v) | TrySendError::Full(v) => SendError(v),
            })
        }

        /// Send without waiting for capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.push(value, false)
        }

        /// Blocking send, usable from synchronous code.
        pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
            self.push(value, true).map_err(|e| match e {
                TrySendError::Closed(v) | TrySendError::Full(v) => SendError(v),
            })
        }

        /// True if the receiver has been dropped.
        pub fn is_closed(&self) -> bool {
            !self
                .shared
                .inner
                .lock()
                .expect("mpsc lock poisoned")
                .rx_alive
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            inner.rx_alive = false;
            self.shared.send_cv.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value; `None` once all senders are gone and the
        /// queue is drained. Blocks inside `poll` (thread-per-task model).
        pub async fn recv(&mut self) -> Option<T> {
            RecvFuture { rx: self }.await
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            match inner.buf.pop_front() {
                Some(v) => {
                    self.shared.send_cv.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive, usable from synchronous code.
        pub fn blocking_recv(&mut self) -> Option<T> {
            self.recv_deadline(None)
        }

        /// Stand-in extra: blocking receive with a timeout. Returns `None`
        /// on both channel close and timeout; pair with `try_recv` when the
        /// distinction matters.
        pub fn recv_timeout(&mut self, timeout: Duration) -> Option<T> {
            self.recv_deadline(Some(Instant::now() + timeout))
        }

        fn recv_deadline(&mut self, deadline: Option<Instant>) -> Option<T> {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            loop {
                if let Some(v) = inner.buf.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Some(v);
                }
                if inner.senders == 0 {
                    return None;
                }
                match deadline {
                    None => {
                        inner = self.shared.recv_cv.wait(inner).expect("mpsc lock poisoned");
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return None;
                        }
                        let (guard, _) = self
                            .shared
                            .recv_cv
                            .wait_timeout(inner, d - now)
                            .expect("mpsc lock poisoned");
                        inner = guard;
                    }
                }
            }
        }

        /// Close the channel from the receiving side; senders see `Closed`.
        pub fn close(&mut self) {
            let mut inner = self.shared.inner.lock().expect("mpsc lock poisoned");
            inner.rx_alive = false;
            self.shared.send_cv.notify_all();
        }
    }

    struct RecvFuture<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for RecvFuture<'_, T> {
        type Output = Option<T>;

        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<T>> {
            if crate::det::active() {
                // Det mode: never block inside poll — park the task and
                // let a sender's progress bump re-schedule it.
                return match self.rx.try_recv() {
                    Ok(v) => Poll::Ready(Some(v)),
                    Err(TryRecvError::Disconnected) => Poll::Ready(None),
                    Err(TryRecvError::Empty) => Poll::Pending,
                };
            }
            Poll::Ready(self.rx.recv_deadline(None))
        }
    }

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                rx_alive: true,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel.
    pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "mpsc bound must be positive");
        shared(Some(cap))
    }

    /// Unbounded sender (same type as bounded in the stand-in).
    pub type UnboundedSender<T> = Sender<T>;
    /// Unbounded receiver (same type as bounded in the stand-in).
    pub type UnboundedReceiver<T> = Receiver<T>;

    /// Create an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        shared(None)
    }
}

/// One-shot channel.
pub mod oneshot {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    enum Slot<T> {
        Empty,
        Value(T),
        SenderDropped,
        Taken,
    }

    struct Shared<T> {
        slot: Mutex<Slot<T>>,
        cv: Condvar,
    }

    /// Error returned when the sender is dropped without sending.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError(());

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing sent yet.
        Empty,
        /// Sender dropped without sending.
        Closed,
    }

    /// Sending half; consumed by `send`.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
        sent: bool,
    }

    impl<T> Sender<T> {
        /// Send the value; errors with it if the receiver is gone.
        pub fn send(mut self, value: T) -> Result<(), T> {
            let mut slot = self.shared.slot.lock().expect("oneshot lock poisoned");
            if Arc::strong_count(&self.shared) == 1 {
                return Err(value);
            }
            *slot = Slot::Value(value);
            self.sent = true;
            self.shared.cv.notify_all();
            drop(slot);
            // Wake det-parked receivers (no-op outside det mode).
            crate::det::note_progress();
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if !self.sent {
                let mut slot = self.shared.slot.lock().expect("oneshot lock poisoned");
                if matches!(*slot, Slot::Empty) {
                    *slot = Slot::SenderDropped;
                }
                self.shared.cv.notify_all();
                drop(slot);
                crate::det::note_progress();
            }
        }
    }

    /// Receiving half; awaiting it yields the sent value.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// True once a value (or sender-drop) is observable without blocking.
        pub fn is_terminated(&self) -> bool {
            !matches!(
                *self.shared.slot.lock().expect("oneshot lock poisoned"),
                Slot::Empty
            )
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut slot = self.shared.slot.lock().expect("oneshot lock poisoned");
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Value(v) => Ok(v),
                Slot::SenderDropped => Err(TryRecvError::Closed),
                prev @ Slot::Empty => {
                    *slot = prev;
                    Err(TryRecvError::Empty)
                }
                Slot::Taken => Err(TryRecvError::Closed),
            }
        }

        /// Blocking receive, usable from synchronous code.
        pub fn blocking_recv(self) -> Result<T, RecvError> {
            self.recv_deadline(None)
        }

        /// Stand-in extra: blocking receive with a timeout.
        pub fn recv_timeout(self, timeout: Duration) -> Result<T, RecvError> {
            self.recv_deadline(Some(Instant::now() + timeout))
        }

        fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, RecvError> {
            let mut slot = self.shared.slot.lock().expect("oneshot lock poisoned");
            loop {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Value(v) => return Ok(v),
                    Slot::SenderDropped | Slot::Taken => return Err(RecvError(())),
                    prev @ Slot::Empty => *slot = prev,
                }
                match deadline {
                    None => {
                        slot = self.shared.cv.wait(slot).expect("oneshot lock poisoned");
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(RecvError(()));
                        }
                        let (guard, _) = self
                            .shared
                            .cv
                            .wait_timeout(slot, d - now)
                            .expect("oneshot lock poisoned");
                        slot = guard;
                    }
                }
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            if crate::det::active() {
                // Det mode: never block inside poll — park until the
                // sender's progress bump re-schedules this task.
                return match self.try_recv() {
                    Ok(v) => Poll::Ready(Ok(v)),
                    Err(TryRecvError::Closed) => Poll::Ready(Err(RecvError(()))),
                    Err(TryRecvError::Empty) => Poll::Pending,
                };
            }
            Poll::Ready(self.recv_deadline(None))
        }
    }

    /// Create a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot::Empty),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
                sent: false,
            },
            Receiver { shared },
        )
    }
}
