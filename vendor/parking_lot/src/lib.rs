//! Offline stand-in for `parking_lot` (API-compatible subset).
//!
//! Backed by `std::sync` primitives with parking_lot's ergonomics: locks
//! never return poison errors (a panicked holder just releases), guards
//! implement `Deref`/`DerefMut`, and [`Condvar`] waits take the guard by
//! `&mut` instead of by value.
//!
//! Performance note: the real parking_lot is faster under heavy
//! contention; this shim trades that for zero dependencies. The workspace
//! treats lock hold times as the quantity to minimize (see the sharded
//! `StateStore`), which keeps the difference second-order.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other holders
    /// do not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]; the `Option` lets [`Condvar`] waits move the
/// std guard out and back while keeping the caller's `&mut` borrow alive.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic_and_condvar_timeout() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !*g {
            if cv.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock stays usable");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
