//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (all JSON
//! emitted by the CLI is hand-rolled), so the traits here are pure markers
//! with blanket impls and the derive macros expand to nothing. If a future
//! change actually serializes through serde, replace this shim with the
//! real crate.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
