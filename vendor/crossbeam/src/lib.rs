//! Offline stand-in for `crossbeam` (the `channel` module subset FTC uses).
//!
//! Provides mpmc bounded/unbounded channels where both [`channel::Sender`]
//! and [`channel::Receiver`] are `Clone`. A channel disconnects when every
//! handle on the other side is dropped, matching crossbeam's semantics for
//! `send`, `try_send`, `recv`, `try_recv` and `recv_timeout`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `usize::MAX` for unbounded channels.
        cap: usize,
        /// Signalled when an item is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when an item is popped or all receivers drop.
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn senders_gone(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }

        fn receivers_gone(&self) -> bool {
            self.receivers.load(Ordering::SeqCst) == 0
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Creates a bounded mpmc channel holding at most `cap` items.
    /// `bounded(0)` is treated as capacity 1 (this shim has no rendezvous
    /// mode; the workspace never constructs a zero-capacity channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(cap.max(1))
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T: Send> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Sender::send_timeout`]; the unsent value is
    /// handed back.
    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
                SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("timed out sending on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl<T: Send> std::error::Error for SendTimeoutError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a channel. Clone freely; the channel disconnects
    /// for receivers once every clone is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued, or returns it if every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if shared.receivers_gone() {
                    return Err(SendError(value));
                }
                if q.len() < shared.cap {
                    q.push_back(value);
                    drop(q);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                q = match shared.not_full.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Enqueues without blocking, failing on a full or disconnected
        /// channel.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            if shared.receivers_gone() {
                return Err(TrySendError::Disconnected(value));
            }
            if q.len() >= shared.cap {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Blocks up to `timeout` for queue space, returning the value on
        /// timeout or disconnection.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let shared = &*self.shared;
            let deadline = Instant::now() + timeout;
            let mut q = shared.lock();
            loop {
                if shared.receivers_gone() {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if q.len() < shared.cap {
                    q.push_back(value);
                    drop(q);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let wait = (deadline - now).min(Duration::from_millis(50));
                q = match shared.not_full.wait_timeout(q, wait) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True if no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel. Clone freely; items go to whichever
    /// clone pops them first (work stealing, not broadcast).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders_gone() {
                    return Err(RecvError);
                }
                q = match shared.not_empty.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Pops without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            if let Some(v) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders_gone() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for an item.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Blocks until `deadline` for an item.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders_gone() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let wait = (deadline - now).min(Duration::from_millis(50));
                q = match shared.not_empty.wait_timeout(q, wait) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True if no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so they observe it.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_try_send_full_then_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            match tx.try_send(2) {
                Err(TrySendError::Full(2)) => {}
                other => panic!("expected Full, got {other:?}"),
            }
            drop(rx);
            match tx.try_send(3) {
                Err(TrySendError::Disconnected(3)) => {}
                other => panic!("expected Disconnected, got {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let producers: Vec<_> = (0..4)
                .map(|base| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100 {
                            tx.send(base * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }

        #[test]
        fn bounded_send_blocks_until_pop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap().unwrap();
        }
    }
}
