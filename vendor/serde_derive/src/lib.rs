//! No-op derive macros backing the offline `serde` shim. The shim's traits
//! carry blanket impls, so the derives have nothing to emit.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` shim blanket-implements `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` shim blanket-implements `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
