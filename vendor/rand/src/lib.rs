//! Offline stand-in for `rand` 0.8 (API-compatible subset).
//!
//! [`rngs::StdRng`] is a SplitMix64 generator — not the real crate's
//! ChaCha12, so seeded streams differ from upstream `rand`, but every
//! use in this workspace only needs *deterministic* randomness, not a
//! specific stream. Statistical quality of SplitMix64 is more than
//! adequate for test-case generation and simulated workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of an rng from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods; blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range` (modulo sampling — bias is
    /// negligible for the small spans used here).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(20..60u16);
            assert!((20..60).contains(&v));
            let w: usize = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
