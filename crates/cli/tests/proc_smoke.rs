//! Multi-process smoke test: the Table-2 reference chain deployed as OS
//! processes (one `ftc node` per replica, Unix sockets in between), driven
//! end to end, then subjected to a replica kill and the three-step
//! recovery. This is the tier-1 proof that the socket transport carries
//! the full FTC protocol — data plane, piggyback replication, control
//! plane and failover — across real process boundaries.

use ftc::orch::{ProcChain, ProcConfig};
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 0, 0, 5), src_port)
        .dst(Ipv4Addr::new(10, 77, 0, 1), 80)
        .ident(ident)
        .build()
}

/// Injects `idents` packets of flow `src_port` and returns the egressed
/// packets' (src_ip, src_port) after both NATs.
fn drive(chain: &ProcChain, src_port: u16, idents: std::ops::Range<u16>) -> Vec<(Ipv4Addr, u16)> {
    let n = idents.len();
    for i in idents {
        chain.inject(pkt(src_port, i));
    }
    let got = chain.egress().collect(n, Duration::from_secs(60));
    got.iter()
        .map(|p| {
            let k = p.flow_key().unwrap();
            (k.src_ip, k.src_port)
        })
        .collect()
}

#[test]
fn table2_chain_as_processes_survives_replica_kill() {
    let dir = std::env::temp_dir().join(format!("ftc-proc-smoke-{}", std::process::id()));
    let chain = ProcChain::deploy(ProcConfig {
        chain: "mazu_nat(ext=203.0.113.2) -> mazu_nat(ext=203.0.113.3)".to_string(),
        f: 1,
        workers: 1,
        dir,
        exe: std::path::PathBuf::from(env!("CARGO_BIN_EXE_ftc")),
    })
    .expect("multi-process deploy");
    assert_eq!(chain.len(), 2, "f = 1 over two middleboxes: two processes");
    assert!(chain.is_alive(0) && chain.is_alive(1));

    // Warm traffic: one flow through both NATs. The egress source must be
    // the second NAT's external IP, with a stable allocated port.
    let before = drive(&chain, 4321, 0..30);
    assert_eq!(before.len(), 30, "all warm packets must egress");
    let ext = Ipv4Addr::new(203, 0, 113, 3);
    assert!(
        before.iter().all(|(ip, _)| *ip == ext),
        "NAT must rewrite the source: {before:?}"
    );
    let mapping = before[0];
    assert!(
        before.iter().all(|m| *m == mapping),
        "one flow, one mapping: {before:?}"
    );
    // Let the piggyback replication of the NAT state settle before the
    // kill, so the survivor holds the mappings the replacement will fetch.
    std::thread::sleep(Duration::from_millis(300));

    // Fail-stop the head replica's process and run three-step recovery.
    chain.kill(0);
    assert!(!chain.is_alive(0));
    chain.recover(0).expect("three-step recovery");
    assert!(chain.is_alive(0));

    // The same flow must keep the same NAT mapping: the replacement
    // process fetched the first NAT's flow table from the survivor, so
    // packet 31 translates exactly like packet 1 did.
    let after = drive(&chain, 4321, 100..130);
    assert_eq!(after.len(), 30, "all post-recovery packets must egress");
    assert!(
        after.iter().all(|m| *m == mapping),
        "NAT mapping must survive the failover: {mapping:?} vs {after:?}"
    );

    // A fresh flow still works end to end (the allocator state recovered
    // too, handing out a new port rather than a colliding one).
    let fresh = drive(&chain, 9876, 200..210);
    assert_eq!(fresh.len(), 10);
    assert!(fresh.iter().all(|(ip, _)| *ip == ext));
    assert!(
        fresh.iter().all(|m| *m != mapping),
        "distinct flows must not share a mapping"
    );

    let snap = chain.merged_snapshot();
    assert!(
        snap.logs_applied > 0,
        "piggyback logs must flow across the process boundary"
    );
}

#[test]
fn bench_remote_emits_valid_artifact() {
    let tag = format!("ftc-bench-remote-test-{}", std::process::id());
    let out = std::env::temp_dir().join(format!("{tag}.json"));
    let dir = std::env::temp_dir().join(tag);
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_ftc"))
        .args([
            "bench",
            "--remote",
            "--quick",
            "--seconds",
            "0.2",
            "--clients",
            "2",
        ])
        .arg("--out")
        .arg(&out)
        .arg("--dir")
        .arg(&dir)
        .status()
        .expect("running ftc bench --remote");
    assert!(status.success(), "bench --remote must exit 0");
    let body = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_file(&out).ok();
    assert!(body.contains("\"bench\":\"table2-remote\""));
    assert!(body.contains("\"clients\":2"));
    assert!(body.contains("\"pps\":"));
    for stage in ["transaction", "piggyback", "apply", "forwarder", "buffer"] {
        assert!(body.contains(&format!("\"{stage}\":")), "missing {stage}");
    }
}
