//! `ftc bench`: the standing hot-path benchmark.
//!
//! Drives the Table-2 reference chain (MazuNAT × 2, f = 1) on the threaded
//! runtime and emits a machine-readable `BENCH_table2.json` containing the
//! sustained throughput and the per-stage latency percentiles of the packet
//! path. The committed copy of that file is the baseline
//! `scripts/check.sh --bench-gate` compares against, so the bench trajectory
//! is tracked in-tree: a hot-path regression shows up as a failing gate, not
//! as an anecdote.
//!
//! `--engine {twopl,batched}` selects the state engine the measured chain
//! deploys with (default `twopl`, the gate baseline). Every run also emits
//! an `"engines"` section — a Figure-6-style sharing-level sweep (Monitor
//! at sharing 1/2/4/8, both engines) quantifying where the epoch-batched
//! engine beats 2PL. The gate compares only the baseline `pps`/`stages`
//! keys, so the sweep is informational trajectory data, not a gate input.

use crate::args::ParsedArgs;
use ftc::core::metrics::StageStats;
use ftc::prelude::*;
use ftc::traffic::WorkloadConfig;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// The Table-2 stages in report order.
const STAGES: [&str; 5] = ["transaction", "piggyback", "apply", "forwarder", "buffer"];

fn stage_json(s: &StageStats) -> String {
    format!(
        "{{\"samples\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
        s.samples, s.mean_ns, s.p50_ns, s.p99_ns, s.p999_ns
    )
}

/// Runs the benchmark and writes the JSON artifact. `--quick` shortens the
/// measurement for CI smoke runs (the artifact records which mode produced
/// it, and the gate refuses to compare across modes). `--remote` deploys
/// the same chain as OS processes over Unix sockets instead of threads.
pub fn cmd_bench(args: &ParsedArgs) -> Result<(), String> {
    if args.flag("remote") {
        return cmd_bench_remote(args);
    }
    let quick = args.flag("quick");
    let seconds = args.get_f64("seconds", if quick { 0.4 } else { 4.0 })?;
    let workers = args.get_usize("workers", 2)?;
    let inflight = args.get_usize("inflight", 32)?;
    let engine = args
        .get("engine")
        .unwrap_or(EngineKind::TwoPl.name())
        .parse::<EngineKind>()
        .map_err(|e| e.to_string())?;
    let out = args.get("out").unwrap_or("BENCH_table2.json").to_string();

    println!(
        "ftc bench: MazuNAT -> MazuNAT, f = 1, workers = {workers}, \
         engine = {engine}, {seconds} s closed loop ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 2),
            },
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 3),
            },
        ])
        .with_f(1)
        .with_workers(workers)
        .with_engine(engine),
    );
    let runner = TrafficRunner::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    let report = runner.closed_loop(&chain, inflight, Duration::from_secs_f64(seconds));
    std::thread::sleep(Duration::from_millis(50));
    let snap = chain.metrics.snapshot();

    let stages = [
        ("transaction", snap.transaction),
        ("piggyback", snap.piggyback),
        ("apply", snap.apply),
        ("forwarder", snap.forwarder),
        ("buffer", snap.buffer),
    ];
    debug_assert_eq!(stages.len(), STAGES.len());
    println!(
        "{:<14} {:>9} {:>11} {:>11} {:>11}",
        "stage", "samples", "mean (ns)", "p50 (ns)", "p99 (ns)"
    );
    for (name, s) in &stages {
        println!(
            "{name:<14} {:>9} {:>11} {:>11} {:>11}",
            s.samples, s.mean_ns, s.p50_ns, s.p99_ns
        );
    }
    println!(
        "throughput: {:.0} pps sustained over {} packets",
        report.pps, report.received
    );

    let reconfig_json = if args.flag("reconfig") {
        format!(",\"reconfig\":{}", bench_reconfig(seconds, inflight)?)
    } else {
        String::new()
    };
    let engines_json = bench_engine_sweep(quick, inflight);

    let stages_json: Vec<String> = stages
        .iter()
        .map(|(name, s)| format!("\"{name}\":{}", stage_json(s)))
        .collect();
    let json = format!(
        "{{\"bench\":\"table2\",\"chain\":\"mazu_nat -> mazu_nat\",\"quick\":{quick},\
         \"seconds\":{seconds},\"workers\":{workers},\"inflight\":{inflight},\
         \"engine\":\"{engine}\",\
         \"received\":{},\"pps\":{:.1},\"mean_piggyback_bytes\":{:.1},\
         \"stages\":{{{}}},\"engines\":{engines_json}{reconfig_json}}}\n",
        report.received,
        report.pps,
        snap.mean_piggyback_bytes,
        stages_json.join(","),
    );
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Sharing levels the engine sweep measures (paper Figure 6's x-axis).
const SWEEP_SHARING: [usize; 4] = [1, 2, 4, 8];
/// Worker count of the sweep chain: enough threads that sharing level 8
/// means full contention on one counter.
const SWEEP_WORKERS: usize = 8;

/// The Figure-6-style engine sweep: a single Monitor middlebox (`f = 1`,
/// [`SWEEP_WORKERS`] workers) at each sharing level, once per state
/// engine. Low sharing favours the optimistic batched engine (validation
/// almost never fails); at full sharing every transaction conflicts and
/// 2PL's wound-wait usually wins — the sweep records where the crossover
/// sits on this machine. Returns the `"engines"` JSON object.
fn bench_engine_sweep(quick: bool, inflight: usize) -> String {
    let window = Duration::from_secs_f64(if quick { 0.12 } else { 0.5 });
    let mut per_engine = Vec::new();
    for kind in EngineKind::ALL {
        let mut cells = Vec::new();
        for sharing in SWEEP_SHARING {
            let chain = FtcChain::deploy(
                ChainConfig::ch_n(1, sharing)
                    .with_f(1)
                    .with_workers(SWEEP_WORKERS)
                    .with_engine(kind),
            );
            let runner = TrafficRunner::new(WorkloadConfig {
                flows: 64,
                frame_len: 256,
                ..Default::default()
            });
            let report = runner.closed_loop(&chain, inflight, window);
            println!(
                "engines sweep: {kind:>7}, sharing {sharing}: {:>9.0} pps",
                report.pps
            );
            cells.push(format!(
                "{{\"sharing\":{sharing},\"pps\":{:.1},\"received\":{}}}",
                report.pps, report.received
            ));
        }
        per_engine.push(format!("\"{kind}\":[{}]", cells.join(",")));
    }
    format!(
        "{{\"chain\":\"monitor\",\"workers\":{SWEEP_WORKERS},\"sharing_levels\":[1,2,4,8],{}}}",
        per_engine.join(",")
    )
}

/// Closed-loop driving (same shape as `TrafficRunner::closed_loop`) until
/// the window closes; returns packets received. `in_flight` carries the
/// credit across calls so a window can resume after a handover.
fn drive_window(
    chain: &FtcChain,
    egress: &Egress,
    wl: &mut Workload,
    inflight: usize,
    in_flight: &mut usize,
    start: Instant,
    window: Duration,
) -> usize {
    let mut received = 0usize;
    while start.elapsed() < window {
        while *in_flight < inflight {
            chain.inject(wl.next_packet());
            *in_flight += 1;
        }
        while egress.recv(Duration::from_micros(200)).is_some() {
            received += 1;
            *in_flight = in_flight.saturating_sub(1);
            if *in_flight >= inflight {
                break;
            }
        }
    }
    received
}

/// One closed-loop measurement window against a healthy chain.
fn windowed_pps(chain: &FtcChain, wl: &mut Workload, inflight: usize, window: Duration) -> f64 {
    let egress = chain.egress();
    let start = Instant::now();
    let mut in_flight = 0usize;
    let received = drive_window(chain, &egress, wl, inflight, &mut in_flight, start, window);
    received as f64 / start.elapsed().as_secs_f64()
}

fn report_json(r: &ftc::orch::ReconfigReport) -> String {
    format!(
        "{{\"prepare_ns\":{},\"transfer_ns\":{},\"switch_ns\":{},\"release_ns\":{},\
         \"total_ns\":{},\"bytes\":{}}}",
        r.prepare.as_nanos(),
        r.transfer.as_nanos(),
        r.switch.as_nanos(),
        r.release.as_nanos(),
        r.total().as_nanos(),
        r.bytes_transferred,
    )
}

/// `ftc bench --reconfig`: the Table-2 chain scaling its second MazuNAT
/// 2 -> 3 -> 2 workers *under load*. Each handover window injects a burst
/// right before [`Orchestrator::scale_instance`] so the four-phase
/// handshake runs with traffic in flight; in-flight packets parked at the
/// quiescing source are lost (§4.1 semantics, like any planned outage), so
/// the window's throughput is the *dip* the reconfiguration costs.
/// Recovery time is the handover total reported per phase. Returns the
/// `"reconfig"` JSON object embedded into the bench artifact.
fn bench_reconfig(seconds: f64, inflight: usize) -> Result<String, String> {
    const IDX: usize = 1;
    let window = Duration::from_secs_f64((seconds / 4.0).max(0.2));
    println!(
        "ftc bench --reconfig: scaling r{IDX} 2 -> 3 -> 2 workers under load \
         ({window:.1?} windows)"
    );
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 2),
            },
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 3),
            },
        ])
        .with_f(1)
        .with_workers(2),
    );
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());
    let mut wl = Workload::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });

    // A handover window: burst in flight, scale, then keep the load on
    // until the window closes. Whatever the quiescing source discarded is
    // written off (in-flight credit reset), charging the loss and the
    // stall to this window's throughput.
    let handover = |orch: &mut Orchestrator,
                    wl: &mut Workload,
                    workers: usize|
     -> Result<(f64, ftc::orch::ReconfigReport), String> {
        let egress = orch.chain.egress();
        let start = Instant::now();
        for _ in 0..inflight {
            orch.chain.inject(wl.next_packet());
        }
        let report = orch
            .scale_instance(IDX, workers)
            .map_err(|e| format!("scale of r{IDX} to {workers} workers failed: {e}"))?;
        let mut received = egress.collect(inflight, Duration::from_millis(100)).len();
        let mut in_flight = 0usize;
        received += drive_window(
            &orch.chain,
            &egress,
            wl,
            inflight,
            &mut in_flight,
            start,
            window,
        );
        Ok((received as f64 / start.elapsed().as_secs_f64(), report))
    };

    let pps_before = windowed_pps(&orch.chain, &mut wl, inflight, window);
    let (pps_dip_up, up) = handover(&mut orch, &mut wl, 3)?;
    let pps_scaled = windowed_pps(&orch.chain, &mut wl, inflight, window);
    let (pps_dip_down, down) = handover(&mut orch, &mut wl, 2)?;
    let pps_after = windowed_pps(&orch.chain, &mut wl, inflight, window);

    let dip = pps_dip_up.min(pps_dip_down);
    println!(
        "reconfig: {pps_before:.0} pps before, dip to {dip:.0} pps \
         ({:.0}% of steady), {pps_scaled:.0} pps at 3 workers, \
         {pps_after:.0} pps after",
        if pps_before > 0.0 {
            100.0 * dip / pps_before
        } else {
            0.0
        },
    );
    println!(
        "reconfig: scale-up handover {:.1?} ({} B state), scale-down {:.1?} ({} B)",
        up.total(),
        up.bytes_transferred,
        down.total(),
        down.bytes_transferred,
    );
    Ok(format!(
        "{{\"path\":[2,3,2],\"pps_before\":{pps_before:.1},\"pps_dip_up\":{pps_dip_up:.1},\
         \"pps_scaled\":{pps_scaled:.1},\"pps_dip_down\":{pps_dip_down:.1},\
         \"pps_after\":{pps_after:.1},\"scale_up\":{},\"scale_down\":{}}}",
        report_json(&up),
        report_json(&down),
    ))
}

/// `ftc bench --remote`: the Table-2 chain deployed as OS processes (one
/// `ftc node` child per replica, Unix sockets in between) and driven by
/// `--clients` concurrent closed-loop drivers. Emits the same JSON schema
/// as the in-process bench under `"bench":"table2-remote"`, to a separate
/// default artifact so the in-process bench gate baseline is untouched.
fn cmd_bench_remote(args: &ParsedArgs) -> Result<(), String> {
    let quick = args.flag("quick");
    let seconds = args.get_f64("seconds", if quick { 0.4 } else { 4.0 })?;
    let workers = args.get_usize("workers", 2)?;
    let inflight = args.get_usize("inflight", 32)?;
    let clients = args.get_usize("clients", 2)?.max(1);
    let out = args
        .get("out")
        .unwrap_or("BENCH_table2_remote.json")
        .to_string();
    let dir = match args.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("ftc-bench-remote-{}", std::process::id())),
    };
    let exe = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;

    println!(
        "ftc bench --remote: MazuNAT -> MazuNAT, f = 1, workers = {workers}, \
         3 processes over UDS in {}, {clients} clients, {seconds} s closed loop ({} mode)",
        dir.display(),
        if quick { "quick" } else { "full" }
    );
    let chain = ftc::orch::ProcChain::deploy(ftc::orch::ProcConfig {
        chain: "mazu_nat(ext=203.0.113.2) -> mazu_nat(ext=203.0.113.3)".to_string(),
        f: 1,
        workers,
        dir,
        exe,
    })?;

    let dur = Duration::from_secs_f64(seconds);
    let (received, pps) = std::thread::scope(|s| {
        let chain = &chain;
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || {
                    let runner = TrafficRunner::new(WorkloadConfig {
                        flows: 64,
                        frame_len: 256,
                        ..Default::default()
                    });
                    runner.closed_loop(chain, inflight, dur)
                })
            })
            .collect();
        let mut received = 0u64;
        let mut pps = 0.0f64;
        for h in handles {
            let r = h.join().expect("bench client panicked");
            received += r.received;
            pps += r.pps;
        }
        (received, pps)
    });
    std::thread::sleep(Duration::from_millis(50));
    let snap = chain.merged_snapshot();

    let stages = [
        ("transaction", snap.transaction),
        ("piggyback", snap.piggyback),
        ("apply", snap.apply),
        ("forwarder", snap.forwarder),
        ("buffer", snap.buffer),
    ];
    println!(
        "{:<14} {:>9} {:>11} {:>11} {:>11}",
        "stage", "samples", "mean (ns)", "p50 (ns)", "p99 (ns)"
    );
    for (name, s) in &stages {
        println!(
            "{name:<14} {:>9} {:>11} {:>11} {:>11}",
            s.samples, s.mean_ns, s.p50_ns, s.p99_ns
        );
    }
    println!("throughput: {pps:.0} pps sustained over {received} packets");

    let stages_json: Vec<String> = stages
        .iter()
        .map(|(name, s)| format!("\"{name}\":{}", stage_json(s)))
        .collect();
    let json = format!(
        "{{\"bench\":\"table2-remote\",\"chain\":\"mazu_nat -> mazu_nat\",\"quick\":{quick},\
         \"seconds\":{seconds},\"workers\":{workers},\"inflight\":{inflight},\
         \"clients\":{clients},\
         \"received\":{received},\"pps\":{pps:.1},\"mean_piggyback_bytes\":{:.1},\
         \"stages\":{{{}}}}}\n",
        snap.mean_piggyback_bytes,
        stages_json.join(","),
    );
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn bench_quick_emits_valid_artifact() {
        let out = std::env::temp_dir().join(format!("ftc_bench_test_{}.json", std::process::id()));
        let argv: Vec<String> = [
            "bench",
            "--quick",
            "--seconds",
            "0.2",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_bench(&parse_args(&argv).unwrap()).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&out).ok();
        assert!(body.contains("\"bench\":\"table2\""));
        assert!(body.contains("\"quick\":true"));
        assert!(body.contains("\"pps\":"));
        assert!(
            body.contains("\"engine\":\"twopl\""),
            "default engine recorded"
        );
        for stage in STAGES {
            assert!(body.contains(&format!("\"{stage}\":")), "missing {stage}");
        }
        // The engine sweep is always present: both engines, all four
        // sharing levels.
        assert!(body.contains("\"engines\":{"), "missing engines sweep");
        for kind in EngineKind::ALL {
            assert!(
                body.contains(&format!("\"{kind}\":[")),
                "missing {kind} sweep"
            );
        }
        assert!(body.contains("\"sharing_levels\":[1,2,4,8]"));
        assert!(
            !body.contains("\"reconfig\":"),
            "no reconfig section without --reconfig"
        );
    }

    #[test]
    fn bench_engine_flag_selects_the_batched_engine() {
        let out =
            std::env::temp_dir().join(format!("ftc_bench_engine_test_{}.json", std::process::id()));
        let argv: Vec<String> = [
            "bench",
            "--quick",
            "--seconds",
            "0.2",
            "--engine",
            "batched",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_bench(&parse_args(&argv).unwrap()).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&out).ok();
        assert!(body.contains("\"engine\":\"batched\""));
        assert!(body.contains("\"pps\":"));
    }

    #[test]
    fn bench_rejects_unknown_engine() {
        let argv: Vec<String> = ["bench", "--quick", "--engine", "optimist"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = cmd_bench(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.contains("unknown state engine"), "{err}");
        assert!(
            err.contains("twopl"),
            "error names the known engines: {err}"
        );
    }

    #[test]
    fn bench_reconfig_embeds_handover_section() {
        let out = std::env::temp_dir().join(format!(
            "ftc_bench_reconfig_test_{}.json",
            std::process::id()
        ));
        let argv: Vec<String> = [
            "bench",
            "--quick",
            "--reconfig",
            "--seconds",
            "0.2",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_bench(&parse_args(&argv).unwrap()).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&out).ok();
        assert!(body.contains("\"reconfig\":{\"path\":[2,3,2]"));
        for key in [
            "\"pps_before\":",
            "\"pps_dip_up\":",
            "\"pps_scaled\":",
            "\"pps_dip_down\":",
            "\"pps_after\":",
            "\"scale_up\":",
            "\"scale_down\":",
            "\"total_ns\":",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }
}
