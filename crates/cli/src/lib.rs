//! Implementation of the `ftc` command-line tool.
//!
//! Subcommands:
//!
//! * `ftc run` — deploy an FTC chain from a chain-spec string, push
//!   synthetic traffic through it, and print protocol counters.
//! * `ftc compare` — run the same chain under FTC, NF and FTMB on the
//!   threaded runtime and print throughput/latency side by side.
//! * `ftc sim` — run a calibrated-simulator experiment.
//! * `ftc drill` — kill and recover every replica position in turn.
//! * `ftc bench` — run the standing Table-2 benchmark and emit
//!   `BENCH_table2.json` (the `--bench-gate` baseline format).
//!
//! Chains are written in the Click-flavoured spec language of
//! [`ftc::mbox::spec_lang`], e.g.
//! `"firewall(deny_ports=23) -> monitor(sharing=2) -> mazu_nat(ext=203.0.113.1)"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod bench;
pub mod commands;

pub use args::{parse_args, Command, ParsedArgs};

/// Entry point shared by the binary and tests. Returns the process exit
/// code.
pub fn run(argv: &[String]) -> i32 {
    match parse_args(argv) {
        Ok(parsed) => match commands::dispatch(&parsed) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            2
        }
    }
}
