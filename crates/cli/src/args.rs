//! Hand-rolled argument parsing (the offline dependency set has no CLI
//! crate; the grammar is small enough that explicitness beats a framework).

use std::collections::HashMap;

/// Usage text printed on parse errors and `ftc help`.
pub const USAGE: &str = "\
ftc — fault tolerant service function chaining

USAGE:
  ftc run     --chain \"<spec>\" [--f N] [--workers N] [--packets N] [--loss P]
  ftc stats   --chain \"<spec>\" [--f N] [--workers N] [--packets N] [--json]
  ftc trace   --chain \"<spec>\" [--f N] [--packets N] [--kill R] [--json]
  ftc compare --chain \"<spec>\" [--workers N] [--seconds S]
  ftc sim     --chain \"<spec>\" --system <ftc|nf|ftmb|ftmb-snap>
              [--f N] [--workers N] [--rate <Mpps|max>] [--packet-bytes B]
  ftc drill   --chain \"<spec>\" [--f N]
  ftc reconfig --chain \"<spec>\" --idx N (--scale W | --migrate R)
              [--f N] [--workers N] [--packets N]
  ftc bench   [--quick] [--seconds S] [--workers N] [--inflight N] [--out FILE]
              [--engine twopl|batched] [--remote] [--clients N] [--dir DIR]
              [--reconfig]
  ftc node    --chain \"<spec>\" --idx N --dir DIR [--f N] [--workers N] [--recover]
  ftc help

CHAIN SPECS (Click-flavoured):
  monitor(sharing=N) | gen(state=BYTES) | mazu_nat(ext=IP) | simple_nat(ext=IP)
  ids(scan_threshold=N, signatures=A|B) | lb(backends=IP|IP) |
  firewall(deny_src=CIDR, deny_ports=LO-HI, allow_src=CIDR) | passthrough
  joined with `->`, e.g.:
    \"firewall(deny_ports=23) -> monitor(sharing=2) -> mazu_nat(ext=203.0.113.1)\"

EXAMPLES:
  ftc run --chain \"monitor -> monitor\" --packets 1000
  ftc stats --chain \"monitor -> monitor\" --packets 1000 --json
  ftc trace --chain \"firewall -> monitor\" --kill 1
  ftc compare --chain \"firewall -> monitor -> simple_nat(ext=198.51.100.1)\"
  ftc sim --chain \"monitor(sharing=8)\" --system ftc --rate max
  ftc drill --chain \"firewall -> monitor -> simple_nat(ext=198.51.100.1)\"
  ftc reconfig --chain \"monitor -> monitor\" --idx 1 --scale 2
  ftc bench --quick --out BENCH_table2.json
  ftc bench --remote --quick --clients 2
  ftc bench --quick --reconfig

`ftc reconfig` performs a live four-phase handover (prepare, transfer,
switch, release): `--scale W` rescales replica N to W workers, `--migrate R`
moves it to region R. `ftc bench --reconfig` additionally measures the
Table-2 chain scaling 2 -> 3 -> 2 workers under load.

`ftc node` runs one replica as an OS process (normally spawned by the
parent: `ftc bench --remote` or the programmatic ProcChain deployer).";

/// The selected subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Deploy and drive one FTC chain.
    Run,
    /// Drive a chain and report the metrics snapshot (Table-2 stages).
    Stats,
    /// Drive a chain (optionally kill a replica) and dump the journal.
    Trace,
    /// Compare FTC/NF/FTMB on the threaded runtime.
    Compare,
    /// Run a simulator experiment.
    Sim,
    /// Failover drill.
    Drill,
    /// Live reconfiguration: scale or migrate one replica via handover.
    Reconfig,
    /// Run the standing Table-2 benchmark and emit BENCH_table2.json.
    Bench,
    /// Run one replica as an OS process (spawned by a multi-process parent).
    Node,
    /// Print usage.
    Help,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: Command,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

impl ParsedArgs {
    /// Fetches a string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Fetches a numeric option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// Fetches a float option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// True if the boolean flag (e.g. `--json`) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Fetches the mandatory `--chain` spec.
    pub fn chain(&self) -> Result<&str, String> {
        self.get("chain")
            .ok_or_else(|| "--chain \"<spec>\" is required".into())
    }
}

/// Flags that take no value; everything else is `--key value`.
const BOOL_FLAGS: &[&str] = &["json", "quick", "reconfig", "recover", "remote"];

/// Parses `argv` (excluding the program name).
pub fn parse_args(argv: &[String]) -> Result<ParsedArgs, String> {
    let mut it = argv.iter();
    let command = match it.next().map(|s| s.as_str()) {
        Some("run") => Command::Run,
        Some("stats") => Command::Stats,
        Some("trace") => Command::Trace,
        Some("compare") => Command::Compare,
        Some("sim") => Command::Sim,
        Some("drill") => Command::Drill,
        Some("reconfig") => Command::Reconfig,
        Some("bench") => Command::Bench,
        Some("node") => Command::Node,
        Some("help") | Some("--help") | Some("-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    };
    let mut options = HashMap::new();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected `--option`, got `{flag}`"));
        };
        let value = if BOOL_FLAGS.contains(&key) {
            "true".to_string()
        } else {
            let Some(value) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            value.clone()
        };
        if options.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given twice"));
        }
    }
    Ok(ParsedArgs { command, options })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let p = parse_args(&argv("run --chain monitor --packets 500")).unwrap();
        assert_eq!(p.command, Command::Run);
        assert_eq!(p.chain().unwrap(), "monitor");
        assert_eq!(p.get_usize("packets", 100).unwrap(), 500);
        assert_eq!(p.get_usize("f", 1).unwrap(), 1, "default applies");
    }

    #[test]
    fn bool_flags_consume_no_value() {
        let p = parse_args(&argv("stats --chain monitor --json --packets 50")).unwrap();
        assert_eq!(p.command, Command::Stats);
        assert!(p.flag("json"));
        assert_eq!(p.get_usize("packets", 100).unwrap(), 50);
        let p = parse_args(&argv("trace --chain monitor --kill 1")).unwrap();
        assert_eq!(p.command, Command::Trace);
        assert!(!p.flag("json"));
        assert_eq!(p.get("kill"), Some("1"));
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn errors() {
        assert!(parse_args(&argv("explode")).is_err());
        assert!(parse_args(&argv("run --chain")).is_err());
        assert!(parse_args(&argv("run chain monitor")).is_err());
        assert!(parse_args(&argv("run --f 1 --f 2")).is_err());
        let p = parse_args(&argv("run --packets abc")).unwrap();
        assert!(p.get_usize("packets", 1).is_err());
        assert!(p.chain().is_err());
    }
}
