//! The `ftc` command-line binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ftc_cli::run(&argv));
}
