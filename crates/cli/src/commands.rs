//! Subcommand implementations.

use crate::args::{Command, ParsedArgs, USAGE};
use ftc::baselines::{FtmbChain, NfChain};
use ftc::mbox::parse_chain;
use ftc::prelude::*;
use ftc::sim::{simulate, MbKind, SimConfig, SystemKind};
use ftc::traffic::WorkloadConfig;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Runs the selected subcommand.
pub fn dispatch(args: &ParsedArgs) -> Result<(), String> {
    match args.command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Run => cmd_run(args),
        Command::Compare => cmd_compare(args),
        Command::Sim => cmd_sim(args),
        Command::Drill => cmd_drill(args),
    }
}

fn specs_of(args: &ParsedArgs) -> Result<Vec<MbSpec>, String> {
    parse_chain(args.chain()?).map_err(|e| e.to_string())
}

fn cmd_run(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let workers = args.get_usize("workers", 1)?;
    let packets = args.get_usize("packets", 1000)?;
    let loss = args.get_f64("loss", 0.0)?;

    let mut cfg = ChainConfig::new(specs).with_f(f).with_workers(workers);
    if loss > 0.0 {
        cfg = cfg.with_link(LinkConfig::lossy(loss, loss / 2.0, 42));
    }
    let names: Vec<&str> = cfg.effective_middleboxes().iter().map(|s| s.name()).collect();
    println!("deploying FTC chain: {} (f = {f}, workers = {workers})", names.join(" -> "));
    let chain = FtcChain::deploy(cfg);

    let mut wl = Workload::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    for _ in 0..packets {
        chain.inject(wl.next_packet());
    }
    let got = chain.collect_egress(packets, Duration::from_secs(60));
    std::thread::sleep(Duration::from_millis(50));
    let m = &chain.metrics;
    println!("released {}/{packets} packets", got.len());
    println!(
        "protocol: logs applied {}, parked {}, stale {}, propagating {}, filtered {}",
        m.logs_applied.load(Ordering::Relaxed),
        m.logs_parked.load(Ordering::Relaxed),
        m.logs_stale.load(Ordering::Relaxed),
        m.propagating.load(Ordering::Relaxed),
        m.filtered.load(Ordering::Relaxed),
    );
    if let Some(b) = m.mean_piggyback_bytes() {
        println!("mean piggyback log: {b:.1} B/writing packet");
    }
    for slot in &chain.replicas {
        println!(
            "  r{} [{}]: own keys {}, replicates {:?}",
            slot.state.idx,
            slot.state.mbox.name(),
            slot.state.own_store.len(),
            slot.state.replicated.keys().collect::<Vec<_>>(),
        );
    }
    Ok(())
}

fn cmd_compare(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let workers = args.get_usize("workers", 1)?;
    let seconds = args.get_f64("seconds", 2.0)?;
    let runner = TrafficRunner::new(WorkloadConfig {
        flows: 128,
        frame_len: 256,
        ..Default::default()
    });
    let dur = Duration::from_secs_f64(seconds);

    println!(
        "{:<6} {:>12} {:>14} {:>14}",
        "system", "pps", "mean lat", "p99 lat"
    );
    let measure = |name: &str, sys: &dyn ChainSystem| {
        let tput = runner.closed_loop(sys, 64, dur);
        let lat = runner.open_loop(sys, 2_000.0, dur);
        println!(
            "{name:<6} {:>12.0} {:>14.1?} {:>14.1?}",
            tput.pps,
            lat.latency.mean().unwrap_or_default(),
            lat.latency.quantile(0.99).unwrap_or_default(),
        );
    };
    let nf = NfChain::deploy(ChainConfig::new(specs.clone()).with_workers(workers));
    measure("NF", &nf);
    let ftc = FtcChain::deploy(ChainConfig::new(specs.clone()).with_f(1).with_workers(workers));
    measure("FTC", &ftc);
    let ftmb = FtmbChain::deploy(ChainConfig::new(specs).with_workers(workers), None);
    measure("FTMB", &ftmb);
    println!("(threaded runtime on this machine; paper-scale numbers: `cargo bench`)");
    Ok(())
}

/// Maps runtime middlebox specs onto simulator kinds; the simulator models
/// the Table-1 middleboxes, so the richer ones approximate to the nearest
/// workload shape.
fn sim_kind(spec: &MbSpec, workers: usize) -> MbKind {
    match spec {
        MbSpec::Monitor { sharing_level } => MbKind::Monitor {
            sharing: (*sharing_level).min(workers.max(1)),
        },
        MbSpec::Gen { state_size } => MbKind::Gen { state: *state_size },
        MbSpec::MazuNat { .. } => MbKind::MazuNat,
        MbSpec::SimpleNat { .. } | MbSpec::LoadBalancer { .. } => MbKind::SimpleNat,
        MbSpec::Ids { .. } => MbKind::Monitor { sharing: workers.max(1) },
        MbSpec::Firewall { .. } => MbKind::Firewall,
        MbSpec::Passthrough => MbKind::Passthrough,
    }
}

fn cmd_sim(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let workers = args.get_usize("workers", 8)?;
    let f = args.get_usize("f", 1)?;
    let packet_bytes = args.get_usize("packet-bytes", 256)?;
    let system = match args.get("system").unwrap_or("ftc") {
        "ftc" => SystemKind::Ftc { f },
        "nf" => SystemKind::Nf,
        "ftmb" => SystemKind::Ftmb { snapshot: None },
        "ftmb-snap" => SystemKind::Ftmb { snapshot: Some((50e6, 6e6)) },
        other => return Err(format!("unknown --system `{other}`")),
    };
    let mut chain: Vec<MbKind> = specs.iter().map(|s| sim_kind(s, workers)).collect();
    if matches!(system, SystemKind::Ftc { .. }) {
        while chain.len() < f + 1 {
            chain.push(MbKind::Passthrough);
        }
    }

    let cfg = match args.get("rate").unwrap_or("max") {
        "max" => SimConfig::saturated(system, chain),
        r => {
            let mpps: f64 = r.parse().map_err(|_| format!("--rate expects Mpps or `max`, got `{r}`"))?;
            SimConfig::at_rate(system, chain, mpps * 1e6)
        }
    }
    .with_workers(workers)
    .with_packet_bytes(packet_bytes);

    let report = simulate(&cfg);
    println!("system: {}", report.system);
    println!("offered: {:.2} Mpps, achieved: {:.2} Mpps", report.offered_pps / 1e6, report.mpps());
    if let Some(mean) = report.mean_latency() {
        println!(
            "latency: mean {:.1?}, median {:.1?}, p99 {:.1?} ({} samples)",
            mean,
            report.median_latency().unwrap_or_default(),
            report.p99_latency().unwrap_or_default(),
            report.latency.len(),
        );
    }
    if report.trailer_bytes > 0.0 {
        println!("mean piggyback trailer: {:.0} B/hop", report.trailer_bytes);
    }
    Ok(())
}

fn cmd_drill(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f));
    let n = chain.len();
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    let mut wl = Workload::new(WorkloadConfig::default());
    for _ in 0..200 {
        orch.chain.inject(wl.next_packet());
    }
    let warmed = orch.chain.collect_egress(200, Duration::from_secs(30)).len();
    println!("warmed up with {warmed}/200 packets");
    std::thread::sleep(Duration::from_millis(100));

    for idx in 0..n {
        print!("killing r{idx}… ");
        orch.chain.kill(idx);
        match orch.recover(idx, ftc::net::RegionId(0)) {
            Ok(r) => println!(
                "recovered in {:.1?} (init {:.1?}, state {:.1?} / {} B, reroute {:.1?})",
                r.total(), r.initialization, r.state_recovery, r.bytes_transferred, r.rerouting
            ),
            Err(e) => return Err(format!("recovery of r{idx} failed: {e}")),
        }
        for _ in 0..50 {
            orch.chain.inject(wl.next_packet());
        }
        let got = orch.chain.collect_egress(50, Duration::from_secs(30)).len();
        println!("  post-recovery traffic: {got}/50 released");
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("drill complete: all {n} positions failed and recovered");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run_cmd(s: &str) -> Result<(), String> {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        dispatch(&parse_args(&argv).unwrap())
    }

    #[test]
    fn sim_command_works_end_to_end() {
        run_cmd("sim --chain monitor(sharing=2) --system ftc --rate 1").unwrap();
        run_cmd("sim --chain monitor --system nf --rate max").unwrap();
    }

    #[test]
    fn sim_rejects_bad_system() {
        let err = run_cmd("sim --chain monitor --system warp").unwrap_err();
        assert!(err.contains("unknown --system"));
    }

    #[test]
    fn run_command_small_chain() {
        run_cmd("run --chain monitor->monitor --packets 50").unwrap();
    }

    #[test]
    fn bad_chain_spec_reported() {
        let err = run_cmd("run --chain warpdrive").unwrap_err();
        assert!(err.contains("unknown middlebox"));
    }

    #[test]
    fn kind_mapping_covers_all_specs() {
        let specs = parse_chain(
            "monitor -> gen -> mazu_nat(ext=1.1.1.1) -> simple_nat(ext=1.1.1.2) \
             -> ids -> lb(backends=1.1.1.3) -> firewall -> passthrough",
        )
        .unwrap();
        for s in &specs {
            let _ = sim_kind(s, 8);
        }
    }
}
