//! Subcommand implementations.

use crate::args::{Command, ParsedArgs, USAGE};
use ftc::baselines::{FtmbChain, NfChain};
use ftc::mbox::parse_chain;
use ftc::prelude::*;
use ftc::sim::{simulate, MbKind, SimConfig, SystemKind};
use ftc::traffic::WorkloadConfig;
use std::time::Duration;

/// Runs the selected subcommand.
pub fn dispatch(args: &ParsedArgs) -> Result<(), String> {
    match args.command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Run => cmd_run(args),
        Command::Stats => cmd_stats(args),
        Command::Trace => cmd_trace(args),
        Command::Compare => cmd_compare(args),
        Command::Sim => cmd_sim(args),
        Command::Drill => cmd_drill(args),
        Command::Reconfig => cmd_reconfig(args),
        Command::Bench => crate::bench::cmd_bench(args),
        Command::Node => cmd_node(args),
    }
}

/// Runs one replica as this process — the receiving end of the `ftc node`
/// processes a multi-process deployment spawns. Blocks until the parent
/// sends a shutdown request.
fn cmd_node(args: &ParsedArgs) -> Result<(), String> {
    let dir = args
        .get("dir")
        .ok_or_else(|| "--dir DIR is required".to_string())?;
    let idx = args.get_usize("idx", usize::MAX)?;
    if idx == usize::MAX {
        return Err("--idx N is required".to_string());
    }
    ftc::orch::proc::run_node(&ftc::orch::proc::NodeOpts {
        chain: args.chain()?.to_string(),
        f: args.get_usize("f", 1)?,
        workers: args.get_usize("workers", 1)?,
        idx,
        dir: std::path::PathBuf::from(dir),
        recover: args.flag("recover"),
    })
}

fn specs_of(args: &ParsedArgs) -> Result<Vec<MbSpec>, String> {
    parse_chain(args.chain()?).map_err(|e| e.to_string())
}

fn cmd_run(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let workers = args.get_usize("workers", 1)?;
    let packets = args.get_usize("packets", 1000)?;
    let loss = args.get_f64("loss", 0.0)?;

    let mut cfg = ChainConfig::new(specs).with_f(f).with_workers(workers);
    if loss > 0.0 {
        cfg = cfg.with_link(Endpoint::lossy(loss, loss / 2.0, 42));
    }
    let names: Vec<&str> = cfg
        .effective_middleboxes()
        .iter()
        .map(|s| s.name())
        .collect();
    println!(
        "deploying FTC chain: {} (f = {f}, workers = {workers})",
        names.join(" -> ")
    );
    let chain = FtcChain::deploy(cfg);

    let mut wl = Workload::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    for _ in 0..packets {
        chain.inject(wl.next_packet());
    }
    let got = chain.egress().collect(packets, Duration::from_secs(60));
    std::thread::sleep(Duration::from_millis(50));
    let snap = chain.metrics.snapshot();
    println!("released {}/{packets} packets", got.len());
    println!(
        "protocol: logs applied {}, parked {}, stale {}, propagating {}, filtered {}",
        snap.logs_applied, snap.logs_parked, snap.logs_stale, snap.propagating, snap.filtered,
    );
    if snap.piggyback_count > 0 {
        println!(
            "mean piggyback log: {:.1} B/writing packet",
            snap.mean_piggyback_bytes
        );
    }
    for slot in &chain.replicas {
        println!(
            "  r{} [{}]: own keys {}, replicates {:?}",
            slot.state.idx,
            slot.state.mbox.name(),
            slot.state.own_store.len(),
            slot.state.replicated.keys().collect::<Vec<_>>(),
        );
    }
    Ok(())
}

fn cmd_stats(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let workers = args.get_usize("workers", 1)?;
    let packets = args.get_usize("packets", 1000)?;

    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f).with_workers(workers));
    let mut wl = Workload::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    for _ in 0..packets {
        chain.inject(wl.next_packet());
    }
    chain.egress().collect(packets, Duration::from_secs(60));
    std::thread::sleep(Duration::from_millis(50));
    let snap = chain.metrics.snapshot();

    if args.flag("json") {
        println!("{}", snap.to_json());
        return Ok(());
    }
    println!(
        "packets: injected {}, released {}, filtered {}, propagating {}",
        snap.injected, snap.released, snap.filtered, snap.propagating,
    );
    println!(
        "logs: applied {}, parked {}, stale {}; piggyback {:.1} B mean over {} packets",
        snap.logs_applied,
        snap.logs_parked,
        snap.logs_stale,
        snap.mean_piggyback_bytes,
        snap.piggyback_count,
    );
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "stage", "samples", "mean", "p50", "p99", "p999"
    );
    for (name, s) in [
        ("transaction", snap.transaction),
        ("piggyback", snap.piggyback),
        ("apply", snap.apply),
        ("forwarder", snap.forwarder),
        ("buffer", snap.buffer),
    ] {
        println!(
            "{name:<12} {:>9} {:>12.1?} {:>12.1?} {:>12.1?} {:>12.1?}",
            s.samples,
            Duration::from_nanos(s.mean_ns),
            Duration::from_nanos(s.p50_ns),
            Duration::from_nanos(s.p99_ns),
            Duration::from_nanos(s.p999_ns),
        );
    }
    Ok(())
}

fn cmd_trace(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let packets = args.get_usize("packets", 200)?;

    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f));
    let n = chain.len();
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());
    let mut wl = Workload::new(WorkloadConfig::default());
    for _ in 0..packets {
        orch.chain.inject(wl.next_packet());
    }
    orch.chain
        .egress()
        .collect(packets, Duration::from_secs(30));

    if let Some(kill) = args.get("kill") {
        let idx: usize = kill
            .parse()
            .map_err(|_| format!("--kill expects a replica index, got `{kill}`"))?;
        if idx >= n {
            return Err(format!(
                "--kill {idx} out of range (chain has {n} replicas)"
            ));
        }
        orch.chain.kill(idx);
        for _ in 0..200 {
            if let Some((i, r)) = orch.monitor_round().into_iter().next() {
                r.map_err(|e| format!("recovery of r{i} failed: {e}"))?;
                break;
            }
        }
        for _ in 0..50 {
            orch.chain.inject(wl.next_packet());
        }
        orch.chain.egress().collect(50, Duration::from_secs(30));
    }
    std::thread::sleep(Duration::from_millis(50));

    let trace = orch.chain.metrics.journal.trace();
    let timelines = ftc::core::journal::recovery_timelines(&trace);
    if args.flag("json") {
        let recoveries: Vec<String> = timelines.iter().map(|t| t.to_json()).collect();
        println!(
            "{{\"events\":{},\"recoveries\":[{}]}}",
            ftc::core::journal::trace_to_json(&trace),
            recoveries.join(","),
        );
        return Ok(());
    }
    for ev in &trace {
        println!("{}", ev.to_json());
    }
    for t in &timelines {
        println!(
            "recovery of r{}: total {:.1?} (detection {:.1?}, init {:.1?}, \
             state fetch {:.1?}, resume {:.1?})",
            t.replica,
            t.total(),
            t.detection,
            t.initialization,
            t.state_fetch,
            t.resume,
        );
    }
    Ok(())
}

fn cmd_compare(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let workers = args.get_usize("workers", 1)?;
    let seconds = args.get_f64("seconds", 2.0)?;
    let runner = TrafficRunner::new(WorkloadConfig {
        flows: 128,
        frame_len: 256,
        ..Default::default()
    });
    let dur = Duration::from_secs_f64(seconds);

    println!(
        "{:<6} {:>12} {:>14} {:>14}",
        "system", "pps", "mean lat", "p99 lat"
    );
    let measure = |name: &str, sys: &dyn ChainSystem| {
        let tput = runner.closed_loop(sys, 64, dur);
        let lat = runner.open_loop(sys, 2_000.0, dur);
        println!(
            "{name:<6} {:>12.0} {:>14.1?} {:>14.1?}",
            tput.pps,
            lat.latency.mean().unwrap_or_default(),
            lat.latency.quantile(0.99).unwrap_or_default(),
        );
    };
    let nf = NfChain::deploy(ChainConfig::new(specs.clone()).with_workers(workers));
    measure("NF", &nf);
    let ftc = FtcChain::deploy(
        ChainConfig::new(specs.clone())
            .with_f(1)
            .with_workers(workers),
    );
    measure("FTC", &ftc);
    let ftmb = FtmbChain::deploy(ChainConfig::new(specs).with_workers(workers), None);
    measure("FTMB", &ftmb);
    println!("(threaded runtime on this machine; paper-scale numbers: `cargo bench`)");
    Ok(())
}

/// Maps runtime middlebox specs onto simulator kinds; the simulator models
/// the Table-1 middleboxes, so the richer ones approximate to the nearest
/// workload shape.
fn sim_kind(spec: &MbSpec, workers: usize) -> MbKind {
    match spec {
        MbSpec::Monitor { sharing_level } => MbKind::Monitor {
            sharing: (*sharing_level).min(workers.max(1)),
        },
        MbSpec::Gen { state_size } => MbKind::Gen { state: *state_size },
        MbSpec::MazuNat { .. } => MbKind::MazuNat,
        MbSpec::SimpleNat { .. } | MbSpec::LoadBalancer { .. } => MbKind::SimpleNat,
        MbSpec::Ids { .. } => MbKind::Monitor {
            sharing: workers.max(1),
        },
        MbSpec::Firewall { .. } => MbKind::Firewall,
        MbSpec::Passthrough => MbKind::Passthrough,
    }
}

fn cmd_sim(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let workers = args.get_usize("workers", 8)?;
    let f = args.get_usize("f", 1)?;
    let packet_bytes = args.get_usize("packet-bytes", 256)?;
    let system = match args.get("system").unwrap_or("ftc") {
        "ftc" => SystemKind::Ftc { f },
        "nf" => SystemKind::Nf,
        "ftmb" => SystemKind::Ftmb { snapshot: None },
        "ftmb-snap" => SystemKind::Ftmb {
            snapshot: Some((50e6, 6e6)),
        },
        other => return Err(format!("unknown --system `{other}`")),
    };
    let mut chain: Vec<MbKind> = specs.iter().map(|s| sim_kind(s, workers)).collect();
    if matches!(system, SystemKind::Ftc { .. }) {
        while chain.len() < f + 1 {
            chain.push(MbKind::Passthrough);
        }
    }

    let cfg = match args.get("rate").unwrap_or("max") {
        "max" => SimConfig::saturated(system, chain),
        r => {
            let mpps: f64 = r
                .parse()
                .map_err(|_| format!("--rate expects Mpps or `max`, got `{r}`"))?;
            SimConfig::at_rate(system, chain, mpps * 1e6)
        }
    }
    .with_workers(workers)
    .with_packet_bytes(packet_bytes);

    let report = simulate(&cfg);
    println!("system: {}", report.system);
    println!(
        "offered: {:.2} Mpps, achieved: {:.2} Mpps",
        report.offered_pps / 1e6,
        report.mpps()
    );
    if let Some(mean) = report.mean_latency() {
        println!(
            "latency: mean {:.1?}, median {:.1?}, p99 {:.1?} ({} samples)",
            mean,
            report.median_latency().unwrap_or_default(),
            report.p99_latency().unwrap_or_default(),
            report.latency.len(),
        );
    }
    if report.trailer_bytes > 0.0 {
        println!("mean piggyback trailer: {:.0} B/hop", report.trailer_bytes);
    }
    Ok(())
}

fn cmd_drill(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f));
    let n = chain.len();
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    let mut wl = Workload::new(WorkloadConfig::default());
    for _ in 0..200 {
        orch.chain.inject(wl.next_packet());
    }
    let warmed = orch
        .chain
        .egress()
        .collect(200, Duration::from_secs(30))
        .len();
    println!("warmed up with {warmed}/200 packets");
    std::thread::sleep(Duration::from_millis(100));

    for idx in 0..n {
        print!("killing r{idx}… ");
        orch.chain.kill(idx);
        match orch.recover(idx, ftc::net::RegionId(0)) {
            Ok(r) => println!(
                "recovered in {:.1?} (init {:.1?}, state {:.1?} / {} B, reroute {:.1?})",
                r.total(),
                r.initialization,
                r.state_recovery,
                r.bytes_transferred,
                r.rerouting
            ),
            Err(e) => return Err(format!("recovery of r{idx} failed: {e}")),
        }
        for _ in 0..50 {
            orch.chain.inject(wl.next_packet());
        }
        let got = orch
            .chain
            .egress()
            .collect(50, Duration::from_secs(30))
            .len();
        println!("  post-recovery traffic: {got}/50 released");
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("drill complete: all {n} positions failed and recovered");
    Ok(())
}

/// `ftc reconfig`: one planned four-phase handover on a live chain —
/// `--scale W` replaces the replica with a W-worker instance, `--migrate R`
/// moves it to region R. State carries over; traffic resumes afterwards.
fn cmd_reconfig(args: &ParsedArgs) -> Result<(), String> {
    let specs = specs_of(args)?;
    let f = args.get_usize("f", 1)?;
    let workers = args.get_usize("workers", 1)?;
    let packets = args.get_usize("packets", 200)?;
    let idx = args.get_usize("idx", usize::MAX)?;
    if idx == usize::MAX {
        return Err("--idx N is required".to_string());
    }

    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f).with_workers(workers));
    let n = chain.len();
    if idx >= n {
        return Err(format!("--idx {idx} out of range (chain has {n} replicas)"));
    }
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    let mut wl = Workload::new(WorkloadConfig::default());
    for _ in 0..packets {
        orch.chain.inject(wl.next_packet());
    }
    let warmed = orch
        .chain
        .egress()
        .collect(packets, Duration::from_secs(30))
        .len();
    println!("warmed up with {warmed}/{packets} packets");
    std::thread::sleep(Duration::from_millis(100));

    let report = match (args.get("scale"), args.get("migrate")) {
        (Some(w), None) => {
            let w: usize = w
                .parse()
                .map_err(|_| format!("--scale expects a worker count, got `{w}`"))?;
            if w == 0 {
                return Err("--scale needs at least 1 worker".to_string());
            }
            println!("scaling r{idx} to {w} worker(s)…");
            orch.scale_instance(idx, w)
                .map_err(|e| format!("scale of r{idx} failed: {e}"))?
        }
        (None, Some(r)) => {
            let r: usize = r
                .parse()
                .map_err(|_| format!("--migrate expects a region index, got `{r}`"))?;
            let regions = orch.chain.topology.regions();
            if r >= regions {
                return Err(format!(
                    "--migrate {r} out of range (topology has {regions} region(s))"
                ));
            }
            println!("migrating r{idx} to region {r}…");
            orch.migrate_instance(idx, ftc::net::RegionId(r))
                .map_err(|e| format!("migration of r{idx} failed: {e}"))?
        }
        _ => return Err("reconfig needs exactly one of --scale W or --migrate R".to_string()),
    };
    println!(
        "{} of r{} complete in {:.1?}: prepare {:.1?}, transfer {:.1?} / {} B, \
         switch {:.1?}, release {:.1?}",
        report.op.label(),
        report.position,
        report.total(),
        report.prepare,
        report.transfer,
        report.bytes_transferred,
        report.switch,
        report.release,
    );

    for _ in 0..50 {
        orch.chain.inject(wl.next_packet());
    }
    let got = orch
        .chain
        .egress()
        .collect(50, Duration::from_secs(30))
        .len();
    println!("post-reconfiguration traffic: {got}/50 released");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run_cmd(s: &str) -> Result<(), String> {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        dispatch(&parse_args(&argv).unwrap())
    }

    #[test]
    fn sim_command_works_end_to_end() {
        run_cmd("sim --chain monitor(sharing=2) --system ftc --rate 1").unwrap();
        run_cmd("sim --chain monitor --system nf --rate max").unwrap();
    }

    #[test]
    fn sim_rejects_bad_system() {
        let err = run_cmd("sim --chain monitor --system warp").unwrap_err();
        assert!(err.contains("unknown --system"));
    }

    #[test]
    fn run_command_small_chain() {
        run_cmd("run --chain monitor->monitor --packets 50").unwrap();
    }

    #[test]
    fn stats_command_works() {
        run_cmd("stats --chain monitor->monitor --packets 50").unwrap();
        run_cmd("stats --chain monitor->monitor --packets 50 --json").unwrap();
    }

    #[test]
    fn trace_command_with_kill() {
        run_cmd("trace --chain monitor->monitor --packets 30 --kill 1 --json").unwrap();
    }

    #[test]
    fn trace_rejects_out_of_range_kill() {
        let err = run_cmd("trace --chain monitor --packets 5 --kill 9").unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn reconfig_scale_command_works() {
        run_cmd("reconfig --chain monitor->monitor --idx 1 --scale 2 --packets 40").unwrap();
    }

    #[test]
    fn reconfig_needs_exactly_one_operation() {
        let err = run_cmd("reconfig --chain monitor->monitor --idx 1 --packets 5").unwrap_err();
        assert!(err.contains("--scale"));
    }

    #[test]
    fn reconfig_rejects_unknown_region_and_bad_idx() {
        let err = run_cmd("reconfig --chain monitor->monitor --idx 0 --migrate 9 --packets 5")
            .unwrap_err();
        assert!(err.contains("out of range"));
        let err = run_cmd("reconfig --chain monitor --idx 7 --scale 2").unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn bad_chain_spec_reported() {
        let err = run_cmd("run --chain warpdrive").unwrap_err();
        assert!(err.contains("unknown middlebox"));
    }

    #[test]
    fn kind_mapping_covers_all_specs() {
        let specs = parse_chain(
            "monitor -> gen -> mazu_nat(ext=1.1.1.1) -> simple_nat(ext=1.1.1.2) \
             -> ids -> lb(backends=1.1.1.3) -> firewall -> passthrough",
        )
        .unwrap();
        for s in &specs {
            let _ = sim_kind(s, 8);
        }
    }
}
