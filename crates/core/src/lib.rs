//! FTC — fault tolerant service function chaining (the paper's protocol).
//!
//! This crate implements the complete data plane of the paper:
//!
//! * [`config`] — chain configuration and the logical-ring arithmetic of
//!   replication groups (§5: "viewing a chain as a logical ring, the
//!   replication group of a middlebox consists of a replica and its `f`
//!   succeeding replicas").
//! * [`replica`] — the per-server runtime: multi-queue RSS dispatch, worker
//!   threads running packet transactions at the *head*, the apply rule for
//!   replicated piggyback logs, tail stripping and commit vectors, parked
//!   packets for out-of-order logs, and propagating packets for filtered
//!   traffic.
//! * [`forwarder`] / [`buffer`] — the chain's ingress and egress elements
//!   (§5.1): the forwarder piggybacks tail-of-chain state onto incoming
//!   packets (and emits propagating packets on idle); the buffer withholds
//!   packets until commit vectors prove `f+1` replication, and feeds the
//!   wrapped state updates back to the forwarder.
//! * [`chain`] — builds and wires a running chain over `ftc-net` servers
//!   and reliable links, exposing inject/egress endpoints, failure
//!   injection, and per-replica control handles.
//! * [`control`] — the control-plane RPC surface (heartbeats, state fetch)
//!   and the swappable link ports used for rerouting during recovery.
//! * [`recovery`] — replica-side state transfer: fetching stores and `MAX`
//!   vectors from group members per the paper's source-selection rule.
//! * [`metrics`] — counters and timing breakdowns (Table 2), read
//!   through [`ChainMetrics::snapshot`].
//! * [`hist`] — log-bucketed latency histograms (Fig. 11 CDFs and the
//!   tails behind every Table-2 stage).
//! * [`journal`] — the chain-wide event journal and the Fig-13 recovery
//!   timeline derived from it.
//! * [`probe`] — step-granular instrumentation hooks: a model checker can
//!   pause/crash protocol components at exact protocol steps.
//! * [`testkit`] — a deterministic single-threaded harness over the same
//!   protocol objects, for schedule-exploring property tests, plus the
//!   [`testkit::CrashSchedule`] builder shared by integration tests and
//!   the `ftc-audit` protocol model checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod chain;
pub mod config;
pub mod control;
pub mod forwarder;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod probe;
pub mod reconfig;
pub mod recovery;
pub mod replica;
pub mod testkit;

pub use chain::{ChainHandles, ChainSystem, Egress, FtcChain};
pub use config::{ChainConfig, RingMath};
pub use hist::Histogram;
pub use journal::{Event, EventKind, EventSource, Journal, RecoveryTimeline};
pub use metrics::{ChainMetrics, MetricsSnapshot};
pub use probe::{ProbePoint, ProbeSlot, ProbeVerdict, ProtocolProbe};
pub use reconfig::{
    ClaimSample, ClaimView, ReconfigActor, ReconfigFailure, ReconfigOp, ReconfigPhase, ReconfigRun,
    ReconfigStats, SealRecord,
};
