//! Replica state recovery (paper §4.1, §5.2).
//!
//! A replacement replica repairs `f + 1` replication groups. For the group
//! it heads (its own middlebox), the freshest surviving copy is at its
//! *successors* — the log propagation invariant guarantees each successor
//! holds the same or prior state, so the closest alive successor is used.
//! For the groups it participates in as a mid/tail member, state is fetched
//! from the closest alive *predecessor* within the group.

use crate::config::RingMath;
use crate::control::{CtrlReq, CtrlResp};
use crate::journal::{EventKind, EventSource};
use crate::probe::{ProbePoint, ProbeVerdict};
use crate::replica::ReplicaState;
use ftc_stm::StoreSnapshot;
use std::sync::Arc;
use std::time::Duration;

/// Why recovery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// No alive group member could serve the state for `mbox`.
    NoSource {
        /// The middlebox whose state could not be recovered.
        mbox: usize,
    },
    /// A source answered, but with an unexpected response.
    BadResponse {
        /// The middlebox being recovered.
        mbox: usize,
    },
    /// The recovering replica itself was crashed mid-fetch (by an installed
    /// probe): the half-restored replacement must be abandoned and recovery
    /// retried from scratch on a fresh replica.
    Aborted {
        /// The middlebox whose fetch was in flight at the crash.
        mbox: usize,
    },
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::NoSource { mbox } => {
                write!(f, "no alive replica could serve state for middlebox {mbox}")
            }
            RecoveryError::BadResponse { mbox } => {
                write!(f, "malformed state response for middlebox {mbox}")
            }
            RecoveryError::Aborted { mbox } => {
                write!(
                    f,
                    "recovering replica crashed while fetching middlebox {mbox}"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// How the recovery driver reaches other replicas: given `(replica, mbox)`,
/// fetch that replica's copy of `mbox`'s state, or `None` if the replica is
/// dead/unreachable. Implemented by the orchestrator over control RPCs.
pub trait StateFetcher {
    /// Attempts the fetch; `None` means the source is unavailable.
    fn fetch(&self, replica: usize, mbox: usize) -> Option<(StoreSnapshot, Vec<u64>)>;
}

impl<F> StateFetcher for F
where
    F: Fn(usize, usize) -> Option<(StoreSnapshot, Vec<u64>)>,
{
    fn fetch(&self, replica: usize, mbox: usize) -> Option<(StoreSnapshot, Vec<u64>)> {
        self(replica, mbox)
    }
}

/// Source-selection order for recovering middlebox `m`'s state at replica
/// `idx` (paper §4.1/§5.2): successors (closest first) when `idx` heads the
/// group, predecessors within the group (closest first) otherwise.
pub fn source_order(ring: RingMath, idx: usize, m: usize) -> Vec<usize> {
    if m == idx {
        // Our own middlebox: the immediate successor has the freshest copy.
        (1..=ring.f).map(|k| (idx + k) % ring.n).collect()
    } else {
        // A group we participate in: walk back towards the head.
        let mut order = Vec::new();
        let mut r = (idx + ring.n - 1) % ring.n;
        loop {
            order.push(r);
            if r == m {
                break;
            }
            r = (r + ring.n - 1) % ring.n;
        }
        order
    }
}

/// Recovers all of a replacement replica's state through `fetcher`.
///
/// Restores the own store (head role) from the closest alive successor and
/// every replicated group from the closest alive predecessor. Returns the
/// total bytes transferred (the recovery-time experiments report this).
pub fn recover_replica_state(
    state: &Arc<ReplicaState>,
    fetcher: &dyn StateFetcher,
) -> Result<usize, RecoveryError> {
    let ring = state.ring;
    let idx = state.idx;
    let mut transferred = 0usize;
    let source = EventSource::Replica(idx as u16);
    state.metrics.journal.record(
        source,
        EventKind::StateFetchStarted {
            replica: idx as u16,
        },
    );

    // Own (head) store — only recoverable if anyone replicates it.
    if ring.f > 0 {
        let (snap, max) = fetch_from_any(state, fetcher, ring, idx, idx)?;
        transferred += snap.byte_size();
        state.restore_own(&snap, &max);
    }

    // Replicated groups.
    for m in ring.replicated_by(idx) {
        let (snap, max) = fetch_from_any(state, fetcher, ring, idx, m)?;
        transferred += snap.byte_size();
        state.restore_replicated(m, &snap, max);
    }
    state.metrics.journal.record(
        source,
        EventKind::StateFetchFinished {
            replica: idx as u16,
            bytes: transferred as u64,
        },
    );
    Ok(transferred)
}

fn fetch_from_any(
    state: &ReplicaState,
    fetcher: &dyn StateFetcher,
    ring: RingMath,
    idx: usize,
    m: usize,
) -> Result<(StoreSnapshot, Vec<u64>), RecoveryError> {
    let journal = &state.metrics.journal;
    let who = EventSource::Replica(idx as u16);
    for src in source_order(ring, idx, m) {
        if src == idx {
            continue;
        }
        // During-recovery crash point: the *recovering* replica dies between
        // source attempts; the half-restored replacement is abandoned.
        let verdict = state.probe.observe_with(|| ProbePoint::RecoveryFetch {
            recovering: idx,
            source: src,
            mbox: m,
        });
        if verdict == ProbeVerdict::Crash {
            journal.record(
                who,
                EventKind::SourceFetchAborted {
                    source: src as u16,
                    mbox: m as u16,
                },
            );
            return Err(RecoveryError::Aborted { mbox: m });
        }
        match fetcher.fetch(src, m) {
            Some(got) => {
                journal.record(
                    who,
                    EventKind::SourceFetchServed {
                        source: src as u16,
                        mbox: m as u16,
                    },
                );
                return Ok(got);
            }
            None => {
                // The source died (or refused) mid-fetch; fall back to the
                // next one in the §4.1 selection order.
                journal.record(
                    who,
                    EventKind::SourceFetchAborted {
                        source: src as u16,
                        mbox: m as u16,
                    },
                );
            }
        }
    }
    Err(RecoveryError::NoSource { mbox: m })
}

/// Convenience: a [`StateFetcher`] over chain control clients with optional
/// per-source network delay. Dead replicas yield `None`.
pub struct RpcFetcher<'a> {
    /// Control clients by replica position (already delay-adjusted).
    pub clients: Vec<Option<crate::control::CtrlClient>>,
    /// RPC timeout per fetch.
    pub timeout: Duration,
    /// Marker for the borrow of the chain (clients are cloned handles).
    pub _phantom: std::marker::PhantomData<&'a ()>,
}

impl StateFetcher for RpcFetcher<'_> {
    fn fetch(&self, replica: usize, mbox: usize) -> Option<(StoreSnapshot, Vec<u64>)> {
        let client = self.clients.get(replica)?.as_ref()?;
        match client.call(CtrlReq::FetchState { mbox }, self.timeout) {
            Ok(CtrlResp::State { snapshot, max }) => Some((snapshot, max)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChainConfig;
    use crate::control::OutPort;
    use crate::metrics::ChainMetrics;
    use ftc_mbox::MbSpec;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[test]
    fn source_order_own_mbox_prefers_immediate_successor() {
        let ring = RingMath { n: 5, f: 2 };
        assert_eq!(source_order(ring, 1, 1), vec![2, 3]);
        assert_eq!(source_order(ring, 4, 4), vec![0, 1]);
    }

    #[test]
    fn source_order_replicated_prefers_immediate_predecessor() {
        let ring = RingMath { n: 5, f: 2 };
        // r3 recovering m1 (group {1,2,3}): predecessor r2, then head r1.
        assert_eq!(source_order(ring, 3, 1), vec![2, 1]);
        // r0 recovering m3 (group {3,4,0}): r4, then r3.
        assert_eq!(source_order(ring, 0, 3), vec![4, 3]);
    }

    fn mk_state(idx: usize, n: usize, f: usize) -> Arc<ReplicaState> {
        let specs = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        let cfg = Arc::new(ChainConfig::new(specs).with_f(f));
        ReplicaState::new(
            idx,
            Arc::clone(&cfg),
            MbSpec::Monitor { sharing_level: 1 }.build(),
            Arc::new(OutPort::empty()),
            Arc::new(ChainMetrics::default()),
        )
    }

    #[test]
    fn recover_uses_fallback_when_primary_source_dead() {
        // n=4, f=2. New r1 recovers m1 from successors {2,3}; pretend r2 is
        // dead so r3 serves, and record who got asked.
        let asked = Mutex::new(Vec::new());
        let donor = mk_state(3, 4, 2);
        // Give the donor some own-store state so snapshots are non-trivial.
        // (r3's replicated stores include m1 and m2.)
        let kpart = donor.replicated[&1].store.partition_of(b"k");
        donor.replicated[&1].store.apply_writes(
            &ftc_stm::DepVector::from_entries(vec![(kpart, 0)]).unwrap(),
            &[ftc_stm::StateWrite {
                key: bytes::Bytes::from_static(b"k"),
                value: bytes::Bytes::from_static(b"v"),
                partition: kpart,
            }],
        );
        let snapshots: HashMap<(usize, usize), (StoreSnapshot, Vec<u64>)> = {
            let mut m = HashMap::new();
            m.insert(
                (3, 1),
                (
                    donor.replicated[&1].store.snapshot(),
                    donor.replicated[&1].max.vector(),
                ),
            );
            m.insert(
                (0, 3),
                (
                    StoreSnapshot {
                        maps: vec![vec![]; 32],
                        seqs: vec![0; 32],
                    },
                    vec![0; 32],
                ),
            );
            m.insert(
                (0, 0),
                (
                    StoreSnapshot {
                        maps: vec![vec![]; 32],
                        seqs: vec![0; 32],
                    },
                    vec![0; 32],
                ),
            );
            m.insert(
                (3, 0),
                (
                    StoreSnapshot {
                        maps: vec![vec![]; 32],
                        seqs: vec![0; 32],
                    },
                    vec![0; 32],
                ),
            );
            m
        };
        let fetcher = |replica: usize, mbox: usize| {
            asked.lock().unwrap().push((replica, mbox));
            if replica == 2 {
                return None; // dead
            }
            snapshots.get(&(replica, mbox)).cloned()
        };
        let new_r1 = mk_state(1, 4, 2);
        let moved = recover_replica_state(&new_r1, &fetcher).unwrap();
        assert!(moved > 0);
        // Own mbox m1: asked r2 (dead) then r3.
        let log = asked.lock().unwrap().clone();
        assert!(log.contains(&(2, 1)) && log.contains(&(3, 1)));
        assert_eq!(
            new_r1.own_store.peek(b"k"),
            Some(bytes::Bytes::from_static(b"v")),
            "own store restored from the fallback successor"
        );
    }

    #[test]
    fn recover_fails_cleanly_when_all_sources_dead() {
        let new_r1 = mk_state(1, 3, 1);
        let fetcher = |_: usize, _: usize| None;
        let err = recover_replica_state(&new_r1, &fetcher).unwrap_err();
        assert!(matches!(err, RecoveryError::NoSource { .. }));
    }

    #[test]
    fn partial_failure_journals_one_aborted_and_one_served_fetch() {
        // The partial case between "primary serves" and "all sources dead":
        // the primary source dies mid-fetch and the fallback succeeds. The
        // journal must record exactly one aborted and one completed fetch
        // for the affected middlebox.
        let empty = || {
            (
                StoreSnapshot {
                    maps: vec![vec![]; 32],
                    seqs: vec![0; 32],
                },
                vec![0u64; 32],
            )
        };
        // n=4, f=2: new r1 recovers its own m1 from successors {2, 3};
        // r2 is dead, r3 serves. Other fetches (m0 from r0, m3 from r0)
        // succeed first try.
        let fetcher = move |replica: usize, _mbox: usize| {
            if replica == 2 {
                return None; // died mid-fetch
            }
            Some(empty())
        };
        let new_r1 = mk_state(1, 4, 2);
        recover_replica_state(&new_r1, &fetcher).unwrap();
        let trace = new_r1.metrics.journal.trace();
        let aborted: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SourceFetchAborted { mbox: 1, .. }))
            .collect();
        let served: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SourceFetchServed { mbox: 1, .. }))
            .collect();
        assert_eq!(aborted.len(), 1, "exactly one aborted fetch for m1");
        assert_eq!(served.len(), 1, "exactly one completed fetch for m1");
        assert!(matches!(
            aborted[0].kind,
            EventKind::SourceFetchAborted { source: 2, mbox: 1 }
        ));
        assert!(matches!(
            served[0].kind,
            EventKind::SourceFetchServed { source: 3, mbox: 1 }
        ));
    }

    #[test]
    fn probe_crash_during_recovery_aborts_with_journal_trail() {
        use crate::probe::{ProbePoint, ProbeVerdict, ProtocolProbe};
        // A probe kills the recovering replica at its first fetch: recovery
        // reports Aborted (the half-restored replacement is abandoned) and
        // the journal shows the aborted attempt.
        struct KillFirstFetch;
        impl ProtocolProbe for KillFirstFetch {
            fn on_step(&self, point: ProbePoint) -> ProbeVerdict {
                match point {
                    ProbePoint::RecoveryFetch { .. } => ProbeVerdict::Crash,
                    _ => ProbeVerdict::Continue,
                }
            }
        }
        let new_r1 = mk_state(1, 3, 1);
        new_r1.probe.install(Arc::new(KillFirstFetch));
        let fetcher = |_: usize, _: usize| -> Option<(StoreSnapshot, Vec<u64>)> {
            panic!("fetch must not run past a crash verdict")
        };
        let err = recover_replica_state(&new_r1, &fetcher).unwrap_err();
        assert!(matches!(err, RecoveryError::Aborted { .. }));
        let trace = new_r1.metrics.journal.trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::SourceFetchAborted { .. })));
    }
}
