//! The chain ingress element (paper §5.1).
//!
//! The forwarder "receives incoming packets from the outside world and
//! piggyback messages from the buffer" and "adds state updates from the
//! buffer to incoming packets before forwarding the packets to the first
//! middlebox". During idle periods it emits *propagating packets* so held
//! state keeps flowing.

use crate::journal::{EventKind, EventSource};
use crate::metrics::ChainMetrics;
use crate::probe::{ProbePoint, ProbeSlot};
use bytes::BytesMut;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use ftc_net::nic::Nic;
use ftc_net::server::AliveToken;
use ftc_packet::ether::MacAddr;
use ftc_packet::piggyback::{PiggybackLog, PiggybackMessage, TrailerView};
use ftc_packet::pool::{log_vec_pool, Checkout, Pool};
use ftc_packet::{packet, Packet};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum feedback logs attached to a single packet; the rest wait for the
/// next packet (bounds trailer growth).
pub const MAX_LOGS_PER_PACKET: usize = 32;

/// Shared forwarder state.
pub struct ForwarderState {
    /// Feedback piggyback logs awaiting a carrier packet.
    pending: Mutex<VecDeque<PiggybackLog>>,
    /// Recycled staging vectors for attaching pending logs to carriers:
    /// steady state drains into a pooled vector and returns it after the
    /// trailer is encoded, so per-packet attachment allocates nothing.
    staging: Pool<Vec<PiggybackLog>>,
    metrics: Arc<ChainMetrics>,
    /// Model-checker hook: observes feedback ingestion (the wrapped-log leg
    /// of the ring the I1/I4 invariants reason over).
    pub probe: ProbeSlot,
}

impl ForwarderState {
    /// Creates forwarder state.
    pub fn new(metrics: Arc<ChainMetrics>) -> Arc<ForwarderState> {
        Arc::new(ForwarderState {
            pending: Mutex::new(VecDeque::new()),
            staging: log_vec_pool(8),
            metrics,
            probe: ProbeSlot::new(),
        })
    }

    /// Ingests a feedback message from the buffer.
    ///
    /// The frame is validated with a borrowed [`TrailerView`] first (garbage
    /// never reaches the allocator), then decoded zero-copy: the pended
    /// logs' keys/values share the frame's allocation.
    pub fn ingest_feedback(&self, frame: BytesMut) {
        if !matches!(TrailerView::parse_trailing(&frame), Ok(Some(_))) {
            return;
        }
        let frame = frame.freeze();
        if let Ok(Some((msg, _))) = PiggybackMessage::decode_trailing_shared(&frame) {
            let mut pending = self.pending.lock();
            pending.extend(msg.logs);
            let logs = pending.len();
            drop(pending);
            self.probe
                .observe_with(|| ProbePoint::ForwarderFeedback { logs });
        }
    }

    /// Number of feedback logs waiting for a carrier.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Discards pending feedback logs. Called when the buffer is respawned
    /// after a last-server failure: the old logs belong to transactions of
    /// the dead replica whose packets were never released, and their
    /// sequence numbers will be reissued by the replacement — mixing the
    /// two histories would race stale content against fresh content.
    pub fn clear_pending(&self) {
        self.pending.lock().clear();
    }

    /// Drains up to [`MAX_LOGS_PER_PACKET`] pending logs into a pooled
    /// staging vector for the next carrier packet.
    fn stage_pending(&self) -> Checkout<Vec<PiggybackLog>> {
        let mut staged = self.staging.checkout();
        let mut pending = self.pending.lock();
        let take = pending.len().min(MAX_LOGS_PER_PACKET);
        staged.extend(pending.drain(..take));
        staged
    }

    /// Processes one external packet: attach pending feedback and dispatch
    /// into the first replica's NIC.
    pub fn handle_ingress(&self, frame: BytesMut, nic: &Nic) {
        let t0 = Instant::now();
        let Ok(mut pkt) = Packet::from_frame(frame) else {
            return; // not IPv4: drop at ingress
        };
        let staged = self.stage_pending();
        if pkt.attach_piggyback_parts(0, &staged, &[]).is_err() {
            return; // staged logs die with the packet (resent by the buffer)
        }
        drop(staged); // back to the pool, cleared
        self.metrics.injected.fetch_add(1, Ordering::Relaxed);
        self.metrics.t_forwarder.record(t0.elapsed());
        self.metrics
            .journal
            .record(EventSource::Forwarder, EventKind::PacketInjected);
        nic.dispatch(pkt.into_bytes());
    }

    /// Emits a propagating packet if feedback is pending (idle-timer path).
    pub fn emit_propagating(&self, nic: &Nic) -> bool {
        if self.pending.lock().is_empty() {
            return false;
        }
        let staged = self.stage_pending();
        let prop = packet::propagating_packet_from_logs(
            MacAddr::from_index(0xF0),
            MacAddr::from_index(0xF1),
            &staged,
        );
        self.metrics.propagating.fetch_add(1, Ordering::Relaxed);
        nic.dispatch(prop.into_bytes());
        true
    }
}

/// Spawns the forwarder threads onto the first server.
///
/// `ingress` carries external traffic; `feedback` carries encoded piggyback
/// messages from the buffer; both feed `nic` (the first replica's NIC).
pub fn spawn_forwarder(
    server: &mut ftc_net::Server,
    state: Arc<ForwarderState>,
    ingress: Receiver<BytesMut>,
    feedback: Arc<crate::control::InPort>,
    nic: Arc<Nic>,
    propagate_timeout: Duration,
) {
    {
        let state = Arc::clone(&state);
        let nic = Arc::clone(&nic);
        server.spawn("forwarder", move |alive: AliveToken| {
            while alive.is_alive() {
                match ingress.recv_timeout(propagate_timeout) {
                    Ok(frame) => state.handle_ingress(frame, &nic),
                    Err(RecvTimeoutError::Timeout) => {
                        // §5.1: "upon the timeout, the forwarder sends a
                        // propagating packet carrying a piggyback message it
                        // has received from the buffer."
                        state.emit_propagating(&nic);
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    }
    {
        let state = Arc::clone(&state);
        server.spawn("forwarder-feedback", move |alive: AliveToken| {
            while alive.is_alive() {
                if let Some(frame) = feedback.recv_timeout(Duration::from_millis(1)) {
                    state.ingest_feedback(frame);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_packet::piggyback::{DepVector, MboxId};

    fn feedback_frame(n_logs: usize) -> BytesMut {
        let logs = (0..n_logs)
            .map(|i| PiggybackLog {
                mbox: MboxId(7),
                deps: DepVector::from_entries(vec![(0, i as u64)]).unwrap(),
                writes: vec![],
            })
            .collect();
        let msg = PiggybackMessage {
            flags: 0,
            logs,
            commits: vec![],
        };
        let mut b = BytesMut::new();
        msg.encode(&mut b);
        b
    }

    fn take_one(nic_rx: &crossbeam::channel::Receiver<BytesMut>) -> (Packet, PiggybackMessage) {
        let frame = nic_rx.recv_timeout(Duration::from_millis(100)).unwrap();
        let mut pkt = Packet::from_frame(frame).unwrap();
        let msg = pkt.detach_piggyback().unwrap().unwrap_or_default();
        (pkt, msg)
    }

    #[test]
    fn ingress_attaches_pending_feedback() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(metrics);
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.ingest_feedback(feedback_frame(3));
        assert_eq!(fwd.pending_len(), 3);
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, msg) = take_one(&rx);
        assert_eq!(msg.logs.len(), 3);
        assert!(!msg.is_propagating());
        assert_eq!(fwd.pending_len(), 0);
    }

    #[test]
    fn feedback_overflow_spreads_across_packets() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(metrics);
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.ingest_feedback(feedback_frame(MAX_LOGS_PER_PACKET + 5));
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, m1) = take_one(&rx);
        assert_eq!(m1.logs.len(), MAX_LOGS_PER_PACKET);
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, m2) = take_one(&rx);
        assert_eq!(m2.logs.len(), 5);
    }

    #[test]
    fn idle_propagating_packet_carries_feedback() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(Arc::clone(&metrics));
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        assert!(!fwd.emit_propagating(&nic), "nothing pending: no packet");
        fwd.ingest_feedback(feedback_frame(2));
        assert!(fwd.emit_propagating(&nic));
        let (_, msg) = take_one(&rx);
        assert!(msg.is_propagating());
        assert_eq!(msg.logs.len(), 2);
        assert_eq!(metrics.propagating.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn garbage_ingress_dropped() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(Arc::clone(&metrics));
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.handle_ingress(BytesMut::from(&b"junk"[..]), &nic);
        assert!(rx.try_recv().is_err());
        assert_eq!(metrics.injected.load(Ordering::Relaxed), 0);
    }
}
