//! The chain ingress element (paper §5.1).
//!
//! The forwarder "receives incoming packets from the outside world and
//! piggyback messages from the buffer" and "adds state updates from the
//! buffer to incoming packets before forwarding the packets to the first
//! middlebox". During idle periods it emits *propagating packets* so held
//! state keeps flowing.

use crate::journal::{EventKind, EventSource};
use crate::metrics::ChainMetrics;
use crate::probe::{ProbePoint, ProbeSlot};
use bytes::BytesMut;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use ftc_net::nic::Nic;
use ftc_net::server::AliveToken;
use ftc_packet::ether::MacAddr;
use ftc_packet::piggyback::{PiggybackLog, PiggybackMessage};
use ftc_packet::{packet, Packet};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum feedback logs attached to a single packet; the rest wait for the
/// next packet (bounds trailer growth).
pub const MAX_LOGS_PER_PACKET: usize = 32;

/// Shared forwarder state.
pub struct ForwarderState {
    /// Feedback piggyback logs awaiting a carrier packet.
    pending: Mutex<VecDeque<PiggybackLog>>,
    metrics: Arc<ChainMetrics>,
    /// Model-checker hook: observes feedback ingestion (the wrapped-log leg
    /// of the ring the I1/I4 invariants reason over).
    pub probe: ProbeSlot,
}

impl ForwarderState {
    /// Creates forwarder state.
    pub fn new(metrics: Arc<ChainMetrics>) -> Arc<ForwarderState> {
        Arc::new(ForwarderState {
            pending: Mutex::new(VecDeque::new()),
            metrics,
            probe: ProbeSlot::new(),
        })
    }

    /// Ingests a feedback message from the buffer.
    pub fn ingest_feedback(&self, frame: &[u8]) {
        if let Ok(Some((msg, _))) = PiggybackMessage::decode_trailing(frame) {
            let mut pending = self.pending.lock();
            pending.extend(msg.logs);
            let logs = pending.len();
            drop(pending);
            self.probe
                .observe_with(|| ProbePoint::ForwarderFeedback { logs });
        }
    }

    /// Number of feedback logs waiting for a carrier.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Discards pending feedback logs. Called when the buffer is respawned
    /// after a last-server failure: the old logs belong to transactions of
    /// the dead replica whose packets were never released, and their
    /// sequence numbers will be reissued by the replacement — mixing the
    /// two histories would race stale content against fresh content.
    pub fn clear_pending(&self) {
        self.pending.lock().clear();
    }

    /// Builds the piggyback message for the next carrier packet.
    fn next_message(&self, propagating: bool) -> PiggybackMessage {
        let mut pending = self.pending.lock();
        let take = pending.len().min(MAX_LOGS_PER_PACKET);
        let logs: Vec<PiggybackLog> = pending.drain(..take).collect();
        PiggybackMessage {
            flags: if propagating {
                ftc_packet::piggyback::flags::PROPAGATING
            } else {
                0
            },
            logs,
            commits: Vec::new(),
        }
    }

    /// Processes one external packet: attach pending feedback and dispatch
    /// into the first replica's NIC.
    pub fn handle_ingress(&self, frame: BytesMut, nic: &Nic) {
        let t0 = Instant::now();
        let Ok(mut pkt) = Packet::from_frame(frame) else {
            return; // not IPv4: drop at ingress
        };
        let msg = self.next_message(false);
        if pkt.attach_piggyback(&msg).is_err() {
            return;
        }
        self.metrics.injected.fetch_add(1, Ordering::Relaxed);
        self.metrics.t_forwarder.record(t0.elapsed());
        self.metrics
            .journal
            .record(EventSource::Forwarder, EventKind::PacketInjected);
        nic.dispatch(pkt.into_bytes());
    }

    /// Emits a propagating packet if feedback is pending (idle-timer path).
    pub fn emit_propagating(&self, nic: &Nic) -> bool {
        if self.pending.lock().is_empty() {
            return false;
        }
        let msg = self.next_message(true);
        let prop =
            packet::propagating_packet(MacAddr::from_index(0xF0), MacAddr::from_index(0xF1), &msg);
        self.metrics.propagating.fetch_add(1, Ordering::Relaxed);
        nic.dispatch(prop.into_bytes());
        true
    }
}

/// Spawns the forwarder threads onto the first server.
///
/// `ingress` carries external traffic; `feedback` carries encoded piggyback
/// messages from the buffer; both feed `nic` (the first replica's NIC).
pub fn spawn_forwarder(
    server: &mut ftc_net::Server,
    state: Arc<ForwarderState>,
    ingress: Receiver<BytesMut>,
    feedback: Arc<crate::control::InPort>,
    nic: Arc<Nic>,
    propagate_timeout: Duration,
) {
    {
        let state = Arc::clone(&state);
        let nic = Arc::clone(&nic);
        server.spawn("forwarder", move |alive: AliveToken| {
            while alive.is_alive() {
                match ingress.recv_timeout(propagate_timeout) {
                    Ok(frame) => state.handle_ingress(frame, &nic),
                    Err(RecvTimeoutError::Timeout) => {
                        // §5.1: "upon the timeout, the forwarder sends a
                        // propagating packet carrying a piggyback message it
                        // has received from the buffer."
                        state.emit_propagating(&nic);
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    }
    {
        let state = Arc::clone(&state);
        server.spawn("forwarder-feedback", move |alive: AliveToken| {
            while alive.is_alive() {
                if let Some(frame) = feedback.recv_timeout(Duration::from_millis(1)) {
                    state.ingest_feedback(&frame);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_packet::piggyback::{DepVector, MboxId};

    fn feedback_frame(n_logs: usize) -> BytesMut {
        let logs = (0..n_logs)
            .map(|i| PiggybackLog {
                mbox: MboxId(7),
                deps: DepVector::from_entries(vec![(0, i as u64)]).unwrap(),
                writes: vec![],
            })
            .collect();
        let msg = PiggybackMessage {
            flags: 0,
            logs,
            commits: vec![],
        };
        let mut b = BytesMut::new();
        msg.encode(&mut b);
        b
    }

    fn take_one(nic_rx: &crossbeam::channel::Receiver<BytesMut>) -> (Packet, PiggybackMessage) {
        let frame = nic_rx.recv_timeout(Duration::from_millis(100)).unwrap();
        let mut pkt = Packet::from_frame(frame).unwrap();
        let msg = pkt.detach_piggyback().unwrap().unwrap_or_default();
        (pkt, msg)
    }

    #[test]
    fn ingress_attaches_pending_feedback() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(metrics);
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.ingest_feedback(&feedback_frame(3));
        assert_eq!(fwd.pending_len(), 3);
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, msg) = take_one(&rx);
        assert_eq!(msg.logs.len(), 3);
        assert!(!msg.is_propagating());
        assert_eq!(fwd.pending_len(), 0);
    }

    #[test]
    fn feedback_overflow_spreads_across_packets() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(metrics);
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.ingest_feedback(&feedback_frame(MAX_LOGS_PER_PACKET + 5));
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, m1) = take_one(&rx);
        assert_eq!(m1.logs.len(), MAX_LOGS_PER_PACKET);
        fwd.handle_ingress(UdpPacketBuilder::new().build().into_bytes(), &nic);
        let (_, m2) = take_one(&rx);
        assert_eq!(m2.logs.len(), 5);
    }

    #[test]
    fn idle_propagating_packet_carries_feedback() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(Arc::clone(&metrics));
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        assert!(!fwd.emit_propagating(&nic), "nothing pending: no packet");
        fwd.ingest_feedback(&feedback_frame(2));
        assert!(fwd.emit_propagating(&nic));
        let (_, msg) = take_one(&rx);
        assert!(msg.is_propagating());
        assert_eq!(msg.logs.len(), 2);
        assert_eq!(metrics.propagating.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn garbage_ingress_dropped() {
        let metrics = Arc::new(ChainMetrics::default());
        let fwd = ForwarderState::new(Arc::clone(&metrics));
        let mut nic = Nic::new(1, 64);
        let rx = nic.take_queue(0);
        fwd.handle_ingress(BytesMut::from(&b"junk"[..]), &nic);
        assert!(rx.try_recv().is_err());
        assert_eq!(metrics.injected.load(Ordering::Relaxed), 0);
    }
}
