//! Chain configuration and replication-group ring arithmetic.

use ftc_mbox::MbSpec;
use ftc_net::Endpoint;
use ftc_stm::EngineKind;
use std::time::Duration;

/// Configuration of an FTC chain deployment.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// The middleboxes in service-function-chain order.
    pub middleboxes: Vec<MbSpec>,
    /// Number of replica failures to tolerate (replication factor − 1).
    pub f: usize,
    /// State partitions per middlebox store (must exceed worker count).
    pub partitions: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// Depth of each NIC queue in frames.
    pub nic_queue_depth: usize,
    /// Transport endpoint template for inter-server links: backend choice
    /// plus its knobs (impairments for the in-process backend, socket
    /// options for TCP/UDS).
    pub link: Endpoint,
    /// Forwarder idle timeout before emitting a propagating packet (§5.1).
    pub propagate_timeout: Duration,
    /// Buffer resend period for uncommitted wrapped logs (self-healing after
    /// in-flight loss; duplicates are deduplicated by the apply rule).
    pub resend_period: Duration,
    /// Maximum frame size including the piggyback trailer. The paper
    /// suggests jumbo frames "to encompass larger state sizes exceeding
    /// standard maximum transmission units" (§7.2); frames exceeding this
    /// are still delivered by the in-process substrate but counted in
    /// [`crate::ChainMetrics::oversize_frames`] so deployments can detect
    /// the need for jumbo frames.
    pub mtu: usize,
    /// State engine every store of this chain runs on (head stores and
    /// replica copies alike — mixing engines within a chain would change
    /// commit semantics mid-ring for no benefit). Defaults to the
    /// `FTC_ENGINE` environment variable, falling back to 2PL.
    pub engine: EngineKind,
}

impl ChainConfig {
    /// Table 1's `Ch-n`: a chain of `n` Monitors with the given sharing
    /// level.
    pub fn ch_n(n: usize, sharing_level: usize) -> ChainConfig {
        ChainConfig::new(vec![MbSpec::Monitor { sharing_level }; n])
    }

    /// Table 1's `Ch-Gen`: `Gen1 → Gen2` with the given per-packet state
    /// size.
    pub fn ch_gen(state_size: usize) -> ChainConfig {
        ChainConfig::new(vec![MbSpec::Gen { state_size }, MbSpec::Gen { state_size }])
    }

    /// Table 1's `Ch-Rec`: `Firewall → Monitor → SimpleNAT` (the recovery
    /// experiment's chain).
    pub fn ch_rec(external_ip: std::net::Ipv4Addr) -> ChainConfig {
        ChainConfig::new(vec![
            MbSpec::Firewall { rules: vec![] },
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::SimpleNat { external_ip },
        ])
    }

    /// A reasonable default configuration for the given middleboxes.
    pub fn new(middleboxes: Vec<MbSpec>) -> ChainConfig {
        ChainConfig {
            middleboxes,
            f: 1,
            partitions: 32,
            workers: 1,
            nic_queue_depth: 4096,
            link: Endpoint::in_proc(),
            propagate_timeout: Duration::from_millis(1),
            resend_period: Duration::from_millis(10),
            mtu: 9000, // jumbo frames, per §7.2
            engine: EngineKind::from_env().unwrap_or_default(),
        }
    }

    /// Sets the number of tolerated failures.
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Sets the worker thread count per replica.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the inter-server link endpoint (backend and its knobs).
    pub fn with_link(mut self, link: Endpoint) -> Self {
        self.link = link;
        self
    }

    /// Sets the number of state partitions.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Selects the state engine for every store of this chain.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the maximum frame size before `oversize_frames` ticks (§7.2).
    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }

    /// Sets the per-worker NIC queue depth.
    pub fn with_nic_queue_depth(mut self, depth: usize) -> Self {
        self.nic_queue_depth = depth;
        self
    }

    /// Sets the forwarder's idle timeout before emitting a propagating
    /// packet (§5.1).
    pub fn with_propagate_timeout(mut self, timeout: Duration) -> Self {
        self.propagate_timeout = timeout;
        self
    }

    /// Sets the buffer's resend period for unacknowledged feedback.
    pub fn with_resend_period(mut self, period: Duration) -> Self {
        self.resend_period = period;
        self
    }

    /// The *effective* chain: if the chain is shorter than `f + 1`, it is
    /// extended with passthrough pure-replica stages before the buffer so
    /// every state update can reach `f + 1` distinct servers (§5.1: "if the
    /// chain length is less than f + 1, we extend the chain by adding more
    /// replicas prior to the buffer").
    pub fn effective_middleboxes(&self) -> Vec<MbSpec> {
        let mut mbs = self.middleboxes.clone();
        while mbs.len() < self.f + 1 {
            mbs.push(MbSpec::Passthrough);
        }
        mbs
    }

    /// Ring arithmetic for the effective chain.
    pub fn ring(&self) -> RingMath {
        RingMath {
            n: self.effective_middleboxes().len(),
            f: self.f,
        }
    }

    /// Validates invariants, panicking with a descriptive message otherwise.
    pub fn validate(&self) {
        assert!(!self.middleboxes.is_empty(), "chain must have middleboxes");
        assert!(self.partitions >= 1);
        assert!(self.workers >= 1);
        let n = self.effective_middleboxes().len();
        assert!(
            self.f < n,
            "f = {} requires a (padded) chain longer than f ({n})",
            self.f
        );
    }
}

/// Replication-group arithmetic over the logical ring of `n` replicas with
/// `f` tolerated failures (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingMath {
    /// Number of replicas (= effective middleboxes).
    pub n: usize,
    /// Failures tolerated.
    pub f: usize,
}

impl RingMath {
    /// The replicas in middlebox `m`'s replication group: `r_m` (the head)
    /// and its `f` successors on the ring.
    pub fn group(&self, m: usize) -> Vec<usize> {
        (0..=self.f).map(|k| (m + k) % self.n).collect()
    }

    /// The head replica of middlebox `m` (co-located with it).
    pub fn head_of(&self, m: usize) -> usize {
        m
    }

    /// The tail replica of middlebox `m`'s group.
    pub fn tail_of(&self, m: usize) -> usize {
        (m + self.f) % self.n
    }

    /// The middlebox for which replica `r` is the tail.
    pub fn tail_for(&self, r: usize) -> usize {
        (r + self.n - self.f % self.n) % self.n
    }

    /// The middleboxes replica `r` replicates (its `f` predecessors on the
    /// ring, excluding its own middlebox), ordered from most distant to the
    /// immediate predecessor — i.e. `[r-f, …, r-1] mod n`.
    pub fn replicated_by(&self, r: usize) -> Vec<usize> {
        (1..=self.f)
            .rev()
            .map(|k| (r + self.n - (k % self.n)) % self.n)
            .collect()
    }

    /// True if replica `r` is in middlebox `m`'s replication group.
    pub fn is_member(&self, r: usize, m: usize) -> bool {
        let dist = (r + self.n - m) % self.n;
        dist <= self.f
    }

    /// True if a log of middlebox `m` *wraps*: its tail lies at or before
    /// its head in chain order, so the buffer must hold packets carrying it
    /// until commit vectors come back around (§5.1).
    pub fn wraps(&self, m: usize) -> bool {
        m + self.f >= self.n
    }

    /// The middleboxes whose logs are still attached when a packet exits the
    /// chain (i.e. the wrapped ones: the last `f` middleboxes).
    pub fn wrapped_mboxes(&self) -> Vec<usize> {
        (0..self.n).filter(|&m| self.wraps(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_groups() {
        // §5: "if f = 1 then the replica r1 is in the replication groups of
        // middleboxes m1 and mn, and r2 is in the replication groups of m1
        // and m2. The replicas rn and r1 are the head and the tail of mn."
        // (1-based in the paper; 0-based here.)
        let ring = RingMath { n: 5, f: 1 };
        assert_eq!(ring.group(0), vec![0, 1]);
        assert_eq!(ring.group(4), vec![4, 0]);
        assert_eq!(ring.head_of(4), 4);
        assert_eq!(ring.tail_of(4), 0);
        assert!(ring.is_member(0, 4));
        assert!(ring.is_member(0, 0));
        assert!(!ring.is_member(0, 1));
        assert_eq!(ring.replicated_by(0), vec![4]);
        assert_eq!(ring.replicated_by(2), vec![1]);
    }

    #[test]
    fn f2_groups() {
        let ring = RingMath { n: 5, f: 2 };
        assert_eq!(ring.group(3), vec![3, 4, 0]);
        assert_eq!(ring.group(4), vec![4, 0, 1]);
        assert_eq!(ring.tail_of(3), 0);
        assert_eq!(ring.tail_of(4), 1);
        assert_eq!(ring.replicated_by(0), vec![3, 4]);
        assert_eq!(ring.replicated_by(1), vec![4, 0]);
        assert_eq!(ring.tail_for(0), 3);
        assert_eq!(ring.tail_for(1), 4);
        assert_eq!(ring.wrapped_mboxes(), vec![3, 4]);
        assert!(!ring.wraps(2));
    }

    #[test]
    fn tail_for_inverts_tail_of() {
        for n in 2..8 {
            for f in 0..n {
                let ring = RingMath { n, f };
                for m in 0..n {
                    assert_eq!(ring.tail_for(ring.tail_of(m)), m, "n={n} f={f} m={m}");
                }
            }
        }
    }

    #[test]
    fn short_chain_is_padded() {
        let cfg = ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }]).with_f(2);
        let mbs = cfg.effective_middleboxes();
        assert_eq!(mbs.len(), 3);
        assert!(matches!(mbs[1], MbSpec::Passthrough));
        assert!(matches!(mbs[2], MbSpec::Passthrough));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "chain must have middleboxes")]
    fn empty_chain_rejected() {
        ChainConfig::new(vec![]).validate();
    }

    #[test]
    fn fluent_builders_compose() {
        let cfg = ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 3])
            .with_f(2)
            .with_workers(4)
            .with_partitions(16)
            .with_mtu(1500)
            .with_nic_queue_depth(128)
            .with_propagate_timeout(Duration::from_millis(2))
            .with_resend_period(Duration::from_millis(20))
            .with_link(Endpoint::in_proc().with_loss(0.01).with_seed(7))
            .with_engine(EngineKind::Batched);
        assert_eq!(cfg.engine, EngineKind::Batched);
        assert_eq!(cfg.f, 2);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.partitions, 16);
        assert_eq!(cfg.mtu, 1500);
        assert_eq!(cfg.nic_queue_depth, 128);
        assert_eq!(cfg.propagate_timeout, Duration::from_millis(2));
        assert_eq!(cfg.resend_period, Duration::from_millis(20));
        assert_eq!(cfg.link.loss(), 0.01);
        assert_eq!(cfg.link.seed(), 7);
    }

    #[test]
    fn f_zero_has_no_replication() {
        let ring = RingMath { n: 3, f: 0 };
        assert_eq!(ring.group(1), vec![1]);
        assert_eq!(ring.tail_of(1), 1);
        assert!(ring.replicated_by(2).is_empty());
        assert!(ring.wrapped_mboxes().is_empty());
    }
}
