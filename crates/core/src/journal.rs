//! A lock-light event journal for chain-wide observability.
//!
//! Every notable protocol moment — a packet entering the forwarder, the
//! buffer releasing it, a log applied at a replica, the orchestrator
//! respawning a failed server — is recorded as a timestamped [`Event`]
//! in a per-source ring buffer. Sources never contend with each other:
//! each writes its own bounded shard under a cheap uncontended mutex,
//! and a reader [`drain`](Journal::drain)s all shards into one
//! chain-wide trace ordered by time.
//!
//! The journal exists to answer the paper's evaluation questions
//! directly from a running chain: the four recovery phases of Fig. 13
//! fall out of [`recovery_timelines`], and the raw trace backs the
//! `ftc trace` CLI subcommand.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Shards 0..2 are reserved for the chain elements; replicas hash into
/// the rest. 64 shards keeps a 16-replica chain collision-free.
const SHARDS: usize = 64;
const RESERVED: usize = 3;

/// Per-shard capacity. Oldest events are dropped once a shard fills;
/// [`Journal::dropped`] counts the casualties.
const SHARD_CAP: usize = 8192;

/// Who recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// The chain's ingress element.
    Forwarder,
    /// The chain's egress element.
    Buffer,
    /// The control plane (failure detector / orchestrator).
    Orchestrator,
    /// Replica `r` of the logical ring.
    Replica(u16),
}

impl EventSource {
    fn shard(self) -> usize {
        match self {
            EventSource::Forwarder => 0,
            EventSource::Buffer => 1,
            EventSource::Orchestrator => 2,
            EventSource::Replica(r) => RESERVED + (r as usize % (SHARDS - RESERVED)),
        }
    }

    /// A short stable label, used by the JSON trace.
    pub fn label(self) -> String {
        match self {
            EventSource::Forwarder => "forwarder".to_string(),
            EventSource::Buffer => "buffer".to_string(),
            EventSource::Orchestrator => "orchestrator".to_string(),
            EventSource::Replica(r) => format!("r{r}"),
        }
    }
}

/// What happened. Variants carrying a `replica` refer to the ring index
/// of the replica the event is *about* (which may differ from the
/// recording [`EventSource`] — e.g. the orchestrator records
/// `RespawnIssued { replica: 1 }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A data packet was accepted at the forwarder.
    PacketInjected,
    /// The buffer proved `f+1` replication and released a packet.
    PacketReleased,
    /// A middlebox dropped a data packet (`Action::Drop`).
    PacketFiltered,
    /// A piggybacked state log was applied at a replica.
    LogApplied {
        /// Middlebox whose state the log carried.
        mbox: u16,
    },
    /// A log was parked waiting for its dependency vector.
    LogParked {
        /// Middlebox whose state the log carried.
        mbox: u16,
    },
    /// A duplicate (stale) log was discarded.
    LogStale {
        /// Middlebox whose state the log carried.
        mbox: u16,
    },
    /// A heartbeat probe to a replica went unanswered.
    HeartbeatMissed {
        /// The silent replica.
        replica: u16,
    },
    /// The detector confirmed a replica as failed (threshold reached).
    FailureDetected {
        /// The failed replica.
        replica: u16,
    },
    /// The orchestrator started initializing a replacement replica.
    RespawnIssued {
        /// The replica being replaced.
        replica: u16,
    },
    /// State fetch from the replication group began.
    StateFetchStarted {
        /// The recovering replica.
        replica: u16,
    },
    /// State fetch finished.
    StateFetchFinished {
        /// The recovered replica.
        replica: u16,
        /// Bytes pulled from group members.
        bytes: u64,
    },
    /// One per-source fetch attempt was aborted (the source died or
    /// refused mid-recovery); the driver falls back to the next source in
    /// the §4.1 selection order.
    SourceFetchAborted {
        /// The source that failed to serve.
        source: u16,
        /// The middlebox whose state was being fetched.
        mbox: u16,
    },
    /// One per-source fetch completed: `source` served `mbox`'s state.
    SourceFetchServed {
        /// The source that served.
        source: u16,
        /// The middlebox whose state was fetched.
        mbox: u16,
    },
    /// The rerouted chain resumed carrying traffic through the replica.
    TrafficResumed {
        /// The recovered replica.
        replica: u16,
    },
}

impl EventKind {
    /// A short stable label, used by the JSON trace.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::PacketInjected => "packet_injected",
            EventKind::PacketReleased => "packet_released",
            EventKind::PacketFiltered => "packet_filtered",
            EventKind::LogApplied { .. } => "log_applied",
            EventKind::LogParked { .. } => "log_parked",
            EventKind::LogStale { .. } => "log_stale",
            EventKind::HeartbeatMissed { .. } => "heartbeat_missed",
            EventKind::FailureDetected { .. } => "failure_detected",
            EventKind::RespawnIssued { .. } => "respawn_issued",
            EventKind::StateFetchStarted { .. } => "state_fetch_started",
            EventKind::StateFetchFinished { .. } => "state_fetch_finished",
            EventKind::SourceFetchAborted { .. } => "source_fetch_aborted",
            EventKind::SourceFetchServed { .. } => "source_fetch_served",
            EventKind::TrafficResumed { .. } => "traffic_resumed",
        }
    }
}

/// One timestamped journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the journal's epoch (chain deployment).
    pub t_ns: u64,
    /// Who recorded it.
    pub source: EventSource,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"t_ns\":{},\"source\":\"{}\",\"kind\":\"{}\"",
            self.t_ns,
            self.source.label(),
            self.kind.label()
        );
        match self.kind {
            EventKind::LogApplied { mbox }
            | EventKind::LogParked { mbox }
            | EventKind::LogStale { mbox } => {
                s.push_str(&format!(",\"mbox\":{mbox}"));
            }
            EventKind::HeartbeatMissed { replica }
            | EventKind::FailureDetected { replica }
            | EventKind::RespawnIssued { replica }
            | EventKind::StateFetchStarted { replica }
            | EventKind::TrafficResumed { replica } => {
                s.push_str(&format!(",\"replica\":{replica}"));
            }
            EventKind::StateFetchFinished { replica, bytes } => {
                s.push_str(&format!(",\"replica\":{replica},\"bytes\":{bytes}"));
            }
            EventKind::SourceFetchAborted { source, mbox }
            | EventKind::SourceFetchServed { source, mbox } => {
                s.push_str(&format!(",\"from\":{source},\"mbox\":{mbox}"));
            }
            _ => {}
        }
        s.push('}');
        s
    }
}

/// The chain-wide journal: per-source bounded ring buffers plus a
/// shared epoch.
///
/// Writers touch only their own shard's mutex (uncontended in steady
/// state), so recording stays off the packet path's critical sections.
pub struct Journal {
    epoch: Instant,
    shards: Vec<Mutex<VecDeque<Event>>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl Default for Journal {
    fn default() -> Self {
        Journal {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Journal {
    /// Creates an empty journal with its epoch set to now.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Records an event, timestamped against the journal's epoch.
    pub fn record(&self, source: EventSource, kind: EventKind) {
        let t_ns = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut shard = self.shards[source.shard()].lock();
        if shard.len() >= SHARD_CAP {
            shard.pop_front();
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        shard.push_back(Event { t_ns, source, kind });
    }

    /// Total events currently buffered across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from full shards since deployment.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drains every shard into one trace ordered by timestamp. Events
    /// from the same source keep their recording order (the sort is
    /// stable and per-shard order is chronological).
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().drain(..));
        }
        out.sort_by_key(|e| e.t_ns);
        out
    }

    /// Like [`drain`](Journal::drain) but leaves the shards intact.
    pub fn trace(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().iter().copied());
        }
        out.sort_by_key(|e| e.t_ns);
        out
    }
}

/// Renders a trace as a JSON array of event objects.
pub fn trace_to_json(events: &[Event]) -> String {
    let mut s = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.to_json());
    }
    s.push(']');
    s
}

/// The four phases of one replica recovery — the Fig. 13 timeline.
///
/// * `detection` — first missed heartbeat to confirmed failure.
/// * `initialization` — confirmed failure (or respawn, when recovery
///   was triggered directly without a detector) to the start of state
///   fetch: spawning the replacement and installing middlebox code.
/// * `state_fetch` — pulling stores and `MAX` vectors from the
///   replication group.
/// * `resume` — rerouting the chain and restarting traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTimeline {
    /// Ring index of the recovered replica.
    pub replica: u16,
    /// Fig-13 "failure detection" phase.
    pub detection: Duration,
    /// Fig-13 "initialization" phase.
    pub initialization: Duration,
    /// Fig-13 "state recovery" phase.
    pub state_fetch: Duration,
    /// Fig-13 "rerouting / resume" phase.
    pub resume: Duration,
}

impl RecoveryTimeline {
    /// End-to-end recovery time (sum of the four phases).
    pub fn total(&self) -> Duration {
        self.detection + self.initialization + self.state_fetch + self.resume
    }

    /// Renders the timeline as a JSON object (durations in ns).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"replica\":{},\"detection_ns\":{},\"initialization_ns\":{},\
             \"state_fetch_ns\":{},\"resume_ns\":{},\"total_ns\":{}}}",
            self.replica,
            self.detection.as_nanos(),
            self.initialization.as_nanos(),
            self.state_fetch.as_nanos(),
            self.resume.as_nanos(),
            self.total().as_nanos()
        )
    }
}

#[derive(Default, Clone, Copy)]
struct PendingRecovery {
    first_miss: Option<u64>,
    detected: Option<u64>,
    respawn: Option<u64>,
    fetch_start: Option<u64>,
    fetch_end: Option<u64>,
}

/// Derives per-replica recovery timelines from an ordered trace.
///
/// A timeline is emitted for every `TrafficResumed` event, using the
/// preceding detection/respawn/fetch events for the same replica.
/// Phases whose anchor events are absent (e.g. no detector ran, so no
/// `HeartbeatMissed`/`FailureDetected`) report zero.
pub fn recovery_timelines(trace: &[Event]) -> Vec<RecoveryTimeline> {
    use std::collections::HashMap;
    let mut pending: HashMap<u16, PendingRecovery> = HashMap::new();
    let mut out = Vec::new();
    for e in trace {
        match e.kind {
            EventKind::HeartbeatMissed { replica } => {
                let p = pending.entry(replica).or_default();
                if p.first_miss.is_none() {
                    p.first_miss = Some(e.t_ns);
                }
            }
            EventKind::FailureDetected { replica } => {
                let p = pending.entry(replica).or_default();
                if p.detected.is_none() {
                    p.detected = Some(e.t_ns);
                }
            }
            EventKind::RespawnIssued { replica } => {
                let p = pending.entry(replica).or_default();
                if p.respawn.is_none() {
                    p.respawn = Some(e.t_ns);
                }
            }
            EventKind::StateFetchStarted { replica } => {
                let p = pending.entry(replica).or_default();
                if p.fetch_start.is_none() {
                    p.fetch_start = Some(e.t_ns);
                }
            }
            EventKind::StateFetchFinished { replica, .. } => {
                pending.entry(replica).or_default().fetch_end = Some(e.t_ns);
            }
            EventKind::TrafficResumed { replica } => {
                let p = pending.remove(&replica).unwrap_or_default();
                let resumed = e.t_ns;
                // Anchor each phase on the best available evidence;
                // absent anchors collapse that phase to zero.
                let det_end = p
                    .detected
                    .or(p.respawn)
                    .or(p.fetch_start)
                    .unwrap_or(resumed);
                let det_start = p.first_miss.unwrap_or(det_end);
                let init_end = p.fetch_start.unwrap_or(det_end);
                let fetch_end = p.fetch_end.unwrap_or(init_end);
                out.push(RecoveryTimeline {
                    replica,
                    detection: Duration::from_nanos(det_end.saturating_sub(det_start)),
                    initialization: Duration::from_nanos(init_end.saturating_sub(det_end)),
                    state_fetch: Duration::from_nanos(fetch_end.saturating_sub(init_end)),
                    resume: Duration::from_nanos(resumed.saturating_sub(fetch_end)),
                });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_orders_events_across_concurrent_writers() {
        let j = Arc::new(Journal::new());
        let threads: Vec<_> = (0..4u16)
            .map(|r| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        j.record(EventSource::Replica(r), EventKind::LogApplied { mbox: r });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let trace = j.drain();
        assert_eq!(trace.len(), 4000);
        assert_eq!(j.dropped(), 0);
        // Globally ordered by time…
        assert!(trace.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // …and each source's events keep their per-shard chronology.
        for r in 0..4u16 {
            let own: Vec<u64> = trace
                .iter()
                .filter(|e| e.source == EventSource::Replica(r))
                .map(|e| e.t_ns)
                .collect();
            assert_eq!(own.len(), 1000);
            assert!(own.windows(2).all(|w| w[0] <= w[1]));
        }
        // Drain empties the journal.
        assert!(j.is_empty());
    }

    #[test]
    fn shards_drop_oldest_when_full() {
        let j = Journal::new();
        for _ in 0..(SHARD_CAP + 10) {
            j.record(EventSource::Forwarder, EventKind::PacketInjected);
        }
        assert_eq!(j.len(), SHARD_CAP);
        assert_eq!(j.dropped(), 10);
    }

    #[test]
    fn timeline_from_full_event_sequence() {
        let ev = |t_ns, kind| Event {
            t_ns,
            source: EventSource::Orchestrator,
            kind,
        };
        let trace = vec![
            ev(100, EventKind::HeartbeatMissed { replica: 1 }),
            ev(300, EventKind::FailureDetected { replica: 1 }),
            ev(350, EventKind::RespawnIssued { replica: 1 }),
            ev(900, EventKind::StateFetchStarted { replica: 1 }),
            ev(
                1400,
                EventKind::StateFetchFinished {
                    replica: 1,
                    bytes: 64,
                },
            ),
            ev(1500, EventKind::TrafficResumed { replica: 1 }),
        ];
        let tl = recovery_timelines(&trace);
        assert_eq!(tl.len(), 1);
        let t = &tl[0];
        assert_eq!(t.replica, 1);
        assert_eq!(t.detection, Duration::from_nanos(200));
        assert_eq!(t.initialization, Duration::from_nanos(600));
        assert_eq!(t.state_fetch, Duration::from_nanos(500));
        assert_eq!(t.resume, Duration::from_nanos(100));
        assert_eq!(t.total(), Duration::from_nanos(1400));
    }

    #[test]
    fn timeline_without_detector_reports_zero_detection() {
        let ev = |t_ns, kind| Event {
            t_ns,
            source: EventSource::Orchestrator,
            kind,
        };
        let trace = vec![
            ev(50, EventKind::RespawnIssued { replica: 2 }),
            ev(200, EventKind::StateFetchStarted { replica: 2 }),
            ev(
                700,
                EventKind::StateFetchFinished {
                    replica: 2,
                    bytes: 8,
                },
            ),
            ev(800, EventKind::TrafficResumed { replica: 2 }),
        ];
        let tl = recovery_timelines(&trace);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].detection, Duration::ZERO);
        assert_eq!(tl[0].initialization, Duration::from_nanos(150));
        assert_eq!(tl[0].state_fetch, Duration::from_nanos(500));
        assert_eq!(tl[0].resume, Duration::from_nanos(100));
    }

    #[test]
    fn json_rendering_is_stable() {
        let e = Event {
            t_ns: 42,
            source: EventSource::Replica(3),
            kind: EventKind::StateFetchFinished {
                replica: 3,
                bytes: 128,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":42,\"source\":\"r3\",\"kind\":\"state_fetch_finished\",\
             \"replica\":3,\"bytes\":128}"
        );
        assert_eq!(trace_to_json(&[]), "[]");
    }
}
