//! A log-bucketed latency histogram (HdrHistogram-style, implemented
//! in-repo to stay within the offline crate set).
//!
//! Values are recorded in nanoseconds. Buckets grow geometrically: each
//! power of two is split into `SUB_BUCKETS` linear sub-buckets, giving a
//! bounded relative error of `1 / SUB_BUCKETS` across the whole range.
//!
//! Two flavors share the same bucket layout:
//!
//! * [`Histogram`] — single-writer, used by traffic generators and for
//!   snapshots (Fig. 11 CDFs).
//! * [`AtomicHistogram`] — lock-free multi-writer, embedded in the
//!   chain's shared [`ChainMetrics`](crate::metrics::ChainMetrics) so
//!   Table-2 breakdowns come with tails, not just means.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 32 sub-buckets → ~3% resolution
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A latency histogram with ~3% relative resolution from 1 ns to ~584 y.
///
/// ```
/// use ftc_core::hist::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.len(), 5);
/// assert!(h.quantile(0.99).unwrap() >= Duration::from_micros(900));
/// assert!(h.median().unwrap() < Duration::from_micros(40));
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - u64::from(v.leading_zeros());
        if msb < u64::from(SUB_BITS) {
            return v as usize;
        }
        let shift = msb - u64::from(SUB_BITS);
        let sub = (v >> shift) - SUB_BUCKETS; // 0..SUB_BUCKETS
        ((shift + 1) * SUB_BUCKETS + sub + SUB_BUCKETS) as usize - SUB_BUCKETS as usize
    }

    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < 2 * SUB_BUCKETS {
            return idx;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << shift
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let i = Self::index(ns).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency.
    pub fn mean(&self) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            (self.sum_ns / u128::from(self.total)) as u64,
        ))
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_nanos(self.min_ns))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_nanos(self.max_ns))
    }

    /// The latency at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_nanos(
                    Self::bucket_value(i).max(self.min_ns).min(self.max_ns),
                ));
            }
        }
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Median latency.
    pub fn median(&self) -> Option<Duration> {
        self.quantile(0.5)
    }

    /// `(latency, cumulative fraction)` pairs — the Fig. 11 CDF.
    pub fn cdf(&self) -> Vec<(Duration, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Duration::from_nanos(Self::bucket_value(i).max(self.min_ns).min(self.max_ns)),
                seen as f64 / self.total as f64,
            ));
        }
        out
    }
}

/// A lock-free multi-writer histogram sharing [`Histogram`]'s bucket
/// layout.
///
/// Worker threads [`record`](AtomicHistogram::record) concurrently with
/// relaxed atomics; readers take a coherent-enough [`snapshot`] at any
/// time. A snapshot taken while writers are active may be off by the
/// samples in flight — fine for monitoring, which is its only use.
///
/// [`snapshot`]: AtomicHistogram::snapshot
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("sum_ns", &self.sum_ns.load(Ordering::Relaxed))
            .finish()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample (callable from any thread).
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in nanoseconds (callable from any thread).
    pub fn record_ns(&self, ns: u64) {
        let i = Histogram::index(ns).min(self.counts.len() - 1);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Performs step `step` (0..[`Self::RECORD_STEPS`]) of
    /// [`record_ns`](Self::record_ns) in isolation, so the model checker
    /// can interleave recorders at atomic-operation granularity. The five
    /// steps, in order: bucket count, total, sum, min, max.
    #[cfg(feature = "loom")]
    pub fn record_step(&self, ns: u64, step: usize) {
        let i = Histogram::index(ns).min(self.counts.len() - 1);
        match step {
            0 => drop(self.counts[i].fetch_add(1, Ordering::Relaxed)),
            1 => drop(self.total.fetch_add(1, Ordering::Relaxed)),
            2 => drop(self.sum_ns.fetch_add(ns, Ordering::Relaxed)),
            3 => drop(self.min_ns.fetch_min(ns, Ordering::Relaxed)),
            4 => drop(self.max_ns.fetch_max(ns, Ordering::Relaxed)),
            _ => panic!("record_ns has {} steps", Self::RECORD_STEPS),
        }
    }

    /// Number of atomic operations in one [`record_ns`](Self::record_ns).
    #[cfg(feature = "loom")]
    pub const RECORD_STEPS: usize = 5;

    /// Copies the current state into a plain [`Histogram`] for quantile
    /// queries, merging, and serialization.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        Histogram {
            counts,
            total,
            sum_ns: u128::from(self.sum_ns.load(Ordering::Relaxed)),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Exhaustive interleaving checks for [`AtomicHistogram`], compiled only
/// with `--features loom`.
///
/// [`AtomicHistogram::record_ns`] is five independent relaxed atomic
/// operations, and [`AtomicHistogram::snapshot`] may observe any prefix
/// of any interleaving of concurrent recorders. The checker enumerates
/// **every** interleaving of one `record_ns` per sample (driving the real
/// type one atomic step at a time via
/// [`record_step`](AtomicHistogram::record_step)) and, after every step,
/// checks the snapshot against the exact predicted value of each field
/// given which steps have executed. Modelled at interleaving granularity;
/// relaxed-memory reordering between different atomics is not modelled —
/// every field here is independently monotone, so per-field coherence is
/// the property that matters.
#[cfg(feature = "loom")]
pub mod model {
    use super::*;

    /// Runs every interleaving of one `record_ns(sample)` per element of
    /// `samples`; returns the number of interleavings checked. Panics on
    /// the first snapshot that deviates from its predicted value.
    ///
    /// Interleavings of k samples number `(5k)! / (5!)^k` — keep
    /// `samples.len()` at 2 (252 interleavings) or 3 (756 756).
    pub fn check_recorder_interleavings(samples: &[u64]) -> usize {
        assert!(samples.len() <= 3, "interleaving count is multinomial");
        let mut order = Vec::new();
        let mut count = 0;
        enumerate(
            samples.len(),
            &mut vec![0; samples.len()],
            &mut order,
            &mut |o| {
                replay_and_check(samples, o);
                count += 1;
            },
        );
        count
    }

    /// Enumerates every merge of `n` writers' 5-step programs.
    fn enumerate(
        n: usize,
        pc: &mut Vec<usize>,
        order: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if pc.iter().all(|&p| p == AtomicHistogram::RECORD_STEPS) {
            f(order);
            return;
        }
        for w in 0..n {
            if pc[w] < AtomicHistogram::RECORD_STEPS {
                pc[w] += 1;
                order.push(w);
                enumerate(n, pc, order, f);
                order.pop();
                pc[w] -= 1;
            }
        }
    }

    /// Replays one interleaving on a fresh histogram, checking the
    /// snapshot after every atomic step.
    fn replay_and_check(samples: &[u64], order: &[usize]) {
        let h = AtomicHistogram::new();
        let mut pc = vec![0usize; samples.len()];
        check_prefix(&h, samples, &pc, order);
        for &w in order {
            h.record_step(samples[w], pc[w]);
            pc[w] += 1;
            check_prefix(&h, samples, &pc, order);
        }
    }

    /// Every field is written by exactly one step of each recorder, so
    /// the mid-flight snapshot is exactly predictable from the per-writer
    /// program counters.
    fn check_prefix(h: &AtomicHistogram, samples: &[u64], pc: &[usize], order: &[usize]) {
        let past = |step: usize| (0..samples.len()).filter(move |&w| pc[w] > step);
        let snap = h.snapshot();
        // snapshot() derives `total` from the bucket counts (step 0), not
        // from the `total` counter (step 1).
        assert_eq!(
            snap.total,
            past(0).count() as u64,
            "order {order:?} pc {pc:?}"
        );
        assert_eq!(h.len(), past(1).count() as u64, "order {order:?} pc {pc:?}");
        let want_sum: u64 = past(2).fold(0u64, |a, w| a.wrapping_add(samples[w]));
        assert_eq!(
            snap.sum_ns,
            u128::from(want_sum),
            "order {order:?} pc {pc:?}"
        );
        let want_min = past(3).map(|w| samples[w]).min().unwrap_or(u64::MAX);
        assert_eq!(snap.min_ns, want_min, "order {order:?} pc {pc:?}");
        let want_max = past(4).map(|w| samples[w]).max().unwrap_or(0);
        assert_eq!(snap.max_ns, want_max, "order {order:?} pc {pc:?}");
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn two_recorders_all_interleavings() {
            assert_eq!(check_recorder_interleavings(&[100, 2_000_000]), 252);
        }

        #[test]
        fn equal_samples_and_extremes() {
            assert_eq!(check_recorder_interleavings(&[7, 7]), 252);
            assert_eq!(check_recorder_interleavings(&[0, u64::MAX]), 252);
        }

        #[test]
        fn final_state_matches_single_writer_histogram() {
            let samples = [3u64, 77, 65_000];
            let h = AtomicHistogram::new();
            for &s in &samples {
                h.record_ns(s);
            }
            let mut p = Histogram::new();
            for &s in &samples {
                p.record_ns(s);
            }
            let s = h.snapshot();
            assert_eq!(s.len(), p.len());
            assert_eq!(s.mean(), p.mean());
            assert_eq!(s.quantile(0.99), p.quantile(0.99));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(25));
        assert_eq!(h.len(), 1);
        assert_eq!(h.mean(), Some(Duration::from_micros(25)));
        let m = h.median().unwrap();
        assert!(m >= Duration::from_micros(24) && m <= Duration::from_micros(26));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn quantiles_are_ordered_and_accurate() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // ~3% resolution
        let err = (p50.as_nanos() as f64 - 500_000.0).abs() / 500_000.0;
        assert!(err < 0.05, "p50 {p50:?} err {err}");
        let err99 = (p99.as_nanos() as f64 - 990_000.0).abs() / 990_000.0;
        assert!(err99 < 0.05, "p99 {p99:?}");
    }

    #[test]
    fn tail_quantiles_p50_p99_p999_within_resolution() {
        // 100 000 uniform samples: the true pXX is known exactly, and the
        // log-bucketed estimate must land within the advertised ~3%
        // relative error (we allow 5% for bucket-edge effects).
        let mut h = Histogram::new();
        for ns in 1..=100_000u64 {
            h.record_ns(ns);
        }
        for (q, truth) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q).unwrap().as_nanos() as f64;
            let err = (got - truth).abs() / truth;
            assert!(err < 0.05, "q={q}: got {got} want ~{truth} err {err}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for i in 0..500u64 {
            h.record_ns(1000 + i * 97);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min(), Some(Duration::from_nanos(100)));
        assert_eq!(a.max(), Some(Duration::from_nanos(1_000_000)));
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        h.record_ns(1);
        assert_eq!(h.len(), 3);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for ns in [3u64, 77, 1_000, 65_000, 9_999_999] {
            a.record_ns(ns);
            p.record_ns(ns);
        }
        let s = a.snapshot();
        assert_eq!(s.len(), p.len());
        assert_eq!(s.mean(), p.mean());
        assert_eq!(s.min(), p.min());
        assert_eq!(s.max(), p.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(s.quantile(q), p.quantile(q));
        }
    }

    #[test]
    fn atomic_histogram_concurrent_writers() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(1 + t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.len(), 40_000);
        assert_eq!(s.min(), Some(Duration::from_nanos(1)));
        assert_eq!(s.max(), Some(Duration::from_nanos(40_000)));
    }
}
