//! A log-bucketed latency histogram (HdrHistogram-style, implemented
//! in-repo to stay within the offline crate set).
//!
//! Values are recorded in nanoseconds. Buckets grow geometrically: each
//! power of two is split into `SUB_BUCKETS` linear sub-buckets, giving a
//! bounded relative error of `1 / SUB_BUCKETS` across the whole range.
//!
//! Two flavors share the same bucket layout:
//!
//! * [`Histogram`] — single-writer, used by traffic generators and for
//!   snapshots (Fig. 11 CDFs).
//! * [`AtomicHistogram`] — lock-free multi-writer, embedded in the
//!   chain's shared [`ChainMetrics`](crate::metrics::ChainMetrics) so
//!   Table-2 breakdowns come with tails, not just means.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 32 sub-buckets → ~3% resolution
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A latency histogram with ~3% relative resolution from 1 ns to ~584 y.
///
/// ```
/// use ftc_core::hist::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.len(), 5);
/// assert!(h.quantile(0.99).unwrap() >= Duration::from_micros(900));
/// assert!(h.median().unwrap() < Duration::from_micros(40));
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - u64::from(v.leading_zeros());
        if msb < u64::from(SUB_BITS) {
            return v as usize;
        }
        let shift = msb - u64::from(SUB_BITS);
        let sub = (v >> shift) - SUB_BUCKETS; // 0..SUB_BUCKETS
        ((shift + 1) * SUB_BUCKETS + sub + SUB_BUCKETS) as usize - SUB_BUCKETS as usize
    }

    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < 2 * SUB_BUCKETS {
            return idx;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << shift
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let i = Self::index(ns).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency.
    pub fn mean(&self) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            (self.sum_ns / u128::from(self.total)) as u64,
        ))
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_nanos(self.min_ns))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_nanos(self.max_ns))
    }

    /// The latency at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_nanos(
                    Self::bucket_value(i).max(self.min_ns).min(self.max_ns),
                ));
            }
        }
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Median latency.
    pub fn median(&self) -> Option<Duration> {
        self.quantile(0.5)
    }

    /// `(latency, cumulative fraction)` pairs — the Fig. 11 CDF.
    pub fn cdf(&self) -> Vec<(Duration, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Duration::from_nanos(Self::bucket_value(i).max(self.min_ns).min(self.max_ns)),
                seen as f64 / self.total as f64,
            ));
        }
        out
    }
}

/// A lock-free multi-writer histogram sharing [`Histogram`]'s bucket
/// layout.
///
/// Worker threads [`record`](AtomicHistogram::record) concurrently with
/// relaxed atomics; readers take a coherent-enough [`snapshot`] at any
/// time. A snapshot taken while writers are active may be off by the
/// samples in flight — fine for monitoring, which is its only use.
///
/// [`snapshot`]: AtomicHistogram::snapshot
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("sum_ns", &self.sum_ns.load(Ordering::Relaxed))
            .finish()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample (callable from any thread).
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in nanoseconds (callable from any thread).
    pub fn record_ns(&self, ns: u64) {
        let i = Histogram::index(ns).min(self.counts.len() - 1);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the current state into a plain [`Histogram`] for quantile
    /// queries, merging, and serialization.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        Histogram {
            counts,
            total,
            sum_ns: u128::from(self.sum_ns.load(Ordering::Relaxed)),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(25));
        assert_eq!(h.len(), 1);
        assert_eq!(h.mean(), Some(Duration::from_micros(25)));
        let m = h.median().unwrap();
        assert!(m >= Duration::from_micros(24) && m <= Duration::from_micros(26));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn quantiles_are_ordered_and_accurate() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // ~3% resolution
        let err = (p50.as_nanos() as f64 - 500_000.0).abs() / 500_000.0;
        assert!(err < 0.05, "p50 {p50:?} err {err}");
        let err99 = (p99.as_nanos() as f64 - 990_000.0).abs() / 990_000.0;
        assert!(err99 < 0.05, "p99 {p99:?}");
    }

    #[test]
    fn tail_quantiles_p50_p99_p999_within_resolution() {
        // 100 000 uniform samples: the true pXX is known exactly, and the
        // log-bucketed estimate must land within the advertised ~3%
        // relative error (we allow 5% for bucket-edge effects).
        let mut h = Histogram::new();
        for ns in 1..=100_000u64 {
            h.record_ns(ns);
        }
        for (q, truth) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q).unwrap().as_nanos() as f64;
            let err = (got - truth).abs() / truth;
            assert!(err < 0.05, "q={q}: got {got} want ~{truth} err {err}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for i in 0..500u64 {
            h.record_ns(1000 + i * 97);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min(), Some(Duration::from_nanos(100)));
        assert_eq!(a.max(), Some(Duration::from_nanos(1_000_000)));
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        h.record_ns(1);
        assert_eq!(h.len(), 3);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for ns in [3u64, 77, 1_000, 65_000, 9_999_999] {
            a.record_ns(ns);
            p.record_ns(ns);
        }
        let s = a.snapshot();
        assert_eq!(s.len(), p.len());
        assert_eq!(s.mean(), p.mean());
        assert_eq!(s.min(), p.min());
        assert_eq!(s.max(), p.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(s.quantile(q), p.quantile(q));
        }
    }

    #[test]
    fn atomic_histogram_concurrent_writers() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(1 + t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.len(), 40_000);
        assert_eq!(s.min(), Some(Duration::from_nanos(1)));
        assert_eq!(s.max(), Some(Duration::from_nanos(40_000)));
    }
}
