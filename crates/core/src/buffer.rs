//! The chain egress element (paper §5.1).
//!
//! The buffer "holds a packet until the state updates associated with all
//! middleboxes of the chain have been replicated" and "forwards state
//! updates to the forwarder for middleboxes with replicas at the beginning
//! of the chain". Concretely: a packet arriving at the buffer still carries
//! the piggyback logs of the *wrapped* middleboxes (the last `f`); the
//! buffer extracts those logs, sends them to the forwarder (to ride
//! incoming packets around the ring), and withholds the packet until later
//! commit vectors dominate its logs' dependency vectors.

use crate::config::RingMath;
use crate::control::{InPort, OutPort};
use crate::journal::{EventKind, EventSource};
use crate::metrics::ChainMetrics;
use crate::probe::{ProbePoint, ProbeSlot};
use bytes::BytesMut;
use crossbeam::channel::Sender;
use ftc_net::server::AliveToken;
use ftc_packet::piggyback::{
    batch_wire_len, encode_batch, DepVector, PiggybackLog, PiggybackMessage,
};
use ftc_packet::Packet;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum logs per feedback message.
const MAX_FEEDBACK_LOGS: usize = 32;

struct HeldPacket {
    pkt: Packet,
    /// `(mbox, deps)` pairs that must be committed before release.
    reqs: Vec<(usize, DepVector)>,
}

struct BufInner {
    held: VecDeque<HeldPacket>,
    /// Merged commit `MAX` per wrapped middlebox.
    commits: HashMap<usize, Vec<u64>>,
    /// Wrapped logs not yet confirmed committed — kept for periodic resend
    /// so in-flight loss (including replica failure) self-heals; replicas
    /// deduplicate via the stale rule.
    uncommitted: Vec<PiggybackLog>,
    /// Logs to ship to the forwarder on the next flush.
    fresh: Vec<PiggybackLog>,
}

/// Shared buffer state.
pub struct BufferState {
    ring: RingMath,
    inner: Mutex<BufInner>,
    egress: Sender<Packet>,
    feedback: Arc<OutPort>,
    metrics: Arc<ChainMetrics>,
    /// Model-checker hook: observes every release decision (the `f+1`
    /// replication proof point for invariant I1).
    pub probe: ProbeSlot,
    /// Negative-fixture switch: when set, the release rule is off by one
    /// (`MAX[p] >= seq` instead of `> seq`). Never set in production; the
    /// audit crate uses it to prove the model checker catches I1 bugs.
    sabotage_early: std::sync::atomic::AtomicBool,
}

impl BufferState {
    /// Creates buffer state. Released packets go to `egress`; feedback
    /// messages go out through `feedback` (a reliable link to the
    /// forwarder).
    pub fn new(
        ring: RingMath,
        egress: Sender<Packet>,
        feedback: Arc<OutPort>,
        metrics: Arc<ChainMetrics>,
    ) -> Arc<BufferState> {
        Arc::new(BufferState {
            ring,
            inner: Mutex::new(BufInner {
                held: VecDeque::new(),
                commits: HashMap::new(),
                uncommitted: Vec::new(),
                fresh: Vec::new(),
            }),
            egress,
            feedback,
            metrics,
            probe: ProbeSlot::new(),
            sabotage_early: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Intentionally breaks the release rule by one commit-vector entry
    /// (`MAX[p] >= seq` instead of the paper's strict `> seq`): a packet can
    /// then egress before its own state update is `f+1`-replicated. Test
    /// fixture for the protocol model checker's I1 witness; never called by
    /// production code.
    #[doc(hidden)]
    pub fn sabotage_early_release(&self) {
        self.sabotage_early.store(true, Ordering::Release);
    }

    /// Number of packets currently withheld.
    pub fn held_len(&self) -> usize {
        self.inner.lock().held.len()
    }

    /// Number of wrapped logs awaiting commit confirmation.
    pub fn uncommitted_len(&self) -> usize {
        self.inner.lock().uncommitted.len()
    }

    /// Processes one frame arriving from the last replica.
    pub fn handle_frame(&self, frame: BytesMut) {
        let t0 = Instant::now();
        let Ok(mut pkt) = Packet::from_frame(frame) else {
            return;
        };
        let msg = match pkt.detach_piggyback() {
            Ok(Some(m)) => m,
            Ok(None) => PiggybackMessage::default(),
            Err(_) => return,
        };
        let mut inner = self.inner.lock();

        // 1. Merge commit vectors.
        for c in &msg.commits {
            let entry = inner.commits.entry(c.mbox.0 as usize).or_default();
            if c.max.len() > entry.len() {
                entry.resize(c.max.len(), 0);
            }
            for (i, &v) in c.max.iter().enumerate() {
                if v > entry[i] {
                    entry[i] = v;
                }
            }
        }

        // 2. Extract wrapped logs: they become release requirements for this
        //    packet and feedback for the forwarder. Logs are MOVED into the
        //    fresh set (flush sends them, then shifts them into the
        //    uncommitted backlog) — no per-log clone on this path.
        let is_propagating = msg.is_propagating();
        let mut reqs = Vec::new();
        for log in msg.logs {
            let m = log.mbox.0 as usize;
            if !log.deps.is_empty() {
                reqs.push((m, log.deps.clone()));
            }
            inner.fresh.push(log);
        }

        // 3. Hold or release this packet.
        if !is_propagating {
            if reqs.is_empty() {
                // Fully replicated (or read-only): release immediately.
                drop(inner);
                self.metrics.t_buffer.record(t0.elapsed());
                self.probe
                    .observe_with(|| ProbePoint::BufferRelease { reqs: Vec::new() });
                self.release(pkt);
                let mut inner = self.inner.lock();
                self.sweep(&mut inner);
                self.flush_feedback(&mut inner);
                return;
            }
            inner.held.push_back(HeldPacket { pkt, reqs });
            self.metrics
                .held
                .store(inner.held.len() as u64, Ordering::Relaxed);
        }

        // 4. Release whatever the merged commits now cover, prune, flush.
        self.sweep(&mut inner);
        self.flush_feedback(&mut inner);
        self.metrics.t_buffer.record(t0.elapsed());
    }

    /// Re-sends uncommitted logs (timer path) so that logs lost in flight —
    /// e.g. during a failure — eventually replicate; also polls the
    /// feedback link for ACK/NACK processing.
    pub fn tick(&self) {
        let mut inner = self.inner.lock();
        self.sweep(&mut inner);
        // Resend *everything* uncommitted: completion order at the last
        // replica can diverge arbitrarily from commit order, so any
        // fixed-size prefix could miss the gap log and livelock the ring.
        // Replicas drop duplicates via the stale rule. The batch encoder
        // serializes straight from the backlog slice — the old path deep-
        // cloned the whole backlog every tick.
        for chunk in inner.uncommitted.chunks(MAX_FEEDBACK_LOGS) {
            let mut b = BytesMut::with_capacity(batch_wire_len(chunk));
            encode_batch(chunk, &mut b);
            self.feedback.send(b);
        }
        drop(inner);
        self.feedback.poll();
    }

    fn committed(&self, commits: &HashMap<usize, Vec<u64>>, m: usize, deps: &DepVector) -> bool {
        let Some(max) = commits.get(&m) else {
            return false;
        };
        if self.sabotage_early.load(Ordering::Acquire) {
            // Off-by-one fixture: accepts `MAX[p] == seq`, which only proves
            // the *previous* update replicated, not this one.
            return deps
                .entries()
                .iter()
                .all(|&(p, seq)| max.get(p as usize).copied().unwrap_or(0) >= seq);
        }
        deps.committed_under(max)
    }

    /// Releases held packets whose requirements are met and prunes the
    /// uncommitted set.
    fn sweep(&self, inner: &mut BufInner) {
        loop {
            let releasable = inner.held.iter().position(|h| {
                h.reqs
                    .iter()
                    .all(|(m, deps)| self.committed(&inner.commits, *m, deps))
            });
            match releasable {
                Some(i) => {
                    let h = inner.held.remove(i).expect("indexed");
                    // I1 observation point: the release rule just claimed
                    // every requirement is f+1-replicated.
                    self.probe.observe_with(|| ProbePoint::BufferRelease {
                        reqs: h
                            .reqs
                            .iter()
                            .map(|(m, deps)| (*m, deps.entries().to_vec()))
                            .collect(),
                    });
                    self.release(h.pkt);
                }
                None => break,
            }
        }
        self.metrics
            .held
            .store(inner.held.len() as u64, Ordering::Relaxed);
        let commits = std::mem::take(&mut inner.commits);
        inner
            .uncommitted
            .retain(|log| !self.committed(&commits, log.mbox.0 as usize, &log.deps));
        inner.commits = commits;
    }

    /// Ships fresh wrapped logs to the forwarder as batch frames (one
    /// amortized header per [`MAX_FEEDBACK_LOGS`] logs, encoded straight
    /// from the staging slice), then shifts them into the uncommitted
    /// backlog for periodic resend. No log is cloned anywhere on this path.
    fn flush_feedback(&self, inner: &mut BufInner) {
        if inner.fresh.is_empty() {
            return;
        }
        for chunk in inner.fresh.chunks(MAX_FEEDBACK_LOGS) {
            let mut b = BytesMut::with_capacity(batch_wire_len(chunk));
            encode_batch(chunk, &mut b);
            self.feedback.send(b);
        }
        let mut fresh = std::mem::take(&mut inner.fresh);
        inner.uncommitted.append(&mut fresh);
        inner.fresh = fresh; // keep the (drained) staging allocation
    }

    fn release(&self, pkt: Packet) {
        self.metrics.released.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .journal
            .record(EventSource::Buffer, EventKind::PacketReleased);
        let _ = self.egress.send(pkt);
    }

    /// Diagnostics: the dependency entries of uncommitted logs.
    #[doc(hidden)]
    pub fn debug_uncommitted(&self) -> Vec<(u16, Vec<(u16, u64)>)> {
        self.inner
            .lock()
            .uncommitted
            .iter()
            .map(|l| (l.mbox.0, l.deps.entries().to_vec()))
            .collect()
    }

    /// Diagnostics: merged commit vectors.
    #[doc(hidden)]
    pub fn debug_commits(&self) -> Vec<(usize, Vec<u64>)> {
        let inner = self.inner.lock();
        inner.commits.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// The ring this buffer serves (used by diagnostics).
    pub fn ring(&self) -> RingMath {
        self.ring
    }
}

/// Spawns the buffer threads onto the last server.
pub fn spawn_buffer(
    server: &mut ftc_net::Server,
    state: Arc<BufferState>,
    in_port: Arc<InPort>,
    resend_period: Duration,
) {
    let st = Arc::clone(&state);
    server.spawn("buffer", move |alive: AliveToken| {
        let mut last_tick = Instant::now();
        while alive.is_alive() {
            if let Some(frame) = in_port.recv_timeout(Duration::from_millis(1)) {
                st.handle_frame(frame);
            }
            if last_tick.elapsed() >= resend_period {
                st.tick();
                last_tick = Instant::now();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use ftc_net::{reliable_pair, Endpoint};
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_packet::piggyback::{CommitVector, MboxId};

    struct Rig {
        buf: Arc<BufferState>,
        egress: crossbeam::channel::Receiver<Packet>,
        feedback_rx: InPort,
        metrics: Arc<ChainMetrics>,
    }

    fn rig(n: usize, f: usize) -> Rig {
        let (etx, erx) = channel::unbounded();
        let (ftx, frx) = reliable_pair(&Endpoint::in_proc());
        let metrics = Arc::new(ChainMetrics::default());
        let buf = BufferState::new(
            RingMath { n, f },
            etx,
            Arc::new(OutPort::wired(ftx)),
            Arc::clone(&metrics),
        );
        Rig {
            buf,
            egress: erx,
            feedback_rx: InPort::wired(frx),
            metrics,
        }
    }

    fn frame_with(msg: &PiggybackMessage) -> BytesMut {
        let mut pkt = UdpPacketBuilder::new().build();
        pkt.attach_piggyback(msg).unwrap();
        pkt.into_bytes()
    }

    fn log(m: u16, part: u16, seq: u64) -> PiggybackLog {
        PiggybackLog {
            mbox: MboxId(m),
            deps: DepVector::from_entries(vec![(part, seq)]).unwrap(),
            writes: vec![],
        }
    }

    #[test]
    fn clean_packet_released_immediately() {
        let r = rig(3, 1);
        r.buf.handle_frame(frame_with(&PiggybackMessage::default()));
        assert!(r.egress.recv_timeout(Duration::from_millis(100)).is_ok());
        assert_eq!(r.buf.held_len(), 0);
        assert_eq!(r.metrics.released.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wrapped_log_holds_until_commit() {
        let r = rig(3, 1);
        // Packet carrying m2's log (wrapped in a 3-chain with f=1).
        let msg = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 0)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&msg));
        assert_eq!(r.buf.held_len(), 1);
        assert!(r.egress.try_recv().is_err());
        assert_eq!(r.buf.uncommitted_len(), 1);

        // A later packet carries m2's commit vector covering seq 0.
        let msg2 = PiggybackMessage {
            flags: 0,
            logs: vec![],
            commits: vec![CommitVector {
                mbox: MboxId(2),
                max: vec![1],
            }],
        };
        r.buf.handle_frame(frame_with(&msg2));
        // Both packets now out (second had no requirements).
        assert_eq!(r.buf.held_len(), 0);
        assert_eq!(r.metrics.released.load(Ordering::Relaxed), 2);
        assert_eq!(r.buf.uncommitted_len(), 0, "committed logs pruned");
    }

    #[test]
    fn insufficient_commit_keeps_holding() {
        let r = rig(3, 1);
        let msg = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 5)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&msg));
        let weak = PiggybackMessage {
            flags: 0,
            logs: vec![],
            commits: vec![CommitVector {
                mbox: MboxId(2),
                max: vec![5],
            }], // needs > 5
        };
        r.buf.handle_frame(frame_with(&weak));
        assert_eq!(r.buf.held_len(), 1, "MAX[p]=5 does not commit seq 5");
    }

    #[test]
    fn sabotaged_release_rule_frees_packets_one_entry_early() {
        // The negative fixture inverts `insufficient_commit_keeps_holding`:
        // with the off-by-one rule, MAX[p]=5 wrongly releases seq 5.
        let r = rig(3, 1);
        r.buf.sabotage_early_release();
        let msg = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 5)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&msg));
        let weak = PiggybackMessage {
            flags: 0,
            logs: vec![],
            commits: vec![CommitVector {
                mbox: MboxId(2),
                max: vec![5],
            }],
        };
        r.buf.handle_frame(frame_with(&weak));
        assert_eq!(r.buf.held_len(), 0, "broken rule accepts MAX[p] == seq");
    }

    #[test]
    fn wrapped_logs_go_to_feedback() {
        let r = rig(3, 1);
        let msg = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 0)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&msg));
        let f = r
            .feedback_rx
            .recv_timeout(Duration::from_millis(100))
            .expect("feedback sent");
        let (fb, _) = PiggybackMessage::decode_trailing(&f).unwrap().unwrap();
        assert_eq!(fb.logs.len(), 1);
        assert_eq!(fb.logs[0].mbox, MboxId(2));
    }

    #[test]
    fn tick_resends_uncommitted() {
        let r = rig(3, 1);
        let msg = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 0)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&msg));
        // Drain the initial feedback.
        let _ = r.feedback_rx.recv_timeout(Duration::from_millis(100));
        // Simulate loss: the log never committed; tick must resend.
        r.buf.tick();
        let f = r
            .feedback_rx
            .recv_timeout(Duration::from_millis(100))
            .expect("resend");
        let (fb, _) = PiggybackMessage::decode_trailing(&f).unwrap().unwrap();
        assert_eq!(fb.logs.len(), 1);
    }

    #[test]
    fn propagating_packets_are_consumed_not_released() {
        let r = rig(3, 1);
        let msg = PiggybackMessage {
            flags: ftc_packet::piggyback::flags::PROPAGATING,
            logs: vec![],
            commits: vec![CommitVector {
                mbox: MboxId(2),
                max: vec![3],
            }],
        };
        let prop = ftc_packet::packet::propagating_packet(
            ftc_packet::ether::MacAddr::from_index(1),
            ftc_packet::ether::MacAddr::from_index(2),
            &msg,
        );
        r.buf.handle_frame(prop.into_bytes());
        assert!(
            r.egress.try_recv().is_err(),
            "propagating packets never egress"
        );
        // But their commits took effect.
        let held = PiggybackMessage {
            flags: 0,
            logs: vec![log(2, 0, 2)],
            commits: vec![],
        };
        r.buf.handle_frame(frame_with(&held));
        assert_eq!(
            r.buf.held_len(),
            0,
            "already-committed log releases instantly"
        );
    }

    #[test]
    fn release_order_is_fifo_among_ready() {
        let r = rig(2, 1);
        // Hold two packets needing m1 seq 0 and seq 1.
        let m1 = PiggybackMessage {
            flags: 0,
            logs: vec![log(1, 0, 0)],
            commits: vec![],
        };
        let m2 = PiggybackMessage {
            flags: 0,
            logs: vec![log(1, 0, 1)],
            commits: vec![],
        };
        let mut p1 = UdpPacketBuilder::new().ident(1).build();
        p1.attach_piggyback(&m1).unwrap();
        let mut p2 = UdpPacketBuilder::new().ident(2).build();
        p2.attach_piggyback(&m2).unwrap();
        r.buf.handle_frame(p1.into_bytes());
        r.buf.handle_frame(p2.into_bytes());
        assert_eq!(r.buf.held_len(), 2);
        // Commit both at once via a propagating packet (so the carrier
        // itself is not released ahead of the held packets).
        let commit = PiggybackMessage {
            flags: ftc_packet::piggyback::flags::PROPAGATING,
            logs: vec![],
            commits: vec![CommitVector {
                mbox: MboxId(1),
                max: vec![2],
            }],
        };
        let prop = ftc_packet::packet::propagating_packet(
            ftc_packet::ether::MacAddr::from_index(1),
            ftc_packet::ether::MacAddr::from_index(2),
            &commit,
        );
        r.buf.handle_frame(prop.into_bytes());
        let a = r.egress.recv_timeout(Duration::from_millis(100)).unwrap();
        let b = r.egress.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(a.ipv4().unwrap().ident(), 1);
        assert_eq!(b.ipv4().unwrap().ident(), 2);
    }
}
