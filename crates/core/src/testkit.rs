//! A deterministic, single-threaded chain harness for protocol testing.
//!
//! The production runtime ([`crate::chain::FtcChain`]) runs replicas on
//! real threads, which makes interleavings uncontrollable. [`SyncChain`]
//! wires the *same* protocol state objects ([`crate::replica::ReplicaState`],
//! [`crate::forwarder::ForwarderState`], [`crate::buffer::BufferState`])
//! with synchronous stepping instead of threads, so property-based tests
//! can drive arbitrary schedules — "step replica 2, then the buffer, then
//! replica 0 twice…" — and check protocol invariants under every explored
//! interleaving, deterministically.

use crate::buffer::BufferState;
use crate::chain::Egress;
use crate::config::ChainConfig;
use crate::control::{InPort, OutPort};
use crate::forwarder::ForwarderState;
use crate::metrics::ChainMetrics;
use crate::probe::{ProbeVerdict, ProtocolProbe};
use crate::reconfig::{
    ClaimSample, ClaimView, ReconfigActor, ReconfigFailure, ReconfigOp, ReconfigPhase, ReconfigRun,
    ReconfigStats, SealRecord, TransferInterrupt,
};
use crate::recovery::RecoveryError;
use crate::replica::ReplicaState;
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender};
use ftc_mbox::MbSpec;
use ftc_net::nic::Nic;
use ftc_net::{reliable_pair, Endpoint};
use ftc_packet::Packet;
use ftc_stm::PartitionExport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Components that can be stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Move frames from replica `i`'s in-port through its NIC and process
    /// one queued frame.
    Replica(usize),
    /// Deliver pending feedback to the forwarder.
    ForwarderFeedback,
    /// Fire the forwarder's idle timer (propagating packet).
    ForwarderTimer,
    /// Process one frame at the buffer.
    Buffer,
    /// Fire the buffer's resend timer.
    BufferTimer,
}

/// A synchronous, deterministic FTC chain.
pub struct SyncChain {
    /// The chain's replicas (single worker each).
    pub replicas: Vec<Arc<ReplicaState>>,
    /// Chain-wide metrics (shared with the components).
    pub metrics: Arc<ChainMetrics>,
    forwarder: Arc<ForwarderState>,
    buffer: Arc<BufferState>,
    nics: Vec<Arc<Nic>>,
    worker_queues: Vec<Receiver<BytesMut>>,
    in_ports: Vec<Arc<InPort>>,
    buffer_in: Arc<InPort>,
    feedback_in: Arc<InPort>,
    egress: Receiver<Packet>,
    /// Sender side of the egress channel, kept so a splice can carry
    /// undrained egress packets across the topology swap.
    egress_tx: Sender<Packet>,
    /// Fail-stopped replicas: stepping them is a no-op until recovered.
    dead: Vec<AtomicBool>,
    /// Instances decommissioned by a reconfiguration. Kept (not dropped)
    /// because the I5 single-owner invariant must observe their claim
    /// tables: a retired-but-alive instance that still claims partitions
    /// is exactly the bug class the checker exists for.
    retired: Vec<Arc<ReplicaState>>,
    /// The chain-wide probe, re-installed on replacement replicas.
    probe: parking_lot::Mutex<Option<Arc<dyn ProtocolProbe>>>,
}

impl SyncChain {
    /// Builds a synchronous chain for `cfg` (worker count forced to 1; all
    /// links ideal — loss/reorder schedules are expressed through `Step`
    /// ordering instead).
    pub fn new(cfg: ChainConfig) -> SyncChain {
        let cfg = cfg.with_workers(1).with_link(Endpoint::in_proc());
        cfg.validate();
        let cfg = Arc::new(cfg);
        let specs = cfg.effective_middleboxes();
        let n = specs.len();
        let metrics = Arc::new(ChainMetrics::default());

        let mut in_ports: Vec<Arc<InPort>> = Vec::with_capacity(n);
        let mut out_ports: Vec<Arc<OutPort>> = Vec::with_capacity(n);
        in_ports.push(Arc::new(InPort::empty()));
        for _ in 0..n - 1 {
            let (tx, rx) = reliable_pair(&Endpoint::in_proc());
            out_ports.push(Arc::new(OutPort::wired(tx)));
            in_ports.push(Arc::new(InPort::wired(rx)));
        }
        let (tail_tx, buffer_rx) = reliable_pair(&Endpoint::in_proc());
        out_ports.push(Arc::new(OutPort::wired(tail_tx)));
        let buffer_in = Arc::new(InPort::wired(buffer_rx));
        let (fb_tx, fb_rx) = reliable_pair(&Endpoint::in_proc());
        let feedback_out = Arc::new(OutPort::wired(fb_tx));
        let feedback_in = Arc::new(InPort::wired(fb_rx));

        let (egress_tx, egress_rx) = channel::unbounded();
        let forwarder = ForwarderState::new(Arc::clone(&metrics));
        let buffer = BufferState::new(
            cfg.ring(),
            egress_tx.clone(),
            feedback_out,
            Arc::clone(&metrics),
        );

        let mut replicas = Vec::with_capacity(n);
        let mut nics = Vec::with_capacity(n);
        let mut worker_queues = Vec::with_capacity(n);
        for (i, spec) in specs.iter().enumerate() {
            let state = ReplicaState::new(
                i,
                Arc::clone(&cfg),
                spec.build(),
                Arc::clone(&out_ports[i]),
                Arc::clone(&metrics),
            );
            let mut nic = Nic::new(1, cfg.nic_queue_depth);
            worker_queues.push(nic.take_queue(0));
            nics.push(Arc::new(nic));
            replicas.push(state);
        }

        SyncChain {
            replicas,
            metrics,
            forwarder,
            buffer,
            nics,
            worker_queues,
            in_ports,
            buffer_in,
            feedback_in,
            egress: egress_rx,
            egress_tx,
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            retired: Vec::new(),
            probe: parking_lot::Mutex::new(None),
        }
    }

    /// Installs `probe` on every component (replicas, buffer, forwarder)
    /// and remembers it so replacement replicas built by
    /// [`Self::try_fail_and_recover`] are instrumented too.
    pub fn install_probe(&self, probe: Arc<dyn ProtocolProbe>) {
        for r in &self.replicas {
            r.probe.install(Arc::clone(&probe));
        }
        self.buffer.probe.install(Arc::clone(&probe));
        self.forwarder.probe.install(Arc::clone(&probe));
        *self.probe.lock() = Some(probe);
    }

    /// The buffer (e.g. for `sabotage_early_release` in negative fixtures).
    pub fn buffer(&self) -> &Arc<BufferState> {
        &self.buffer
    }

    /// The forwarder.
    pub fn forwarder(&self) -> &Arc<ForwarderState> {
        &self.forwarder
    }

    /// True while replica `idx` is fail-stopped.
    pub fn is_dead(&self, idx: usize) -> bool {
        self.dead[idx].load(Ordering::Acquire)
    }

    /// Fail-stops replica `idx` without recovering it: queued frames die
    /// with it and stepping it is a no-op until
    /// [`Self::try_fail_and_recover`] succeeds. Idempotent.
    pub fn mark_dead(&self, idx: usize) {
        self.dead[idx].store(true, Ordering::Release);
        while self.worker_queues[idx].try_recv().is_ok() {}
        while self.in_ports[idx].recv_timeout(Duration::ZERO).is_some() {}
    }

    /// Injects a packet at the forwarder (processed immediately into the
    /// first replica's NIC queue, like the ingress thread would).
    pub fn inject(&self, pkt: Packet) {
        self.forwarder
            .handle_ingress(pkt.into_bytes(), &self.nics[0]);
    }

    /// Executes one scheduling step. Returns true if any work happened.
    pub fn step(&self, step: Step) -> bool {
        match step {
            Step::Replica(i) => {
                let i = i % self.replicas.len();
                if self.is_dead(i) {
                    // Fail-stopped: frames headed here die with the server
                    // (the rewire on recovery discards the stale ports).
                    return false;
                }
                if self.replicas[i].is_paused() {
                    // Quiesced (§4.1 / a handover prepare): frames back up
                    // in the in-port, exactly like the threaded rx loop.
                    return false;
                }
                let mut progressed = false;
                // Link → NIC (one frame).
                if let Some(frame) = self.in_ports[i].recv_timeout(Duration::ZERO) {
                    self.nics[i].dispatch(frame);
                    progressed = true;
                }
                // NIC queue → protocol (one frame).
                if let Ok(frame) = self.worker_queues[i].try_recv() {
                    self.replicas[i].handle_frame(0, frame);
                    progressed = true;
                }
                progressed
            }
            Step::ForwarderFeedback => match self.feedback_in.recv_timeout(Duration::ZERO) {
                Some(frame) => {
                    self.forwarder.ingest_feedback(frame);
                    true
                }
                None => false,
            },
            Step::ForwarderTimer => self.forwarder.emit_propagating(&self.nics[0]),
            Step::Buffer => match self.buffer_in.recv_timeout(Duration::ZERO) {
                Some(frame) => {
                    self.buffer.handle_frame(frame);
                    true
                }
                None => false,
            },
            Step::BufferTimer => {
                self.buffer.tick();
                true
            }
        }
    }

    /// Round-robin steps everything until nothing progresses and all
    /// injected packets are accounted for, or `max_rounds` is exhausted.
    /// Timer steps fire once per idle round, mirroring the real timers.
    pub fn run_to_quiescence(&self, max_rounds: usize) {
        let n = self.replicas.len();
        for _ in 0..max_rounds {
            let mut progressed = false;
            for i in 0..n {
                while self.step(Step::Replica(i)) {
                    progressed = true;
                }
            }
            progressed |= self.step(Step::Buffer);
            while self.step(Step::Buffer) {}
            progressed |= self.step(Step::ForwarderFeedback);
            while self.step(Step::ForwarderFeedback) {}
            if !progressed {
                // Idle: fire the timers once; if that creates no new work
                // either, the chain is quiescent.
                self.step(Step::BufferTimer);
                let timer_work = self.step(Step::ForwarderTimer);
                let more = self.step(Step::Buffer) || self.step(Step::Replica(0));
                if !timer_work && !more {
                    return;
                }
            }
        }
    }

    /// Deterministically fail-stops replica `idx` and rebuilds it via the
    /// §4.1/§5.2 recovery procedure, fetching state synchronously from the
    /// surviving group members. In-flight frames queued at the dead replica
    /// are discarded (fail-stop loses them); the wrapped-log resend path
    /// re-replicates whatever the buffer still owes.
    pub fn fail_and_recover(&mut self, idx: usize) {
        self.try_fail_and_recover(idx, &|_, _| true)
            .expect("sync recovery");
    }

    /// Fallible variant of [`Self::fail_and_recover`] for failure-schedule
    /// exploration: `source_ok(src, mbox)` gates each per-source fetch (a
    /// `false` models that source dying mid-fetch, forcing the §4.1
    /// fallback order), and an installed chain probe can crash the
    /// *recovering* replica at any [`RecoveryFetch`](crate::ProbePoint)
    /// point. On error the victim stays fail-stopped — nothing is rewired —
    /// and the call can simply be retried (a fresh replacement is built
    /// each attempt, exactly like the orchestrator respawning). On success
    /// returns the bytes transferred.
    pub fn try_fail_and_recover(
        &mut self,
        idx: usize,
        source_ok: &dyn Fn(usize, usize) -> bool,
    ) -> Result<usize, RecoveryError> {
        use crate::journal::{EventKind, EventSource};
        use crate::recovery::recover_replica_state;
        let n = self.replicas.len();
        let cfg = Arc::clone(&self.replicas[idx].cfg);
        let spec = cfg.effective_middleboxes()[idx].clone();
        self.metrics.journal.record(
            EventSource::Orchestrator,
            EventKind::RespawnIssued {
                replica: idx as u16,
            },
        );

        // Fail-stop: drop queued frames at the victim.
        self.mark_dead(idx);

        // Fresh replacement, instrumented like the rest of the chain.
        let state = ReplicaState::new(
            idx,
            cfg,
            spec.build(),
            Arc::new(OutPort::empty()),
            Arc::clone(&self.metrics),
        );
        if let Some(probe) = self.probe.lock().as_ref() {
            state.probe.install(Arc::clone(probe));
        }

        // Synchronous state fetch from live replicas, following the same
        // source-selection rule the orchestrator uses.
        let replicas = &self.replicas;
        let dead = &self.dead;
        let fetcher = |src: usize, mbox: usize| {
            if dead[src].load(Ordering::Acquire) || !source_ok(src, mbox) {
                return None;
            }
            let r = &replicas[src];
            r.discard_parked();
            if mbox == src {
                Some((r.own_store.snapshot(), r.own_store.seq_vector()))
            } else {
                r.replicated
                    .get(&mbox)
                    .map(|g| (g.store.snapshot(), g.max.vector()))
            }
        };
        let transferred = recover_replica_state(&state, &fetcher)?;

        // Rewire: predecessor → new replica → successor (or buffer).
        let in_port = Arc::new(InPort::empty());
        if idx > 0 {
            let (tx, rx) = reliable_pair(&Endpoint::in_proc());
            in_port.install(rx);
            self.replicas[idx - 1].out.install(tx);
        }
        if idx < n - 1 {
            let (tx, rx) = reliable_pair(&Endpoint::in_proc());
            state.out.install(tx);
            self.in_ports[idx + 1].install(rx);
        } else {
            let (tx, rx) = reliable_pair(&Endpoint::in_proc());
            state.out.install(tx);
            self.buffer_in.install(rx);
        }
        let mut nic = Nic::new(1, state.cfg.nic_queue_depth);
        self.worker_queues[idx] = nic.take_queue(0);
        self.nics[idx] = Arc::new(nic);
        self.in_ports[idx] = in_port;
        self.replicas[idx] = state;
        self.dead[idx].store(false, Ordering::Release);
        self.metrics.journal.record(
            EventSource::Orchestrator,
            EventKind::TrafficResumed {
                replica: idx as u16,
            },
        );
        Ok(transferred)
    }

    /// Every instance's [`ClaimView`] — the chain's current replicas,
    /// retired instances, and any `extra` in-flight ones — for the I5
    /// single-serviceable-owner fold.
    fn reconfig_views(&self, extra: &[(&'static str, &Arc<ReplicaState>)]) -> Vec<ClaimView> {
        let mut views = Vec::with_capacity(self.replicas.len() + self.retired.len() + extra.len());
        for (i, r) in self.replicas.iter().enumerate() {
            views.push(ClaimView {
                position: r.idx,
                tag: "chain",
                alive: !self.is_dead(i),
                flags: r.claims.view(),
            });
        }
        for r in &self.retired {
            views.push(ClaimView {
                position: r.idx,
                tag: "retired",
                alive: true,
                flags: r.claims.view(),
            });
        }
        for (tag, r) in extra {
            views.push(ClaimView {
                position: r.idx,
                tag,
                alive: true,
                flags: r.claims.view(),
            });
        }
        views
    }

    /// Reports one reconfiguration probe point and appends the claim-table
    /// state *at that point* to `trace`. The verdict decides whether the
    /// named actor fail-stops there.
    // audit: the signature mirrors ProbePoint::Reconfig plus trace + extras
    #[allow(clippy::too_many_arguments)]
    fn reconfig_point(
        &self,
        trace: &mut Vec<ClaimSample>,
        op: ReconfigOp,
        phase: ReconfigPhase,
        role: ReconfigActor,
        mbox: usize,
        extra: &[(&'static str, &Arc<ReplicaState>)],
    ) -> ProbeVerdict {
        let verdict = match self.probe.lock().as_ref() {
            Some(p) => p.on_step(crate::probe::ProbePoint::Reconfig {
                op,
                phase,
                role,
                mbox,
            }),
            None => ProbeVerdict::Continue,
        };
        trace.push(ClaimSample {
            op,
            phase,
            role,
            views: self.reconfig_views(extra),
        });
        verdict
    }

    /// Migrates the instance at ring position `idx` onto a fresh replica
    /// via the four-phase handover of [`crate::reconfig`]. See
    /// [`Self::scale_mbox`] for the scale flavor of the same handshake.
    ///
    /// Unlike [`Self::fail_and_recover`], this is a *planned* handover: the
    /// source is drained, not killed, so no frame is lost — the position's
    /// ports, NIC and queue carry straight over to the new instance. An
    /// installed probe can crash any participant at any
    /// [`Reconfig`](crate::ProbePoint::Reconfig) point; each failure leaves
    /// the chain in the defined state documented on
    /// [`ReconfigFailure`].
    pub fn migrate_mbox(&mut self, idx: usize) -> ReconfigRun {
        self.handover(idx, ReconfigOp::Migrate)
    }

    /// Scales the instance at `idx` through the same handover as
    /// [`Self::migrate_mbox`]. `SyncChain` pins every instance to one
    /// worker (determinism), so here the operation exercises the protocol
    /// only; the threaded orchestrator engine applies the real
    /// worker-count change with this same phase structure.
    pub fn scale_mbox(&mut self, idx: usize) -> ReconfigRun {
        self.handover(idx, ReconfigOp::Scale)
    }

    fn handover(&mut self, idx: usize, op: ReconfigOp) -> ReconfigRun {
        use crate::journal::{EventKind, EventSource};
        let mut trace: Vec<ClaimSample> = Vec::new();
        let fail = |outcome: ReconfigFailure, trace: Vec<ClaimSample>, seal| ReconfigRun {
            op,
            position: idx,
            outcome: Err(outcome),
            trace,
            seal,
        };

        // --- Prepare ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Prepare,
            ReconfigActor::Orchestrator,
            idx,
            &[],
        ) == ProbeVerdict::Crash
        {
            // The driver died before touching the chain: nothing to undo.
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Prepare,
                },
                trace,
                None,
            );
        }
        self.metrics.journal.record(
            EventSource::Orchestrator,
            EventKind::RespawnIssued {
                replica: idx as u16,
            },
        );
        let src = Arc::clone(&self.replicas[idx]);
        src.begin_handover();
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Prepare,
            ReconfigActor::Source,
            idx,
            &[],
        ) == ProbeVerdict::Crash
        {
            // The freshly quiesced source died: the position fail-stops
            // and standard §5.2 recovery (from the group) applies.
            self.mark_dead(idx);
            return fail(
                ReconfigFailure::SourceCrashed {
                    phase: ReconfigPhase::Prepare,
                },
                trace,
                None,
            );
        }
        // The committed prefix at the seal: what I6 says must arrive.
        let seal = SealRecord {
            snapshot: src.own_store.snapshot(),
            seqs: src.own_store.seq_vector(),
        };

        // Fresh destination at the same position, sharing the source's
        // wired out-port (a planned handover loses no frames). It claims
        // nothing until the switch commits.
        let cfg = Arc::clone(&src.cfg);
        let spec = cfg.effective_middleboxes()[idx].clone();
        let dest = ReplicaState::new(
            idx,
            cfg,
            spec.build(),
            Arc::clone(&src.out),
            Arc::clone(&self.metrics),
        );
        dest.claims.unclaim_all();
        if let Some(p) = self.probe.lock().as_ref() {
            dest.probe.install(Arc::clone(p));
        }

        // --- Transfer --- the own store moves one partition at a time
        // through the wire codec; either side can die after each chunk.
        let mut transferred = 0usize;
        let mut interrupt: Option<TransferInterrupt> = None;
        for p in 0..src.own_store.partitions() as u16 {
            let wire = src.own_store.export_partition(p).encode();
            transferred += wire.len();
            if self.reconfig_point(
                &mut trace,
                op,
                ReconfigPhase::Transfer,
                ReconfigActor::Source,
                idx,
                &[("incoming", &dest)],
            ) == ProbeVerdict::Crash
            {
                interrupt = Some(TransferInterrupt::Source(p));
                break;
            }
            let ex = PartitionExport::decode(&wire).expect("self-encoded export");
            dest.own_store.import_partition(&ex);
            if self.reconfig_point(
                &mut trace,
                op,
                ReconfigPhase::Transfer,
                ReconfigActor::Destination,
                idx,
                &[("incoming", &dest)],
            ) == ProbeVerdict::Crash
            {
                interrupt = Some(TransferInterrupt::Destination(p));
                break;
            }
        }
        match interrupt {
            Some(TransferInterrupt::Source(_)) => {
                // Half-exported source dies: the abandoned destination is
                // discarded and the position fail-stops; §5.2 recovery
                // rebuilds it from the replication group.
                self.mark_dead(idx);
                return fail(
                    ReconfigFailure::SourceCrashed {
                        phase: ReconfigPhase::Transfer,
                    },
                    trace,
                    Some(seal),
                );
            }
            Some(TransferInterrupt::Destination(_)) => {
                // Half-imported destination dies: discard it and resume
                // the source — old configuration intact, retry at will.
                src.abort_handover();
                return fail(
                    ReconfigFailure::DestinationCrashed {
                        phase: ReconfigPhase::Transfer,
                    },
                    trace,
                    Some(seal),
                );
            }
            None => {}
        }
        // The f replicated groups move as snapshots + MAX vectors, exactly
        // what a recovery fetch would serve.
        for (m, g) in &src.replicated {
            dest.restore_replicated(*m, &g.store.snapshot(), g.max.vector());
        }

        // --- Switch: the commit point ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Switch,
            ReconfigActor::Orchestrator,
            idx,
            &[("incoming", &dest)],
        ) == ProbeVerdict::Crash
        {
            // Before the commit point the operation rolls back.
            src.abort_handover();
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Switch,
                },
                trace,
                Some(seal),
            );
        }
        dest.claims.claim_all();
        self.replicas[idx] = Arc::clone(&dest);
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Switch,
            ReconfigActor::Destination,
            idx,
            &[("outgoing", &src)],
        ) == ProbeVerdict::Crash
        {
            // The new owner died right after the commit point: roll
            // forward — retire the superseded source, fail-stop the
            // position on the *new* configuration, recover per §5.2.
            src.retire();
            self.retired.push(src);
            self.mark_dead(idx);
            return fail(
                ReconfigFailure::DestinationCrashed {
                    phase: ReconfigPhase::Switch,
                },
                trace,
                Some(seal),
            );
        }

        // --- Release ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Release,
            ReconfigActor::Orchestrator,
            idx,
            &[("outgoing", &src)],
        ) == ProbeVerdict::Crash
        {
            // Past the commit point: roll forward. The destination
            // serves; the sealed source is merely never decommissioned —
            // sealed claims are not serviceable, so I5 holds.
            self.retired.push(src);
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Release,
                },
                trace,
                Some(seal),
            );
        }
        #[cfg(feature = "sabotage-skip-release")]
        {
            // Sabotage: the release message is lost and the source's
            // failure-assumption timeout treats the migration as failed —
            // it re-opens its claims and resumes — while the destination
            // has already switched. Two serviceable owners: I5 must fire.
            src.abort_handover();
            self.retired.push(src);
            trace.push(ClaimSample {
                op,
                phase: ReconfigPhase::Release,
                role: ReconfigActor::Source,
                views: self.reconfig_views(&[]),
            });
            return ReconfigRun {
                op,
                position: idx,
                outcome: Ok(ReconfigStats {
                    transferred,
                    partitions: self.replicas[idx].own_store.partitions(),
                }),
                trace,
                seal: Some(seal),
            };
        }
        #[cfg(not(feature = "sabotage-skip-release"))]
        {
            src.retire();
            self.retired.push(src);
            trace.push(ClaimSample {
                op,
                phase: ReconfigPhase::Release,
                role: ReconfigActor::Orchestrator,
                views: self.reconfig_views(&[]),
            });
            self.metrics.journal.record(
                EventSource::Orchestrator,
                EventKind::TrafficResumed {
                    replica: idx as u16,
                },
            );
            ReconfigRun {
                op,
                position: idx,
                outcome: Ok(ReconfigStats {
                    transferred,
                    partitions: self.replicas[idx].own_store.partitions(),
                }),
                trace,
                seal: Some(seal),
            }
        }
    }

    /// Splices `spec` into the live chain at position `pos` (later
    /// middleboxes shift right). See [`Self::splice_out`].
    pub fn splice_in(&mut self, pos: usize, spec: MbSpec) -> ReconfigRun {
        self.splice(ReconfigOp::SpliceIn, pos, Some(spec))
    }

    /// Splices the middlebox at `pos` out of the live chain (later
    /// middleboxes shift left; the result must still satisfy
    /// `len ≥ f + 1`).
    pub fn splice_out(&mut self, pos: usize) -> ReconfigRun {
        self.splice(ReconfigOp::SpliceOut, pos, None)
    }

    /// A splice re-stitches every ring link, so it runs as a phased
    /// whole-chain rebuild with state carryover: quiesce + seal everyone
    /// (prepare), snapshot each instance's committed prefix (transfer),
    /// build the new topology and restore state by middlebox identity,
    /// re-seeding replicated groups from the own snapshots — consistent
    /// at quiescence (switch), then retire the old instances (release).
    /// Undrained egress packets are carried across the swap.
    fn splice(&mut self, op: ReconfigOp, pos: usize, insert: Option<MbSpec>) -> ReconfigRun {
        let mut trace: Vec<ClaimSample> = Vec::new();
        let fail = |outcome: ReconfigFailure, trace: Vec<ClaimSample>| ReconfigRun {
            op,
            position: pos,
            outcome: Err(outcome),
            trace,
            seal: None,
        };

        // --- Prepare ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Prepare,
            ReconfigActor::Orchestrator,
            pos,
            &[],
        ) == ProbeVerdict::Crash
        {
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Prepare,
                },
                trace,
            );
        }
        // Drain the whole chain; a splice only proceeds from a fully
        // live, empty-pipeline state (retryable abort otherwise).
        self.run_to_quiescence(5000);
        let n_old = self.replicas.len();
        if (0..n_old).any(|i| self.is_dead(i)) || self.held() != 0 {
            return fail(ReconfigFailure::NotQuiescent, trace);
        }
        for r in &self.replicas {
            r.begin_handover();
        }

        // --- Transfer ---
        let mut snaps = Vec::with_capacity(n_old);
        for i in 0..n_old {
            let r = Arc::clone(&self.replicas[i]);
            snaps.push((r.own_store.snapshot(), r.own_store.seq_vector()));
            if self.reconfig_point(
                &mut trace,
                op,
                ReconfigPhase::Transfer,
                ReconfigActor::Source,
                i,
                &[],
            ) == ProbeVerdict::Crash
            {
                // Old instance `i` died mid-snapshot: abort the splice
                // (everyone else resumes) and fall back to §5.2 recovery
                // for the dead position on the old topology.
                for (j, other) in self.replicas.iter().enumerate() {
                    if j != i {
                        other.abort_handover();
                    }
                }
                self.mark_dead(i);
                return fail(
                    ReconfigFailure::SourceCrashed {
                        phase: ReconfigPhase::Transfer,
                    },
                    trace,
                );
            }
        }

        // --- Switch: the commit point ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Switch,
            ReconfigActor::Orchestrator,
            pos,
            &[],
        ) == ProbeVerdict::Crash
        {
            // Before the commit point: roll back, old chain resumes.
            for r in &self.replicas {
                r.abort_handover();
            }
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Switch,
                },
                trace,
            );
        }
        // Old position -> new position (None = spliced out).
        let map = |i: usize| -> Option<usize> {
            match op {
                ReconfigOp::SpliceIn => Some(if i < pos { i } else { i + 1 }),
                ReconfigOp::SpliceOut if i == pos => None,
                ReconfigOp::SpliceOut => Some(if i < pos { i } else { i - 1 }),
                _ => unreachable!("splice ops only"),
            }
        };
        let cfg = Arc::clone(&self.replicas[0].cfg);
        let mut specs = cfg.effective_middleboxes();
        match insert {
            Some(spec) => specs.insert(pos, spec),
            None => {
                specs.remove(pos);
            }
        }
        let mut new_cfg = (*cfg).clone();
        new_cfg.middleboxes = specs;
        let fresh = SyncChain::new(new_cfg);
        if let Some(p) = self.probe.lock().as_ref() {
            fresh.install_probe(Arc::clone(p));
        }
        // Carry each surviving instance's committed prefix over, then
        // re-seed the replicated groups from the own snapshots (equal at
        // quiescence: every committed write is in its head's own store).
        let mut transferred = 0usize;
        for (i, (snap, seqs)) in snaps.iter().enumerate() {
            if let Some(ni) = map(i) {
                transferred += snap.byte_size();
                fresh.replicas[ni].own_store.restore(snap);
                fresh.replicas[ni].own_store.restore_seqs(seqs);
            }
        }
        let inv: std::collections::HashMap<usize, usize> = (0..n_old)
            .filter_map(|i| map(i).map(|ni| (ni, i)))
            .collect();
        for r in &fresh.replicas {
            let mboxes: Vec<usize> = r.replicated.keys().copied().collect();
            for m in mboxes {
                if let Some(&oi) = inv.get(&m) {
                    r.restore_replicated(m, &snaps[oi].0, snaps[oi].1.clone());
                }
                // A spliced-in middlebox starts empty: nothing to seed.
            }
        }
        // Swap the topology in; carry undrained egress packets across.
        let old = std::mem::replace(self, fresh);
        self.retired = old.retired;
        while let Ok(pkt) = old.egress.try_recv() {
            let _ = self.egress_tx.send(pkt);
        }
        let old_replicas = old.replicas;
        let extras: Vec<(&'static str, &Arc<ReplicaState>)> =
            old_replicas.iter().map(|r| ("outgoing", r)).collect();
        let dpos = pos.min(self.replicas.len() - 1);
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Switch,
            ReconfigActor::Destination,
            dpos,
            &extras,
        ) == ProbeVerdict::Crash
        {
            // A fresh instance died right at the commit point: roll
            // forward — the restarted driver finishes the release, the
            // dead position is recovered per §5.2 on the new topology.
            for r in &old_replicas {
                r.retire();
            }
            self.retired.extend(old_replicas);
            self.mark_dead(dpos);
            return fail(
                ReconfigFailure::DestinationCrashed {
                    phase: ReconfigPhase::Switch,
                },
                trace,
            );
        }

        // --- Release ---
        if self.reconfig_point(
            &mut trace,
            op,
            ReconfigPhase::Release,
            ReconfigActor::Orchestrator,
            pos,
            &extras,
        ) == ProbeVerdict::Crash
        {
            // Roll forward: the new chain serves; the old instances stay
            // sealed (never serviceable), merely undecommissioned.
            self.retired.extend(old_replicas);
            return fail(
                ReconfigFailure::OrchestratorCrashed {
                    phase: ReconfigPhase::Release,
                },
                trace,
            );
        }
        for r in &old_replicas {
            r.retire();
        }
        self.retired.extend(old_replicas);
        trace.push(ClaimSample {
            op,
            phase: ReconfigPhase::Release,
            role: ReconfigActor::Orchestrator,
            views: self.reconfig_views(&[]),
        });
        let partitions = self.replicas[0].own_store.partitions() * n_old;
        ReconfigRun {
            op,
            position: pos,
            outcome: Ok(ReconfigStats {
                transferred,
                partitions,
            }),
            trace,
            seal: None,
        }
    }

    /// Returns a handle to the chain's egress (same API as
    /// [`FtcChain::egress`](crate::FtcChain::egress)).
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress.clone())
    }

    /// Packets currently withheld by the buffer.
    pub fn held(&self) -> usize {
        self.buffer.held_len()
    }

    /// Every instance's current [`ClaimView`] — the wired chain replicas
    /// plus all retired instances. The reconfiguration model checker folds
    /// this at final quiescence into the I5 completion condition: exactly
    /// one serviceable owner per `(position, partition)`.
    pub fn claim_views(&self) -> Vec<ClaimView> {
        self.reconfig_views(&[])
    }
}

/// Where, relative to the victim's protocol steps, a crash fires.
///
/// The step phases mirror [`crate::ProbePoint`]; `Quiesced` is the classic
/// integration-test case ("kill server N between packets").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// Fail-stop while idle, between packets.
    Quiesced,
    /// §6(a): the victim's transaction committed but its log never left.
    PrePiggyback,
    /// §6(b): the outgoing message was assembled but never sent.
    PostApplyPreForward,
    /// §6(c): the frame was sent, then the server died.
    PostForward,
    /// The *replacement* dies mid-state-fetch; recovery restarts fresh.
    DuringRecovery,
    /// A planned-reconfiguration crash ([`crate::reconfig`]): fail-stop
    /// `role` at its `trigger`-th observation of the `(op, phase)` probe
    /// point. The victim position is the [`CrashPoint::victim`] field, as
    /// for every other phase — this is the one enumeration shared by the
    /// integration-test kill skeletons and the `ftc-audit`
    /// reconfiguration model checker.
    Reconfig {
        /// The operation under way when the crash fires.
        op: crate::reconfig::ReconfigOp,
        /// The handshake phase to crash in.
        phase: crate::reconfig::ReconfigPhase,
        /// The participant to kill.
        role: crate::reconfig::ReconfigActor,
    },
}

/// One crash in a [`CrashSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Ring position of the replica to kill.
    pub victim: usize,
    /// When, within the victim's processing, the crash fires.
    pub phase: CrashPhase,
    /// For step phases: fire at the victim's `trigger`-th observation of
    /// the matching probe point (0-based). Ignored for [`CrashPhase::Quiesced`].
    pub trigger: usize,
}

/// What a [`CrashSchedule`] runs against: any chain that can take traffic,
/// settle, and execute a crash+recovery. Implemented by the integration
/// tests over the threaded [`crate::chain::FtcChain`]/orchestrator stack
/// and reused (as the schedule *vocabulary*) by the `ftc-audit` protocol
/// model checker's step-granular executor.
pub trait CrashTarget {
    /// Injects `n` fresh packets.
    fn inject(&mut self, n: usize);
    /// Runs until quiescent; returns packets released since the last call.
    fn settle(&mut self) -> usize;
    /// Executes one crash (and its recovery). Targets without step-granular
    /// control honor [`CrashPhase::Quiesced`] only and must panic on phases
    /// they cannot express rather than silently reinterpreting them.
    fn crash(&mut self, point: &CrashPoint);
}

/// Release counts observed by [`CrashSchedule::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Packets released by the warm-up workload, before any crash.
    pub released_before: usize,
    /// Packets released by the post-crash workload (traffic resumed).
    pub released_after: usize,
}

/// The shared "warm up → crash server(s) → assert traffic resumes"
/// skeleton of `tests/failover.rs` / `tests/failure_under_load.rs`, also
/// the schedule descriptor the protocol model checker enumerates.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    warm: usize,
    crashes: Vec<CrashPoint>,
    post: usize,
    label: String,
}

impl CrashSchedule {
    /// Empty schedule (no traffic, no crashes).
    pub fn new() -> CrashSchedule {
        CrashSchedule::default()
    }

    /// Injects `n` packets and settles before the first crash.
    pub fn warm(mut self, n: usize) -> CrashSchedule {
        self.warm = n;
        self
    }

    /// Adds a quiesced kill of `victim` (the classic integration case).
    pub fn kill(mut self, victim: usize) -> CrashSchedule {
        self.crashes.push(CrashPoint {
            victim,
            phase: CrashPhase::Quiesced,
            trigger: 0,
        });
        self
    }

    /// Adds a step-granular crash of `victim` at its `trigger`-th `phase`
    /// observation.
    pub fn crash_at(mut self, victim: usize, phase: CrashPhase, trigger: usize) -> CrashSchedule {
        self.crashes.push(CrashPoint {
            victim,
            phase,
            trigger,
        });
        self
    }

    /// Injects `n` packets after the crashes (the "traffic resumes" leg).
    pub fn post(mut self, n: usize) -> CrashSchedule {
        self.post = n;
        self
    }

    /// Names the schedule (witness reports and test diagnostics).
    pub fn label(mut self, label: impl Into<String>) -> CrashSchedule {
        self.label = label.into();
        self
    }

    /// The schedule's name.
    pub fn name(&self) -> &str {
        &self.label
    }

    /// The crash points, in execution order.
    pub fn crashes(&self) -> &[CrashPoint] {
        &self.crashes
    }

    /// Warm-up packet count.
    pub fn warm_count(&self) -> usize {
        self.warm
    }

    /// Post-crash packet count.
    pub fn post_count(&self) -> usize {
        self.post
    }

    /// Runs the schedule: warm up, settle, crash each point in order,
    /// inject the post workload, settle again.
    pub fn run(&self, target: &mut dyn CrashTarget) -> CrashOutcome {
        target.inject(self.warm);
        let released_before = target.settle();
        for point in &self.crashes {
            target.crash(point);
        }
        target.inject(self.post);
        let released_after = target.settle();
        CrashOutcome {
            released_before,
            released_after,
        }
    }
}

/// [`CrashTarget`] over a [`SyncChain`]: deterministic, quiesced-kill
/// execution for tests that only need the classic schedule shapes. (The
/// protocol model checker drives `SyncChain` directly for step-granular
/// phases.)
pub struct SyncCrashTarget {
    /// The underlying chain.
    pub chain: SyncChain,
    next_ident: u16,
    settle_rounds: usize,
}

impl SyncCrashTarget {
    /// Wraps `chain`; `settle_rounds` bounds each quiescence run.
    pub fn new(chain: SyncChain, settle_rounds: usize) -> SyncCrashTarget {
        SyncCrashTarget {
            chain,
            next_ident: 0,
            settle_rounds,
        }
    }
}

impl CrashTarget for SyncCrashTarget {
    fn inject(&mut self, n: usize) {
        for _ in 0..n {
            self.next_ident = self.next_ident.wrapping_add(1);
            let pkt = ftc_packet::builder::UdpPacketBuilder::new()
                .ident(self.next_ident)
                .build();
            self.chain.inject(pkt);
        }
    }

    fn settle(&mut self) -> usize {
        self.chain.run_to_quiescence(self.settle_rounds);
        self.chain.egress().drain().len()
    }

    fn crash(&mut self, point: &CrashPoint) {
        assert_eq!(
            point.phase,
            CrashPhase::Quiesced,
            "SyncCrashTarget only executes quiesced kills; step-granular \
             phases belong to the model checker's executor"
        );
        self.chain.fail_and_recover(point.victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(i: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 2, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 3, 0, 1), 80)
            .ident(i)
            .build()
    }

    #[test]
    fn sync_chain_releases_everything_round_robin() {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..10 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        let got = chain.egress().drain();
        assert_eq!(got.len(), 10);
        assert_eq!(chain.held(), 0);
        for r in &chain.replicas {
            assert_eq!(r.own_store.peek_u64(b"mon:packets:g0"), Some(10));
        }
        // Full ring replication at quiescence.
        for i in 0..3 {
            let succ = (i + 1) % 3;
            assert_eq!(
                chain.replicas[succ].replicated[&i]
                    .store
                    .peek_u64(b"mon:packets:g0"),
                Some(10)
            );
        }
    }

    #[test]
    fn adversarial_schedule_starving_one_replica_still_converges() {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..5 {
            chain.inject(pkt(i));
        }
        // Step only replica 0 for a while (1 and 2 starve)…
        for _ in 0..50 {
            chain.step(Step::Replica(0));
        }
        assert!(chain.egress().drain().is_empty(), "nothing can release yet");
        // …then let everything run.
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 5);
    }

    #[test]
    fn crash_schedule_runs_quiesced_kill_on_sync_chain() {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        let mut target = SyncCrashTarget::new(chain, 2000);
        let outcome = CrashSchedule::new()
            .label("kill r1 quiesced")
            .warm(20)
            .kill(1)
            .post(10)
            .run(&mut target);
        assert_eq!(outcome.released_before, 20);
        assert_eq!(outcome.released_after, 10);
        for r in &target.chain.replicas {
            assert_eq!(r.own_store.peek_u64(b"mon:packets:g0"), Some(30));
        }
    }

    #[test]
    fn failed_recovery_leaves_victim_dead_and_retry_succeeds() {
        let mut chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..5 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 5);
        // First attempt: every source refuses (simulated mid-fetch deaths).
        let err = chain.try_fail_and_recover(1, &|_, _| false).unwrap_err();
        assert!(matches!(
            err,
            crate::recovery::RecoveryError::NoSource { .. }
        ));
        assert!(chain.is_dead(1), "failed recovery leaves the victim dead");
        assert!(!chain.step(Step::Replica(1)), "dead replicas do not step");
        // Retry with sources back: a fresh replacement is built and rewired.
        chain.try_fail_and_recover(1, &|_, _| true).unwrap();
        assert!(!chain.is_dead(1));
        for i in 5..10 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 5, "traffic resumed");
        assert_eq!(
            chain.replicas[1].own_store.peek_u64(b"mon:packets:g0"),
            Some(10)
        );
    }

    #[test]
    fn clean_migrate_preserves_committed_prefix_and_traffic() {
        let mut chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..10 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 10);
        let run = chain.migrate_mbox(1);
        let stats = run.outcome.expect("clean handover succeeds");
        assert!(stats.transferred > 0);
        // I6: the destination holds exactly the sealed committed prefix.
        let seal = run.seal.expect("sealed");
        assert_eq!(chain.replicas[1].own_store.snapshot(), seal.snapshot);
        assert_eq!(chain.replicas[1].own_store.seq_vector(), seal.seqs);
        // I5 at completion: exactly one serviceable owner per partition.
        for sample in &run.trace {
            for p in 0..chain.replicas[1].own_store.partitions() as u16 {
                assert!(sample.serviceable_count(1, p) <= 1, "{sample:?}");
            }
        }
        let last = run.trace.last().unwrap();
        assert_eq!(last.serviceable_count(1, 0), 1);
        // The new instance serves: traffic flows and state continues.
        for i in 10..20 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 10);
        assert_eq!(
            chain.replicas[1].own_store.peek_u64(b"mon:packets:g0"),
            Some(20)
        );
    }

    #[test]
    fn splice_in_then_out_round_trips_the_chain() {
        let mut chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..8 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 8);
        let run = chain.splice_in(1, MbSpec::Monitor { sharing_level: 1 });
        run.outcome.expect("clean splice-in succeeds");
        assert_eq!(chain.replicas.len(), 4);
        // Carried state: the old position-1 monitor now sits at 2.
        assert_eq!(
            chain.replicas[2].own_store.peek_u64(b"mon:packets:g0"),
            Some(8)
        );
        assert_eq!(
            chain.replicas[1].own_store.peek_u64(b"mon:packets:g0"),
            None
        );
        for i in 8..14 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(2000);
        assert_eq!(chain.egress().drain().len(), 6);
        assert_eq!(
            chain.replicas[1].own_store.peek_u64(b"mon:packets:g0"),
            Some(6),
            "spliced-in middlebox counts from zero"
        );
        assert_eq!(
            chain.replicas[2].own_store.peek_u64(b"mon:packets:g0"),
            Some(14)
        );
        let run = chain.splice_out(1);
        run.outcome.expect("clean splice-out succeeds");
        assert_eq!(chain.replicas.len(), 3);
        for i in 14..20 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(2000);
        assert_eq!(chain.egress().drain().len(), 6);
        assert_eq!(
            chain.replicas[1].own_store.peek_u64(b"mon:packets:g0"),
            Some(20)
        );
    }

    #[test]
    fn f0_chain_needs_no_feedback() {
        let chain = SyncChain::new(
            ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 2]).with_f(0),
        );
        chain.inject(pkt(1));
        chain.run_to_quiescence(100);
        assert_eq!(chain.egress().drain().len(), 1);
        assert_eq!(
            chain
                .metrics
                .logs_applied
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }
}
