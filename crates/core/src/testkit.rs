//! A deterministic, single-threaded chain harness for protocol testing.
//!
//! The production runtime ([`crate::chain::FtcChain`]) runs replicas on
//! real threads, which makes interleavings uncontrollable. [`SyncChain`]
//! wires the *same* protocol state objects ([`crate::replica::ReplicaState`],
//! [`crate::forwarder::ForwarderState`], [`crate::buffer::BufferState`])
//! with synchronous stepping instead of threads, so property-based tests
//! can drive arbitrary schedules — "step replica 2, then the buffer, then
//! replica 0 twice…" — and check protocol invariants under every explored
//! interleaving, deterministically.

use crate::buffer::BufferState;
use crate::chain::Egress;
use crate::config::ChainConfig;
use crate::control::{InPort, OutPort};
use crate::forwarder::ForwarderState;
use crate::metrics::ChainMetrics;
use crate::replica::ReplicaState;
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver};
use ftc_net::nic::Nic;
use ftc_net::{reliable_pair, LinkConfig};
use ftc_packet::Packet;
use std::sync::Arc;
use std::time::Duration;

/// Components that can be stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Move frames from replica `i`'s in-port through its NIC and process
    /// one queued frame.
    Replica(usize),
    /// Deliver pending feedback to the forwarder.
    ForwarderFeedback,
    /// Fire the forwarder's idle timer (propagating packet).
    ForwarderTimer,
    /// Process one frame at the buffer.
    Buffer,
    /// Fire the buffer's resend timer.
    BufferTimer,
}

/// A synchronous, deterministic FTC chain.
pub struct SyncChain {
    /// The chain's replicas (single worker each).
    pub replicas: Vec<Arc<ReplicaState>>,
    /// Chain-wide metrics (shared with the components).
    pub metrics: Arc<ChainMetrics>,
    forwarder: Arc<ForwarderState>,
    buffer: Arc<BufferState>,
    nics: Vec<Arc<Nic>>,
    worker_queues: Vec<Receiver<BytesMut>>,
    in_ports: Vec<Arc<InPort>>,
    buffer_in: Arc<InPort>,
    feedback_in: Arc<InPort>,
    egress: Receiver<Packet>,
}

impl SyncChain {
    /// Builds a synchronous chain for `cfg` (worker count forced to 1; all
    /// links ideal — loss/reorder schedules are expressed through `Step`
    /// ordering instead).
    pub fn new(cfg: ChainConfig) -> SyncChain {
        let cfg = cfg.with_workers(1).with_link(LinkConfig::ideal());
        cfg.validate();
        let cfg = Arc::new(cfg);
        let specs = cfg.effective_middleboxes();
        let n = specs.len();
        let metrics = Arc::new(ChainMetrics::default());

        let mut in_ports: Vec<Arc<InPort>> = Vec::with_capacity(n);
        let mut out_ports: Vec<Arc<OutPort>> = Vec::with_capacity(n);
        in_ports.push(Arc::new(InPort::new(None)));
        for _ in 0..n - 1 {
            let (tx, rx) = reliable_pair(LinkConfig::ideal());
            out_ports.push(Arc::new(OutPort::new(Some(tx))));
            in_ports.push(Arc::new(InPort::new(Some(rx))));
        }
        let (tail_tx, buffer_rx) = reliable_pair(LinkConfig::ideal());
        out_ports.push(Arc::new(OutPort::new(Some(tail_tx))));
        let buffer_in = Arc::new(InPort::new(Some(buffer_rx)));
        let (fb_tx, fb_rx) = reliable_pair(LinkConfig::ideal());
        let feedback_out = Arc::new(OutPort::new(Some(fb_tx)));
        let feedback_in = Arc::new(InPort::new(Some(fb_rx)));

        let (egress_tx, egress_rx) = channel::unbounded();
        let forwarder = ForwarderState::new(Arc::clone(&metrics));
        let buffer = BufferState::new(cfg.ring(), egress_tx, feedback_out, Arc::clone(&metrics));

        let mut replicas = Vec::with_capacity(n);
        let mut nics = Vec::with_capacity(n);
        let mut worker_queues = Vec::with_capacity(n);
        for (i, spec) in specs.iter().enumerate() {
            let state = ReplicaState::new(
                i,
                Arc::clone(&cfg),
                spec.build(),
                Arc::clone(&out_ports[i]),
                Arc::clone(&metrics),
            );
            let mut nic = Nic::new(1, cfg.nic_queue_depth);
            worker_queues.push(nic.take_queue(0));
            nics.push(Arc::new(nic));
            replicas.push(state);
        }

        SyncChain {
            replicas,
            metrics,
            forwarder,
            buffer,
            nics,
            worker_queues,
            in_ports,
            buffer_in,
            feedback_in,
            egress: egress_rx,
        }
    }

    /// Injects a packet at the forwarder (processed immediately into the
    /// first replica's NIC queue, like the ingress thread would).
    pub fn inject(&self, pkt: Packet) {
        self.forwarder
            .handle_ingress(pkt.into_bytes(), &self.nics[0]);
    }

    /// Executes one scheduling step. Returns true if any work happened.
    pub fn step(&self, step: Step) -> bool {
        match step {
            Step::Replica(i) => {
                let i = i % self.replicas.len();
                let mut progressed = false;
                // Link → NIC (one frame).
                if let Some(frame) = self.in_ports[i].recv_timeout(Duration::ZERO) {
                    self.nics[i].dispatch(frame);
                    progressed = true;
                }
                // NIC queue → protocol (one frame).
                if let Ok(frame) = self.worker_queues[i].try_recv() {
                    self.replicas[i].handle_frame(0, frame);
                    progressed = true;
                }
                progressed
            }
            Step::ForwarderFeedback => match self.feedback_in.recv_timeout(Duration::ZERO) {
                Some(frame) => {
                    self.forwarder.ingest_feedback(&frame);
                    true
                }
                None => false,
            },
            Step::ForwarderTimer => self.forwarder.emit_propagating(&self.nics[0]),
            Step::Buffer => match self.buffer_in.recv_timeout(Duration::ZERO) {
                Some(frame) => {
                    self.buffer.handle_frame(frame);
                    true
                }
                None => false,
            },
            Step::BufferTimer => {
                self.buffer.tick();
                true
            }
        }
    }

    /// Round-robin steps everything until nothing progresses and all
    /// injected packets are accounted for, or `max_rounds` is exhausted.
    /// Timer steps fire once per idle round, mirroring the real timers.
    pub fn run_to_quiescence(&self, max_rounds: usize) {
        let n = self.replicas.len();
        for _ in 0..max_rounds {
            let mut progressed = false;
            for i in 0..n {
                while self.step(Step::Replica(i)) {
                    progressed = true;
                }
            }
            progressed |= self.step(Step::Buffer);
            while self.step(Step::Buffer) {}
            progressed |= self.step(Step::ForwarderFeedback);
            while self.step(Step::ForwarderFeedback) {}
            if !progressed {
                // Idle: fire the timers once; if that creates no new work
                // either, the chain is quiescent.
                self.step(Step::BufferTimer);
                let timer_work = self.step(Step::ForwarderTimer);
                let more = self.step(Step::Buffer) || self.step(Step::Replica(0));
                if !timer_work && !more {
                    return;
                }
            }
        }
    }

    /// Deterministically fail-stops replica `idx` and rebuilds it via the
    /// §4.1/§5.2 recovery procedure, fetching state synchronously from the
    /// surviving group members. In-flight frames queued at the dead replica
    /// are discarded (fail-stop loses them); the wrapped-log resend path
    /// re-replicates whatever the buffer still owes.
    pub fn fail_and_recover(&mut self, idx: usize) {
        use crate::journal::{EventKind, EventSource};
        use crate::recovery::recover_replica_state;
        let n = self.replicas.len();
        let cfg = Arc::clone(&self.replicas[idx].cfg);
        let spec = cfg.effective_middleboxes()[idx].clone();
        self.metrics.journal.record(
            EventSource::Orchestrator,
            EventKind::RespawnIssued {
                replica: idx as u16,
            },
        );

        // Fail-stop: drop queued frames at the victim.
        while self.worker_queues[idx].try_recv().is_ok() {}
        while self.in_ports[idx].recv_timeout(Duration::ZERO).is_some() {}

        // Fresh replacement.
        let state = ReplicaState::new(
            idx,
            cfg,
            spec.build(),
            Arc::new(OutPort::new(None)),
            Arc::clone(&self.metrics),
        );

        // Synchronous state fetch from live replicas, following the same
        // source-selection rule the orchestrator uses.
        let replicas = &self.replicas;
        let fetcher = |src: usize, mbox: usize| {
            let r = &replicas[src];
            r.discard_parked();
            if mbox == src {
                Some((r.own_store.snapshot(), r.own_store.seq_vector()))
            } else {
                r.replicated
                    .get(&mbox)
                    .map(|g| (g.store.snapshot(), g.max.vector()))
            }
        };
        recover_replica_state(&state, &fetcher).expect("sync recovery");

        // Rewire: predecessor → new replica → successor (or buffer).
        let in_port = Arc::new(InPort::new(None));
        if idx > 0 {
            let (tx, rx) = reliable_pair(LinkConfig::ideal());
            in_port.install(rx);
            self.replicas[idx - 1].out.install(tx);
        }
        if idx < n - 1 {
            let (tx, rx) = reliable_pair(LinkConfig::ideal());
            state.out.install(tx);
            self.in_ports[idx + 1].install(rx);
        } else {
            let (tx, rx) = reliable_pair(LinkConfig::ideal());
            state.out.install(tx);
            self.buffer_in.install(rx);
        }
        let mut nic = Nic::new(1, state.cfg.nic_queue_depth);
        self.worker_queues[idx] = nic.take_queue(0);
        self.nics[idx] = Arc::new(nic);
        self.in_ports[idx] = in_port;
        self.replicas[idx] = state;
        self.metrics.journal.record(
            EventSource::Orchestrator,
            EventKind::TrafficResumed {
                replica: idx as u16,
            },
        );
    }

    /// Returns a handle to the chain's egress (same API as
    /// [`FtcChain::egress`](crate::FtcChain::egress)).
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress.clone())
    }

    /// Packets currently withheld by the buffer.
    pub fn held(&self) -> usize {
        self.buffer.held_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(i: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 2, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 3, 0, 1), 80)
            .ident(i)
            .build()
    }

    #[test]
    fn sync_chain_releases_everything_round_robin() {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..10 {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(1000);
        let got = chain.egress().drain();
        assert_eq!(got.len(), 10);
        assert_eq!(chain.held(), 0);
        for r in &chain.replicas {
            assert_eq!(r.own_store.peek_u64(b"mon:packets:g0"), Some(10));
        }
        // Full ring replication at quiescence.
        for i in 0..3 {
            let succ = (i + 1) % 3;
            assert_eq!(
                chain.replicas[succ].replicated[&i]
                    .store
                    .peek_u64(b"mon:packets:g0"),
                Some(10)
            );
        }
    }

    #[test]
    fn adversarial_schedule_starving_one_replica_still_converges() {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        for i in 0..5 {
            chain.inject(pkt(i));
        }
        // Step only replica 0 for a while (1 and 2 starve)…
        for _ in 0..50 {
            chain.step(Step::Replica(0));
        }
        assert!(chain.egress().drain().is_empty(), "nothing can release yet");
        // …then let everything run.
        chain.run_to_quiescence(1000);
        assert_eq!(chain.egress().drain().len(), 5);
    }

    #[test]
    fn f0_chain_needs_no_feedback() {
        let chain = SyncChain::new(
            ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 2]).with_f(0),
        );
        chain.inject(pkt(1));
        chain.run_to_quiescence(100);
        assert_eq!(chain.egress().drain().len(), 1);
        assert_eq!(
            chain
                .metrics
                .logs_applied
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }
}
