//! The per-server FTC replica runtime.
//!
//! Each server of the chain hosts one replica. A replica is simultaneously
//! (paper §5): the *head* of its own middlebox's replication group (it runs
//! packet transactions and emits piggyback logs), a *mid* or *tail* replica
//! for the `f` preceding middleboxes (it applies their piggybacked logs to
//! local state stores, in dependency-vector order), and — when it is a tail
//! — the node that strips a log and vouches for it with a commit vector.

use crate::config::{ChainConfig, RingMath};
use crate::control::{CtrlReq, CtrlResp, CtrlServer, InPort, OutPort};
use crate::journal::{EventKind, EventSource};
use crate::metrics::ChainMetrics;
use crate::probe::{ProbePoint, ProbeSlot, ProbeVerdict};
use bytes::BytesMut;
use ftc_mbox::{Action, Middlebox, ProcCtx};
use ftc_net::nic::Nic;
use ftc_net::server::AliveToken;
use ftc_packet::ether::MacAddr;
use ftc_packet::piggyback::{MboxId, PiggybackLog, PiggybackMessage};
use ftc_packet::{packet, Packet};
use ftc_stm::{ClaimTable, MaxVector, StateBackend, StateBackendExt};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replicated state this replica maintains for one predecessor middlebox.
pub struct ReplGroup {
    /// The replica copy of the middlebox's store.
    pub store: Arc<dyn StateBackend>,
    /// Apply bookkeeping (the `MAX` dependency vector).
    pub max: Arc<MaxVector>,
}

/// A packet whose processing is suspended on an out-of-order log.
///
/// A message may carry many logs (the forwarder batches buffer feedback in
/// whatever order the buffer saw it), and a log later in the message may be
/// the *dependency* of an earlier one — so logs are settled in any order:
/// `remaining` tracks the indices still unapplied, and the packet finishes
/// only when it is empty, preserving the apply-before-forward rule.
struct PendingPacket {
    pkt: Packet,
    msg: PiggybackMessage,
    /// Indices into `msg.logs` not yet applied (or found stale/irrelevant).
    remaining: Vec<usize>,
}

impl PendingPacket {
    fn new(pkt: Packet, msg: PiggybackMessage) -> PendingPacket {
        let remaining = (0..msg.logs.len()).collect();
        PendingPacket {
            pkt,
            msg,
            remaining,
        }
    }

    /// Remaining-work signature, used to deduplicate parked propagating
    /// packets (the buffer periodically resends uncommitted logs; identical
    /// resends blocked on the same dependency are redundant).
    fn signature(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &li in &self.remaining {
            let log = &self.msg.logs[li];
            log.mbox.0.hash(&mut h);
            log.deps.entries().hash(&mut h);
        }
        h.finish()
    }
}

/// Wake key: a parked packet waits for `(mbox, partition)`'s applied
/// counter to reach `seq`.
type WakeKey = (usize, u16, u64);

/// Recovery quiescing state (§4.1), kept under one mutex so the
/// pause-check / busy-claim step is atomic: `pause()` can never observe an
/// idle worker that is about to process a frame.
#[derive(Default)]
struct QuiesceState {
    /// While set, workers stop admitting packets so the state this replica
    /// serves as a recovery source stays frozen until the orchestrator
    /// reroutes and resumes it.
    paused: bool,
    /// Workers currently inside `handle_frame` (drained before snapshots).
    busy: usize,
}

/// Indexed parking lot: all apply bookkeeping happens under this one lock,
/// which makes the check-then-park step atomic with respect to concurrent
/// applies (no lost wakeups) at the cost of serializing log application per
/// replica. Cross-packet application order remains governed purely by the
/// dependency vectors.
#[derive(Default)]
struct ParkingLot {
    by_key: HashMap<WakeKey, Vec<PendingPacket>>,
    count: usize,
}

/// Shared state of one replica's data-plane threads.
pub struct ReplicaState {
    /// Position of this replica in the (effective) chain.
    pub idx: usize,
    /// Ring arithmetic for the chain.
    pub ring: RingMath,
    /// Chain configuration.
    pub cfg: Arc<ChainConfig>,
    /// The middlebox co-located with this replica.
    pub mbox: Arc<dyn Middlebox>,
    /// The middlebox's own (head) store, on the engine the chain
    /// configuration selects.
    pub own_store: Arc<dyn StateBackend>,
    /// Replicated stores for the `f` preceding middleboxes, by position.
    pub replicated: HashMap<usize, ReplGroup>,
    /// Outgoing data-plane port (to the successor replica or the buffer).
    pub out: Arc<OutPort>,
    /// Parked packets awaiting dependencies, indexed by blocking key.
    parked: Mutex<ParkingLot>,
    /// Recovery quiescing (§4.1); see [`QuiesceState`].
    quiesce: Mutex<QuiesceState>,
    /// Signals quiesce transitions: `busy` dropping to zero (pause waits on
    /// it) and `paused` clearing (quiesced workers wait on it).
    quiesce_cv: Condvar,
    /// Chain-wide metrics.
    pub metrics: Arc<ChainMetrics>,
    /// Model-checker hook: reports the protocol steps of [`Self::finish`]
    /// and honors crash verdicts at step granularity.
    pub probe: ProbeSlot,
    /// This instance's *local* view of which of its middlebox's flow
    /// partitions it owns ([`crate::reconfig`]). Deliberately not shared:
    /// divergence between instances' views under crashes is exactly what
    /// the I5 single-owner invariant observes. A fresh instance claims
    /// everything (normal operation and §5.2 replacements own their
    /// position outright); planned handovers seal/claim through
    /// [`Self::begin_handover`] and friends.
    pub claims: ClaimTable,
}

impl ReplicaState {
    /// Builds the state shared by a replica's threads.
    pub fn new(
        idx: usize,
        cfg: Arc<ChainConfig>,
        mbox: Arc<dyn Middlebox>,
        out: Arc<OutPort>,
        metrics: Arc<ChainMetrics>,
    ) -> Arc<ReplicaState> {
        let ring = cfg.ring();
        let partitions = cfg.partitions;
        let own_store = cfg.engine.build(partitions);
        let mut replicated = HashMap::new();
        for m in ring.replicated_by(idx) {
            replicated.insert(
                m,
                ReplGroup {
                    store: cfg.engine.build(cfg.partitions),
                    max: Arc::new(MaxVector::new(cfg.partitions)),
                },
            );
        }
        Arc::new(ReplicaState {
            idx,
            ring,
            cfg,
            mbox,
            own_store,
            replicated,
            out,
            parked: Mutex::new(ParkingLot::default()),
            quiesce: Mutex::new(QuiesceState::default()),
            quiesce_cv: Condvar::new(),
            metrics,
            probe: ProbeSlot::new(),
            claims: ClaimTable::new(partitions, true),
        })
    }

    /// True while the replica is quiesced as a recovery source.
    pub fn is_paused(&self) -> bool {
        self.quiesce.lock().paused
    }

    /// Quiesces packet processing and waits (bounded, condvar-signalled) for
    /// in-flight worker transactions to finish, so served snapshots are
    /// stable. The budget is generous: on a contended host a wound-wait
    /// retry storm can hold a worker busy for many milliseconds, and serving
    /// a snapshot that races a straggler commit would hand the replacement a
    /// state/sequence gap it can never fill.
    pub fn pause(&self) {
        let mut q = self.quiesce.lock();
        q.paused = true;
        let deadline = Instant::now() + Duration::from_secs(2);
        while q.busy > 0 {
            if self.quiesce_cv.wait_until(&mut q, deadline).timed_out() {
                // A worker still busy past the budget means a pathologically
                // stuck transaction; proceed best-effort rather than wedging
                // recovery.
                break;
            }
        }
    }

    /// Resumes packet processing after rerouting.
    pub fn resume(&self) {
        let mut q = self.quiesce.lock();
        q.paused = false;
        self.quiesce_cv.notify_all();
    }

    /// Bounded wait while quiesced, without pulling work: returns as soon as
    /// the replica resumes or `slice` elapses, whichever is first. Callers
    /// (the rx/worker loops) re-check liveness between slices.
    pub fn wait_while_paused(&self, slice: Duration) {
        let mut q = self.quiesce.lock();
        if q.paused {
            let deadline = Instant::now() + slice;
            while q.paused {
                if self.quiesce_cv.wait_until(&mut q, deadline).timed_out() {
                    break;
                }
            }
        }
    }

    /// Claims a busy slot for processing one frame. The claim and the pause
    /// check happen under one lock, so [`Self::pause`] can never observe an
    /// idle worker that is about to process (the snapshot-vs-straggler
    /// race). While quiesced the caller's frame is held — its piggyback logs
    /// must not be lost — and the claim blocks in bounded condvar waits,
    /// re-checking `keep_waiting` between them; returns `false` (no slot
    /// claimed) when `keep_waiting` reports shutdown.
    fn claim_busy(&self, keep_waiting: impl Fn() -> bool) -> bool {
        let mut q = self.quiesce.lock();
        while q.paused {
            let deadline = Instant::now() + Duration::from_millis(1);
            if self.quiesce_cv.wait_until(&mut q, deadline).timed_out() && !keep_waiting() {
                return false;
            }
        }
        q.busy += 1;
        true
    }

    /// Releases a busy slot claimed with [`Self::claim_busy`], waking a
    /// pending [`Self::pause`] when the last worker drains.
    fn release_busy(&self) {
        let mut q = self.quiesce.lock();
        q.busy -= 1;
        if q.busy == 0 {
            self.quiesce_cv.notify_all();
        }
    }

    /// Entry point for one frame from a NIC queue.
    pub fn handle_frame(&self, worker: usize, frame: BytesMut) {
        let Ok(mut pkt) = Packet::from_frame(frame) else {
            return; // unparseable: drop
        };
        let msg = match pkt.detach_piggyback() {
            Ok(Some(m)) => m,
            Ok(None) => PiggybackMessage::default(),
            Err(_) => return, // corrupt trailer: drop
        };
        // Work stack: applying a log may wake parked packets, which may in
        // turn wake more; process iteratively to bound stack depth.
        let mut work = vec![PendingPacket::new(pkt, msg)];
        while let Some(pp) = work.pop() {
            if let Some(done) = self.advance(&mut work, pp) {
                if !self.finish(worker, done) {
                    // A probe crashed the replica mid-step: fail-stop here,
                    // abandoning the rest of the work stack.
                    return;
                }
            }
        }
    }

    /// Settles one log under the parking-lot lock: applies it if ready,
    /// waking any packets the apply unblocks (pushed onto `work`).
    fn settle_log(
        &self,
        work: &mut Vec<PendingPacket>,
        pp: &PendingPacket,
        li: usize,
    ) -> ftc_stm::TryApply {
        let log = &pp.msg.logs[li];
        let m = log.mbox.0 as usize;
        let Some(group) = self.replicated.get(&m) else {
            // Not ours to replicate (pass-through log).
            return ftc_stm::TryApply::Stale;
        };
        let t0 = Instant::now();
        // One lock for check+apply+wake: concurrent appliers cannot slip
        // between a verdict and the bookkeeping (no lost wakeups).
        let mut lot = self.parked.lock();
        let verdict = group
            .max
            .try_apply_detailed(&log.deps, &log.writes, &*group.store);
        match &verdict {
            ftc_stm::TryApply::Applied { new_max } => {
                for &(p, v) in new_max {
                    if let Some(mut woken) = lot.by_key.remove(&(m, p, v)) {
                        lot.count -= woken.len();
                        work.append(&mut woken);
                    }
                }
                drop(lot);
                self.metrics.logs_applied.fetch_add(1, Ordering::Relaxed);
                self.metrics.t_apply.record(t0.elapsed());
                self.journal_log(EventKind::LogApplied { mbox: m as u16 });
            }
            ftc_stm::TryApply::Stale => {
                drop(lot);
                self.metrics.logs_stale.fetch_add(1, Ordering::Relaxed);
                self.journal_log(EventKind::LogStale { mbox: m as u16 });
            }
            ftc_stm::TryApply::Blocked { .. } => {}
        }
        verdict
    }

    /// Applies the packet's remaining relevant logs, in any settleable
    /// order. Returns the packet when every log is settled (ready for
    /// [`Self::finish`]); parks it and returns `None` while a dependency is
    /// missing. Woken packets are pushed onto `work`.
    fn advance(
        &self,
        work: &mut Vec<PendingPacket>,
        mut pp: PendingPacket,
    ) -> Option<PendingPacket> {
        loop {
            // Sweep all remaining logs; within one message, a later log may
            // unblock an earlier one, so iterate to a fixpoint.
            let mut progressed = false;
            let mut i = 0;
            while i < pp.remaining.len() {
                match self.settle_log(work, &pp, pp.remaining[i]) {
                    ftc_stm::TryApply::Applied { .. } | ftc_stm::TryApply::Stale => {
                        pp.remaining.swap_remove(i);
                        progressed = true;
                    }
                    ftc_stm::TryApply::Blocked { .. } => i += 1,
                }
            }
            if pp.remaining.is_empty() {
                return Some(pp);
            }
            if progressed {
                continue;
            }
            // Nothing applicable: park atomically on a re-verified blocker
            // (the re-check under the lot lock closes the window in which a
            // concurrent apply could have already satisfied it).
            let li = pp.remaining[0];
            let log = &pp.msg.logs[li];
            let m = log.mbox.0 as usize;
            let group = self.replicated.get(&m).expect("blocked implies replicated");
            let mut lot = self.parked.lock();
            match group
                .max
                .try_apply_detailed(&log.deps, &log.writes, &*group.store)
            {
                ftc_stm::TryApply::Applied { new_max } => {
                    for (p, v) in new_max {
                        if let Some(mut woken) = lot.by_key.remove(&(m, p, v)) {
                            lot.count -= woken.len();
                            work.append(&mut woken);
                        }
                    }
                    drop(lot);
                    self.metrics.logs_applied.fetch_add(1, Ordering::Relaxed);
                    self.journal_log(EventKind::LogApplied { mbox: m as u16 });
                    pp.remaining.swap_remove(0);
                    continue;
                }
                ftc_stm::TryApply::Stale => {
                    drop(lot);
                    self.metrics.logs_stale.fetch_add(1, Ordering::Relaxed);
                    self.journal_log(EventKind::LogStale { mbox: m as u16 });
                    pp.remaining.swap_remove(0);
                    continue;
                }
                ftc_stm::TryApply::Blocked { partition, need } => {
                    let key = (m, partition, need);
                    let bucket = lot.by_key.entry(key).or_default();
                    if pp.msg.is_propagating() {
                        let sig = pp.signature();
                        if bucket
                            .iter()
                            .any(|q| q.msg.is_propagating() && q.signature() == sig)
                        {
                            // Duplicate resend already waiting here.
                            return None;
                        }
                    }
                    bucket.push(pp);
                    lot.count += 1;
                    drop(lot);
                    self.metrics.logs_parked.fetch_add(1, Ordering::Relaxed);
                    self.journal_log(EventKind::LogParked { mbox: m as u16 });
                    return None;
                }
            }
        }
    }

    /// Records a journal event attributed to this replica.
    fn journal_log(&self, kind: EventKind) {
        self.metrics
            .journal
            .record(EventSource::Replica(self.idx as u16), kind);
    }

    /// Number of packets currently parked.
    pub fn parked_len(&self) -> usize {
        self.parked.lock().count
    }

    /// Drops all parked packets (recovery-source rule, §4.1).
    pub fn discard_parked(&self) {
        let mut lot = self.parked.lock();
        lot.by_key.clear();
        lot.count = 0;
        drop(lot);
        for g in self.replicated.values() {
            g.max.discard_parked();
        }
    }

    /// Quiesces this instance as the *source* of a planned handover
    /// ([`crate::reconfig`]): pause and drop parked packets — the §4.1
    /// source rule, so everything transferred from here on is a consistent
    /// committed frontier — then seal the partition claims so the instance
    /// stops being serviceable while its state is copied off.
    pub fn begin_handover(&self) {
        self.pause();
        self.discard_parked();
        self.claims.seal_all();
    }

    /// Aborts a handover on the source: re-opens the sealed claims and
    /// resumes packet processing. The old configuration is intact and the
    /// operation can simply be retried.
    pub fn abort_handover(&self) {
        self.claims.unseal_all();
        self.resume();
    }

    /// Completes a handover on the retiring side: the instance gives up
    /// every partition claim. It stays paused — a decommissioned instance
    /// serves nothing.
    pub fn retire(&self) {
        self.claims.unclaim_all();
    }

    /// Finishes a packet whose piggybacked logs are all applied: runs the
    /// middlebox transaction, strips tail logs, attaches the commit vector
    /// and the replica's own log, and forwards. Returns `false` when an
    /// installed probe crashed the replica mid-step (state mutated so far
    /// persists; the in-progress output is discarded).
    fn finish(&self, worker: usize, pp: PendingPacket) -> bool {
        let PendingPacket {
            mut pkt, mut msg, ..
        } = pp;
        let is_prop = msg.is_propagating();

        // 1. The packet transaction (heads only process data packets).
        let mut action = Action::Forward;
        let mut own_log: Option<ftc_stm::TxnLog> = None;
        if !is_prop {
            let ctx = ProcCtx {
                worker,
                workers: self.cfg.workers,
            };
            let t0 = Instant::now();
            let out = self
                .own_store
                .transaction(|txn| self.mbox.process(&mut pkt, txn, ctx));
            self.metrics.t_transaction.record(t0.elapsed());
            action = out.value;
            own_log = out.log;
            // Crash point §6(a): the transaction committed locally but its
            // log never leaves the server.
            if self
                .probe
                .observe_with(|| ProbePoint::PrePiggyback { replica: self.idx })
                == ProbeVerdict::Crash
            {
                return false;
            }
        }

        // 2. Strip logs we are the tail of (we replicated them f+1-th).
        let idx = self.idx;
        let ring = self.ring;
        msg.logs.retain(|log| {
            let m = log.mbox.0 as usize;
            !(ring.is_member(idx, m) && ring.tail_of(m) == idx)
        });

        // 3. Append our own piggyback log (f = 0 needs no propagation: the
        //    head itself is the tail).
        if let Some(log) = own_log {
            if self.ring.f > 0 {
                let t1 = Instant::now();
                let plog = PiggybackLog {
                    mbox: MboxId(self.idx as u16),
                    deps: log.deps,
                    writes: log.writes,
                };
                self.metrics
                    .piggyback_bytes
                    .fetch_add(plog.wire_len() as u64, Ordering::Relaxed);
                self.metrics.piggyback_count.fetch_add(1, Ordering::Relaxed);
                msg.logs.push(plog);
                self.metrics.t_piggyback.record(t1.elapsed());
            }
        }

        // 4. Attach our commit vector when the buffer needs it: we are the
        //    tail of a *wrapped* middlebox (its logs ride the feedback loop
        //    and only our MAX can release the held packets). Trailing zeros
        //    are trimmed to keep the trailer small.
        let mt = self.ring.tail_for(self.idx);
        if self.ring.wraps(mt) {
            let mut max = if mt == self.idx {
                self.own_store.seq_vector()
            } else {
                self.replicated[&mt].max.vector()
            };
            while max.last() == Some(&0) {
                max.pop();
            }
            if !max.is_empty() {
                let entry = msg.commit_entry(MboxId(mt as u16), 0);
                entry.merge_from(&ftc_packet::piggyback::CommitVector {
                    mbox: MboxId(mt as u16),
                    max,
                });
            }
        }

        // Crash point §6(b): applies done, message fully assembled, but the
        // frame is never handed to the output port.
        if self
            .probe
            .observe_with(|| ProbePoint::PostApplyPreForward { replica: self.idx })
            == ProbeVerdict::Crash
        {
            return false;
        }

        // 5. Forward, or convert a filtered packet's state into a
        //    propagating packet (§5.1).
        match action {
            Action::Forward => {
                pkt.attach_piggyback(&msg).expect("fresh trailer");
                if pkt.wire_len() > self.cfg.mtu {
                    self.metrics.oversize_frames.fetch_add(1, Ordering::Relaxed);
                }
                self.out.send(pkt.into_bytes());
            }
            Action::Drop => {
                self.metrics.filtered.fetch_add(1, Ordering::Relaxed);
                self.journal_log(EventKind::PacketFiltered);
                if !msg.logs.is_empty() || !msg.commits.is_empty() {
                    msg.flags |= ftc_packet::piggyback::flags::PROPAGATING;
                    let prop = packet::propagating_packet(
                        MacAddr::from_index(0xF7C0 + self.idx as u64),
                        MacAddr::from_index(0xF7C0 + self.idx as u64 + 1),
                        &msg,
                    );
                    self.metrics.propagating.fetch_add(1, Ordering::Relaxed);
                    self.out.send(prop.into_bytes());
                }
            }
        }

        // Crash point §6(c): the frame is already safely downstream; only
        // the server dies.
        self.probe
            .observe_with(|| ProbePoint::PostForward { replica: self.idx })
            != ProbeVerdict::Crash
    }

    /// Restores the own (head) store from recovered state: "the new replica
    /// restores the dependency matrix of the failed head by setting each of
    /// its rows to the retrieved MAX" (§5.2) — here, the per-partition
    /// sequence counters are set from the fetched `MAX` vector.
    pub fn restore_own(&self, snapshot: &ftc_stm::StoreSnapshot, max: &[u64]) {
        self.own_store.restore(snapshot);
        self.own_store.restore_seqs(max);
    }

    /// Restores a replicated group's store and `MAX` vector.
    pub fn restore_replicated(
        &self,
        mbox: usize,
        snapshot: &ftc_stm::StoreSnapshot,
        max: Vec<u64>,
    ) {
        let g = self
            .replicated
            .get(&mbox)
            .expect("restore target must be a replicated middlebox");
        g.store.restore(snapshot);
        g.max.restore(max);
    }

    /// Serves one control request (run by the control thread).
    pub fn serve_ctrl(&self, req: CtrlReq) -> CtrlResp {
        match req {
            CtrlReq::Ping => CtrlResp::Pong,
            CtrlReq::Resume => {
                self.resume();
                CtrlResp::Resumed
            }
            CtrlReq::FetchState { mbox } => {
                // Source rule (§4.1): stop admitting packets in flight and
                // discard out-of-order state, so everything served from now
                // until the orchestrator's Resume is a consistent frontier.
                self.pause();
                self.discard_parked();
                if mbox == self.idx {
                    // Serving as successor for a failed head: our own store
                    // *is* the most recent replica state we hold for it.
                    // (MAX before snapshot: re-applying a write that is
                    // already in the snapshot is idempotent, the reverse
                    // order could lose one.)
                    let max = self.own_store.seq_vector();
                    CtrlResp::State {
                        snapshot: self.own_store.snapshot(),
                        max,
                    }
                } else if let Some(g) = self.replicated.get(&mbox) {
                    let max = g.max.vector();
                    CtrlResp::State {
                        snapshot: g.store.snapshot(),
                        max,
                    }
                } else {
                    CtrlResp::NotHere
                }
            }
        }
    }
}

/// Spawns all data-plane threads of a replica onto `server`.
///
/// Thread layout per server (paper §2/§6): an rx thread pulling the
/// reliable link and dispatching to NIC queues by RSS; `cfg.workers` worker
/// threads; a control thread serving RPCs.
pub fn spawn_replica(
    server: &mut ftc_net::Server,
    state: Arc<ReplicaState>,
    in_port: Arc<InPort>,
    nic: Arc<Nic>,
    queues: Vec<crossbeam::channel::Receiver<BytesMut>>,
    ctrl: CtrlServer,
) {
    assert_eq!(queues.len(), state.cfg.workers);
    for (w, queue) in queues.into_iter().enumerate() {
        let state = Arc::clone(&state);
        server.spawn(&format!("worker{w}"), move |alive: AliveToken| {
            while alive.is_alive() {
                if state.is_paused() {
                    // Recovery-source quiescing (§4.1): stop admitting
                    // packets; they wait in the NIC ring (or overflow).
                    state.wait_while_paused(Duration::from_millis(1));
                    continue;
                }
                match queue.recv_timeout(Duration::from_millis(1)) {
                    Ok(frame) => {
                        // Quiesced between recv and claiming: the frame is
                        // held (its piggyback logs must not be lost) and the
                        // transaction runs after Resume, so it sequences
                        // after the served state.
                        if !state.claim_busy(|| alive.is_alive()) {
                            return; // shutting down; frame dies with us
                        }
                        state.handle_frame(w, frame);
                        state.release_busy();
                    }
                    // Parked packets are woken by the applier that clears
                    // their dependency (no polling needed): idle is idle.
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    }

    {
        let state = Arc::clone(&state);
        server.spawn("rx", move |alive: AliveToken| {
            while alive.is_alive() {
                if state.is_paused() {
                    // Quiesced: leave frames in the reliable receiver
                    // (backpressure) instead of overflowing the NIC ring —
                    // dropped frames here would lose piggyback logs that the
                    // transport has already delivered exactly once.
                    state.wait_while_paused(Duration::from_millis(1));
                } else if let Some(frame) = in_port.recv_timeout(Duration::from_millis(1)) {
                    let a = alive.clone();
                    nic.dispatch_backpressure(frame, Duration::from_millis(1), move || {
                        a.is_alive()
                    });
                }
                state.out.poll();
            }
        });
    }

    {
        let state = Arc::clone(&state);
        let mut ctrl = ctrl;
        server.spawn("ctrl", move |alive: AliveToken| {
            while alive.is_alive() {
                let res = ctrl.serve_next(Duration::from_millis(2), |req| state.serve_ctrl(req));
                if res.is_err() {
                    break; // all clients gone
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChainConfig;
    use ftc_mbox::MbSpec;
    use ftc_net::{reliable_pair, Endpoint};
    use ftc_packet::builder::UdpPacketBuilder;

    fn mk_state(
        idx: usize,
        n: usize,
        f: usize,
        spec: MbSpec,
    ) -> (Arc<ReplicaState>, crate::control::InPort) {
        let mbs: Vec<MbSpec> = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        let mut cfg = ChainConfig::new(mbs).with_f(f);
        cfg.middleboxes[idx] = spec.clone();
        let cfg = Arc::new(cfg);
        let (tx, rx) = reliable_pair(&Endpoint::in_proc());
        let out = Arc::new(OutPort::wired(tx));
        let metrics = Arc::new(ChainMetrics::default());
        let st = ReplicaState::new(idx, cfg, spec.build(), out, metrics);
        (st, crate::control::InPort::wired(rx))
    }

    fn recv_packet(port: &crate::control::InPort) -> Option<(Packet, PiggybackMessage)> {
        let frame = port.recv_timeout(Duration::from_millis(200))?;
        let mut pkt = Packet::from_frame(frame).ok()?;
        let msg = pkt.detach_piggyback().ok()?.unwrap_or_default();
        Some((pkt, msg))
    }

    #[test]
    fn head_attaches_own_log() {
        let (st, out_rx) = mk_state(0, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        let pkt = UdpPacketBuilder::new().build();
        st.handle_frame(0, pkt.into_bytes());
        let (_, msg) = recv_packet(&out_rx).expect("forwarded");
        assert_eq!(msg.logs.len(), 1);
        assert_eq!(msg.logs[0].mbox, MboxId(0));
        assert!(!msg.logs[0].writes.is_empty());
    }

    #[test]
    fn stateless_head_attaches_nothing() {
        let (st, out_rx) = mk_state(0, 3, 1, MbSpec::Firewall { rules: vec![] });
        st.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        let (_, msg) = recv_packet(&out_rx).expect("forwarded");
        assert!(msg.logs.is_empty());
        // r0 is the tail of the wrapped m2, but with no state applied yet
        // its commit vector trims to empty and is omitted.
        assert!(msg.commits.is_empty());
    }

    #[test]
    fn replica_applies_predecessor_log_and_mid_keeps_it() {
        // Chain of 4, f=2: r1 replicates m0 (tail is r2), so r1 applies m0's
        // log but must keep it attached for r2.
        let (head, head_out) = mk_state(0, 4, 2, MbSpec::Monitor { sharing_level: 1 });
        let (mid, mid_out) = mk_state(1, 4, 2, MbSpec::Monitor { sharing_level: 1 });
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        let (pkt, msg) = recv_packet(&head_out).unwrap();
        // re-frame towards the mid replica
        let mut pkt = pkt;
        pkt.attach_piggyback(&msg).unwrap();
        mid.handle_frame(0, pkt.into_bytes());
        let (_, msg2) = recv_packet(&mid_out).unwrap();
        // m0's log still present (r1 not tail), plus r1's own log.
        let mboxes: Vec<u16> = msg2.logs.iter().map(|l| l.mbox.0).collect();
        assert!(mboxes.contains(&0), "m0 log kept for the tail");
        assert!(mboxes.contains(&1), "m1's own log added");
        // And it was applied locally.
        assert_eq!(
            mid.replicated[&0].store.peek_u64(b"mon:packets:g0"),
            Some(1)
        );
        assert_eq!(mid.metrics.logs_applied.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tail_strips_log_and_out_of_order_parks() {
        // Chain of 3, f=1: r1 is tail of m0.
        let (head, head_out) = mk_state(0, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        let (tail, tail_out) = mk_state(1, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        // Two packets from the head → two logs in order.
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        let (p1, m1) = recv_packet(&head_out).unwrap();
        let (p2, m2) = recv_packet(&head_out).unwrap();
        // Deliver out of order: second first.
        let mut p2 = p2;
        p2.attach_piggyback(&m2).unwrap();
        tail.handle_frame(0, p2.into_bytes());
        assert_eq!(tail.parked_len(), 1, "early log parks the packet");
        let mut p1 = p1;
        p1.attach_piggyback(&m1).unwrap();
        tail.handle_frame(0, p1.into_bytes());
        assert_eq!(
            tail.parked_len(),
            0,
            "in-order log unblocks the parked packet"
        );
        // Both forwarded, both with m0's log stripped.
        for _ in 0..2 {
            let (_, msg) = recv_packet(&tail_out).unwrap();
            assert!(
                msg.logs.iter().all(|l| l.mbox != MboxId(0)),
                "tail strips m0"
            );
        }
        assert_eq!(
            tail.replicated[&0].store.peek_u64(b"mon:packets:g0"),
            Some(2)
        );
    }

    #[test]
    fn filtered_packet_becomes_propagating() {
        use ftc_mbox::firewall::{Cidr, FirewallRule};
        // Chain of 3, f=2; the firewall at position 1 denies everything.
        // m0's log is applied at r1 but its tail is r2 — so when the data
        // packet dies at the firewall, the log must continue in a
        // propagating packet (paper §5.1: "its head generates a propagating
        // packet to carry the piggyback message of a filtered packet").
        let (head, head_out) = mk_state(0, 3, 2, MbSpec::Monitor { sharing_level: 1 });
        let (fw, fw_out) = mk_state(
            1,
            3,
            2,
            MbSpec::Firewall {
                rules: vec![FirewallRule::deny_src(Cidr::any())],
            },
        );
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        let (mut pkt, msg) = recv_packet(&head_out).unwrap();
        pkt.attach_piggyback(&msg).unwrap();
        fw.handle_frame(0, pkt.into_bytes());
        let (prop, pmsg) = recv_packet(&fw_out).expect("propagating packet emitted");
        assert!(pmsg.is_propagating());
        assert_eq!(fw.metrics.filtered.load(Ordering::Relaxed), 1);
        // m0's log survives for its tail r2; the local copy was applied.
        assert_eq!(pmsg.logs.len(), 1);
        assert_eq!(pmsg.logs[0].mbox, MboxId(0));
        assert_eq!(fw.replicated[&0].store.peek_u64(b"mon:packets:g0"), Some(1));
        assert!(prop.ipv4().unwrap().ftc_option().is_some());
    }

    #[test]
    fn filtered_packet_with_empty_message_vanishes() {
        use ftc_mbox::firewall::{Cidr, FirewallRule};
        // Chain of 3, f=1: the firewall at position 1 strips m0's log (it is
        // the tail) and its own commit target m0 does not wrap — nothing
        // left to propagate, so nothing is emitted.
        let (head, head_out) = mk_state(0, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        let (fw, fw_out) = mk_state(
            1,
            3,
            1,
            MbSpec::Firewall {
                rules: vec![FirewallRule::deny_src(Cidr::any())],
            },
        );
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        let (mut pkt, msg) = recv_packet(&head_out).unwrap();
        pkt.attach_piggyback(&msg).unwrap();
        fw.handle_frame(0, pkt.into_bytes());
        assert!(
            recv_packet(&fw_out).is_none(),
            "nothing to carry, nothing sent"
        );
        assert_eq!(fw.replicated[&0].store.peek_u64(b"mon:packets:g0"), Some(1));
    }

    #[test]
    fn propagating_packets_skip_the_middlebox() {
        let (st, out_rx) = mk_state(1, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        let msg = PiggybackMessage::propagating(vec![]);
        let prop = packet::propagating_packet(MacAddr::from_index(1), MacAddr::from_index(2), &msg);
        st.handle_frame(0, prop.into_bytes());
        let (_, fwd) = recv_packet(&out_rx).expect("propagating packets are forwarded");
        assert!(fwd.is_propagating());
        assert!(st.own_store.is_empty(), "middlebox must not process it");
    }

    #[test]
    fn ctrl_fetch_state_own_and_replicated() {
        let (head, _o1) = mk_state(0, 3, 1, MbSpec::Monitor { sharing_level: 1 });
        head.handle_frame(0, UdpPacketBuilder::new().build().into_bytes());
        match head.serve_ctrl(CtrlReq::FetchState { mbox: 0 }) {
            CtrlResp::State { snapshot, max } => {
                assert!(snapshot.byte_size() > 0);
                assert_eq!(max, head.own_store.seq_vector());
            }
            other => panic!("unexpected {other:?}"),
        }
        match head.serve_ctrl(CtrlReq::FetchState { mbox: 2 }) {
            CtrlResp::State { .. } => {}
            other => panic!("r0 replicates m2 (ring): {other:?}"),
        }
        match head.serve_ctrl(CtrlReq::FetchState { mbox: 1 }) {
            CtrlResp::NotHere => {}
            other => panic!("r0 does not replicate m1: {other:?}"),
        }
        match head.serve_ctrl(CtrlReq::Ping) {
            CtrlResp::Pong => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
