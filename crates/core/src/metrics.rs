//! Chain-wide counters and per-packet timing breakdowns (paper Table 2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A nanosecond accumulator with a sample count, for mean breakdowns.
#[derive(Debug, Default)]
pub struct TimingCell {
    total_ns: AtomicU64,
    samples: AtomicU64,
}

impl TimingCell {
    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.total_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean duration across samples, if any.
    pub fn mean(&self) -> Option<Duration> {
        let n = self.samples.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            self.total_ns.load(Ordering::Relaxed) / n,
        ))
    }

    /// Number of samples.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// Counters shared across a chain's threads.
#[derive(Debug, Default)]
pub struct ChainMetrics {
    /// Packets accepted at the forwarder.
    pub injected: AtomicU64,
    /// Packets released by the buffer.
    pub released: AtomicU64,
    /// Data packets filtered by a middlebox (Action::Drop).
    pub filtered: AtomicU64,
    /// Propagating packets emitted (forwarder idle + filtered packets).
    pub propagating: AtomicU64,
    /// Packets currently withheld by the buffer.
    pub held: AtomicU64,
    /// Piggyback logs applied at replicas.
    pub logs_applied: AtomicU64,
    /// Piggyback logs parked waiting for dependencies.
    pub logs_parked: AtomicU64,
    /// Duplicate (stale) logs discarded.
    pub logs_stale: AtomicU64,
    /// Total piggyback trailer bytes attached at heads.
    pub piggyback_bytes: AtomicU64,
    /// Packets that carried a piggyback trailer out of a head.
    pub piggyback_count: AtomicU64,
    /// Frames whose trailer pushed them past the configured MTU (§7.2:
    /// deploy jumbo frames when this is non-zero).
    pub oversize_frames: AtomicU64,

    /// Table-2 breakdown: middlebox packet-transaction execution.
    pub t_transaction: TimingCell,
    /// Table-2 breakdown: constructing/copying piggybacked state.
    pub t_piggyback: TimingCell,
    /// Table-2 breakdown: applying replicated logs.
    pub t_apply: TimingCell,
    /// Table-2 breakdown: forwarder per-packet work.
    pub t_forwarder: TimingCell,
    /// Table-2 breakdown: buffer per-packet work.
    pub t_buffer: TimingCell,
}

impl ChainMetrics {
    /// Convenience: loads a counter.
    pub fn get(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Mean piggyback trailer size in bytes.
    pub fn mean_piggyback_bytes(&self) -> Option<f64> {
        let n = self.piggyback_count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.piggyback_bytes.load(Ordering::Relaxed) as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_cell_mean() {
        let c = TimingCell::default();
        assert_eq!(c.mean(), None);
        c.record(Duration::from_micros(10));
        c.record(Duration::from_micros(30));
        assert_eq!(c.mean(), Some(Duration::from_micros(20)));
        assert_eq!(c.samples(), 2);
    }

    #[test]
    fn piggyback_mean() {
        let m = ChainMetrics::default();
        assert_eq!(m.mean_piggyback_bytes(), None);
        m.piggyback_bytes.store(300, Ordering::Relaxed);
        m.piggyback_count.store(4, Ordering::Relaxed);
        assert_eq!(m.mean_piggyback_bytes(), Some(75.0));
    }
}
