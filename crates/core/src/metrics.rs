//! Chain-wide counters, histogram-backed timing breakdowns (paper
//! Table 2), and the embedded event [`Journal`].
//!
//! Read everything through [`ChainMetrics::snapshot`], which returns a
//! plain serializable [`MetricsSnapshot`] with named fields — the raw
//! atomics stay public for hot-path writers only.

use crate::hist::{AtomicHistogram, Histogram};
use crate::journal::Journal;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A histogram-backed timing accumulator: lock-free to record, and able
/// to answer mean *and* tail-quantile queries (Table 2 with tails).
#[derive(Debug, Default)]
pub struct TimingCell {
    hist: AtomicHistogram,
}

impl TimingCell {
    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.hist.record(d);
    }

    /// Mean duration across samples, if any.
    pub fn mean(&self) -> Option<Duration> {
        self.hist.snapshot().mean()
    }

    /// Number of samples.
    pub fn samples(&self) -> u64 {
        self.hist.len()
    }

    /// The duration at quantile `q` in `[0, 1]`, if any samples exist.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.hist.snapshot().quantile(q)
    }

    /// A point-in-time copy of the full distribution (Fig-11 CDFs).
    pub fn histogram(&self) -> Histogram {
        self.hist.snapshot()
    }
}

/// Counters shared across a chain's threads.
#[derive(Debug, Default)]
pub struct ChainMetrics {
    /// Packets accepted at the forwarder.
    pub injected: AtomicU64,
    /// Packets released by the buffer.
    pub released: AtomicU64,
    /// Data packets filtered by a middlebox (Action::Drop).
    pub filtered: AtomicU64,
    /// Propagating packets emitted (forwarder idle + filtered packets).
    pub propagating: AtomicU64,
    /// Packets currently withheld by the buffer.
    pub held: AtomicU64,
    /// Piggyback logs applied at replicas.
    pub logs_applied: AtomicU64,
    /// Piggyback logs parked waiting for dependencies.
    pub logs_parked: AtomicU64,
    /// Duplicate (stale) logs discarded.
    pub logs_stale: AtomicU64,
    /// Total piggyback trailer bytes attached at heads.
    pub piggyback_bytes: AtomicU64,
    /// Packets that carried a piggyback trailer out of a head.
    pub piggyback_count: AtomicU64,
    /// Frames whose trailer pushed them past the configured MTU (§7.2:
    /// deploy jumbo frames when this is non-zero).
    pub oversize_frames: AtomicU64,

    /// Table-2 breakdown: middlebox packet-transaction execution.
    pub t_transaction: TimingCell,
    /// Table-2 breakdown: constructing/copying piggybacked state.
    pub t_piggyback: TimingCell,
    /// Table-2 breakdown: applying replicated logs.
    pub t_apply: TimingCell,
    /// Table-2 breakdown: forwarder per-packet work.
    pub t_forwarder: TimingCell,
    /// Table-2 breakdown: buffer per-packet work.
    pub t_buffer: TimingCell,

    /// The chain's event journal (see [`crate::journal`]).
    pub journal: Journal,
}

impl ChainMetrics {
    /// Mean piggyback trailer size in bytes.
    pub fn mean_piggyback_bytes(&self) -> Option<f64> {
        let n = self.piggyback_count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.piggyback_bytes.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// Copies every counter and timing distribution into a plain,
    /// serializable [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            injected: self.injected.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
            propagating: self.propagating.load(Ordering::Relaxed),
            held: self.held.load(Ordering::Relaxed),
            logs_applied: self.logs_applied.load(Ordering::Relaxed),
            logs_parked: self.logs_parked.load(Ordering::Relaxed),
            logs_stale: self.logs_stale.load(Ordering::Relaxed),
            piggyback_bytes: self.piggyback_bytes.load(Ordering::Relaxed),
            piggyback_count: self.piggyback_count.load(Ordering::Relaxed),
            oversize_frames: self.oversize_frames.load(Ordering::Relaxed),
            mean_piggyback_bytes: self.mean_piggyback_bytes().unwrap_or(0.0),
            transaction: StageStats::of(&self.t_transaction),
            piggyback: StageStats::of(&self.t_piggyback),
            apply: StageStats::of(&self.t_apply),
            forwarder: StageStats::of(&self.t_forwarder),
            buffer: StageStats::of(&self.t_buffer),
        }
    }
}

/// Distributional summary of one Table-2 stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageStats {
    /// Number of samples.
    pub samples: u64,
    /// Mean in nanoseconds (0 when empty).
    pub mean_ns: u64,
    /// Median in nanoseconds (0 when empty).
    pub p50_ns: u64,
    /// 99th percentile in nanoseconds (0 when empty).
    pub p99_ns: u64,
    /// 99.9th percentile in nanoseconds (0 when empty).
    pub p999_ns: u64,
}

impl StageStats {
    fn of(cell: &TimingCell) -> StageStats {
        let h = cell.histogram();
        let ns =
            |d: Option<Duration>| d.map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        StageStats {
            samples: h.len(),
            mean_ns: ns(h.mean()),
            p50_ns: ns(h.quantile(0.5)),
            p99_ns: ns(h.quantile(0.99)),
            p999_ns: ns(h.quantile(0.999)),
        }
    }

    fn json_fields(&self) -> String {
        format!(
            "{{\"samples\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
            self.samples, self.mean_ns, self.p50_ns, self.p99_ns, self.p999_ns
        )
    }
}

/// A point-in-time copy of [`ChainMetrics`]: plain named fields, no
/// atomics, serde-serializable, with per-stage tail quantiles.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Packets accepted at the forwarder.
    pub injected: u64,
    /// Packets released by the buffer.
    pub released: u64,
    /// Data packets filtered by a middlebox.
    pub filtered: u64,
    /// Propagating packets emitted.
    pub propagating: u64,
    /// Packets currently withheld by the buffer.
    pub held: u64,
    /// Piggyback logs applied at replicas.
    pub logs_applied: u64,
    /// Piggyback logs parked waiting for dependencies.
    pub logs_parked: u64,
    /// Duplicate (stale) logs discarded.
    pub logs_stale: u64,
    /// Total piggyback trailer bytes attached at heads.
    pub piggyback_bytes: u64,
    /// Packets that carried a piggyback trailer out of a head.
    pub piggyback_count: u64,
    /// Frames whose trailer exceeded the configured MTU.
    pub oversize_frames: u64,
    /// Mean piggyback trailer size in bytes (0 when none were sent).
    pub mean_piggyback_bytes: f64,
    /// Table-2 stage: middlebox packet-transaction execution.
    pub transaction: StageStats,
    /// Table-2 stage: constructing/copying piggybacked state.
    pub piggyback: StageStats,
    /// Table-2 stage: applying replicated logs.
    pub apply: StageStats,
    /// Table-2 stage: forwarder per-packet work.
    pub forwarder: StageStats,
    /// Table-2 stage: buffer per-packet work.
    pub buffer: StageStats,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (no external JSON crate in
    /// the offline dependency set, so this is hand-rolled and stable).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"injected\":{},\"released\":{},\"filtered\":{},\"propagating\":{},\
             \"held\":{},\"logs_applied\":{},\"logs_parked\":{},\"logs_stale\":{},\
             \"piggyback_bytes\":{},\"piggyback_count\":{},\"oversize_frames\":{},\
             \"mean_piggyback_bytes\":{},\"transaction\":{},\"piggyback\":{},\
             \"apply\":{},\"forwarder\":{},\"buffer\":{}}}",
            self.injected,
            self.released,
            self.filtered,
            self.propagating,
            self.held,
            self.logs_applied,
            self.logs_parked,
            self.logs_stale,
            self.piggyback_bytes,
            self.piggyback_count,
            self.oversize_frames,
            self.mean_piggyback_bytes,
            self.transaction.json_fields(),
            self.piggyback.json_fields(),
            self.apply.json_fields(),
            self.forwarder.json_fields(),
            self.buffer.json_fields(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_cell_mean() {
        let c = TimingCell::default();
        assert_eq!(c.mean(), None);
        c.record(Duration::from_micros(10));
        c.record(Duration::from_micros(30));
        assert_eq!(c.mean(), Some(Duration::from_micros(20)));
        assert_eq!(c.samples(), 2);
    }

    #[test]
    fn timing_cell_quantiles() {
        let c = TimingCell::default();
        assert_eq!(c.quantile(0.99), None);
        for us in 1..=100u64 {
            c.record(Duration::from_micros(us));
        }
        let p50 = c.quantile(0.5).unwrap();
        let p99 = c.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 >= Duration::from_micros(95));
        assert_eq!(c.histogram().len(), 100);
    }

    #[test]
    fn piggyback_mean() {
        let m = ChainMetrics::default();
        assert_eq!(m.mean_piggyback_bytes(), None);
        m.piggyback_bytes.store(300, Ordering::Relaxed);
        m.piggyback_count.store(4, Ordering::Relaxed);
        assert_eq!(m.mean_piggyback_bytes(), Some(75.0));
    }

    #[test]
    fn snapshot_copies_counters_and_stages() {
        let m = ChainMetrics::default();
        m.injected.store(7, Ordering::Relaxed);
        m.released.store(5, Ordering::Relaxed);
        m.t_transaction.record(Duration::from_micros(10));
        m.t_transaction.record(Duration::from_micros(20));
        let s = m.snapshot();
        assert_eq!(s.injected, 7);
        assert_eq!(s.released, 5);
        assert_eq!(s.transaction.samples, 2);
        assert!(s.transaction.p99_ns >= s.transaction.p50_ns);
        let json = s.to_json();
        assert!(json.contains("\"injected\":7"));
        assert!(json.contains("\"p999_ns\":"));
    }
}
