//! Deploying and wiring a running FTC chain.
//!
//! One server per middlebox (paper §3.2: no dedicated replica servers). The
//! forwarder shares the first server; the buffer shares the last. Servers
//! are joined by reliable sequenced links; the buffer→forwarder feedback
//! closes the logical ring.

use crate::buffer::{spawn_buffer, BufferState};
use crate::config::ChainConfig;
use crate::control::{ctrl_pair, CtrlClient, InPort, OutPort};
use crate::forwarder::{spawn_forwarder, ForwarderState};
use crate::metrics::ChainMetrics;
use crate::replica::{spawn_replica, ReplicaState};
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender};
use ftc_net::nic::Nic;
use ftc_net::topology::{RegionId, Topology};
use ftc_net::{reliable_pair, Endpoint, Server};
use ftc_packet::Packet;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Anything that accepts packets at one end and releases them at the other
/// — implemented by [`FtcChain`] and by the baseline systems (NF, FTMB) so
/// the traffic harness can drive them interchangeably.
pub trait ChainSystem: Send + Sync {
    /// Injects an external packet at the ingress.
    fn inject_pkt(&self, pkt: Packet);
    /// Receives the next released packet, waiting up to `timeout`.
    fn egress_pkt(&self, timeout: Duration) -> Option<Packet>;
    /// Human-readable system name ("FTC", "NF", "FTMB", …).
    fn system_name(&self) -> &'static str;
}

impl ChainSystem for FtcChain {
    fn inject_pkt(&self, pkt: Packet) {
        self.inject(pkt);
    }

    fn egress_pkt(&self, timeout: Duration) -> Option<Packet> {
        self.egress().recv(timeout)
    }

    fn system_name(&self) -> &'static str {
        "FTC"
    }
}

/// A deployed replica and its attachments.
pub struct ReplicaSlot {
    /// Shared data-plane state.
    pub state: Arc<ReplicaState>,
    /// Control-plane client (zero network delay; derive with
    /// [`CtrlClient::with_delay`] for WAN callers).
    pub ctrl: CtrlClient,
    /// Incoming data link (swappable for rerouting).
    pub in_port: Arc<InPort>,
    /// Outgoing data link (swappable for rerouting).
    pub out_port: Arc<OutPort>,
    /// The replica's NIC (the forwarder dispatches into slot 0's NIC).
    pub nic: Arc<Nic>,
    /// Region this replica is deployed in.
    pub region: RegionId,
}

/// A cloneable handle to the chain's egress: every way of taking
/// released packets out of the chain, in one place.
///
/// Obtain one with [`FtcChain::egress`] (the baselines and the sync
/// test chain expose the same handle). All handles share the same
/// underlying channel, so packets are consumed exactly once across
/// handles.
#[derive(Clone)]
pub struct Egress {
    rx: Receiver<Packet>,
}

impl Egress {
    /// Wraps an egress channel. Systems releasing packets through a
    /// crossbeam channel (FTC, the baselines, the sync test chain) expose
    /// their egress this way so callers share one API.
    pub fn new(rx: Receiver<Packet>) -> Egress {
        Egress { rx }
    }

    /// Receives the next released packet, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<Packet> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains all currently released packets without waiting.
    pub fn drain(&self) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(p) = self.rx.try_recv() {
            out.push(p);
        }
        out
    }

    /// Waits until `count` packets are released or `deadline` passes;
    /// returns the released packets.
    pub fn collect(&self, count: usize, deadline: Duration) -> Vec<Packet> {
        let start = std::time::Instant::now();
        let mut out = Vec::new();
        while out.len() < count {
            let left = deadline.saturating_sub(start.elapsed());
            if left.is_zero() {
                break;
            }
            match self.rx.recv_timeout(left.min(Duration::from_millis(5))) {
                Ok(p) => out.push(p),
                Err(channel::RecvTimeoutError::Timeout) => continue,
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }
}

/// Handles to interact with a running chain.
pub struct ChainHandles {
    /// Send external packets here.
    pub ingress: Arc<Mutex<Sender<BytesMut>>>,
    /// Released packets appear here.
    pub egress: Receiver<Packet>,
}

/// A running FTC chain.
pub struct FtcChain {
    /// Configuration (with the effective, possibly padded, middlebox list).
    pub cfg: Arc<ChainConfig>,
    /// Chain-wide metrics.
    pub metrics: Arc<ChainMetrics>,
    /// One server per replica, by position. `None` after a kill until the
    /// orchestrator respawns the position.
    pub servers: Vec<Option<Server>>,
    /// Replica attachments by position.
    pub replicas: Vec<ReplicaSlot>,
    /// Ingress side (swapped when the first server is respawned).
    pub ingress: Arc<Mutex<Sender<BytesMut>>>,
    egress_rx: Receiver<Packet>,
    egress_tx: Sender<Packet>,
    /// The forwarder (soft state, respawned with server 0).
    pub forwarder: Arc<ForwarderState>,
    /// The buffer (soft state, respawned with server n-1).
    pub buffer: Arc<BufferState>,
    /// Feedback in-port at the forwarder side (swappable).
    pub feedback_in: Arc<InPort>,
    /// Cloud topology (single region by default).
    pub topology: Topology,
}

impl FtcChain {
    /// Deploys a chain in a single region.
    pub fn deploy(cfg: ChainConfig) -> FtcChain {
        let n = cfg.effective_middleboxes().len();
        Self::deploy_in(cfg, Topology::single(), vec![RegionId(0); n])
    }

    /// Deploys a chain across `regions` of `topology` (one entry per
    /// effective middlebox). Inter-replica link latency gains the
    /// inter-region one-way delay.
    pub fn deploy_in(cfg: ChainConfig, topology: Topology, regions: Vec<RegionId>) -> FtcChain {
        cfg.validate();
        let cfg = Arc::new(cfg);
        let specs = cfg.effective_middleboxes();
        let n = specs.len();
        assert_eq!(regions.len(), n, "one region per effective middlebox");
        let metrics = Arc::new(ChainMetrics::default());

        // Per-position parts.
        let mut servers = Vec::with_capacity(n);
        let mut slots: Vec<ReplicaSlot> = Vec::with_capacity(n);

        // Data links between consecutive replicas, r_{n-1}→buffer, and the
        // buffer→forwarder feedback link.
        let mut in_ports: Vec<Arc<InPort>> = Vec::with_capacity(n);
        let mut out_ports: Vec<Arc<OutPort>> = Vec::with_capacity(n);
        in_ports.push(Arc::new(InPort::empty())); // r0 is fed by the forwarder directly
        for i in 0..n - 1 {
            let link = Self::link_between(&cfg, &topology, regions[i], regions[i + 1], i as u64);
            let (tx, rx) = reliable_pair(&link);
            out_ports.push(Arc::new(OutPort::wired(tx)));
            in_ports.push(Arc::new(InPort::wired(rx)));
        }
        // r_{n-1} → buffer (same server: ideal link).
        let (tail_tx, buffer_rx) = reliable_pair(&Endpoint::in_proc());
        out_ports.push(Arc::new(OutPort::wired(tail_tx)));
        let buffer_in = Arc::new(InPort::wired(buffer_rx));
        // buffer → forwarder feedback.
        let fb_link = Self::link_between(&cfg, &topology, regions[n - 1], regions[0], 7777);
        let (fb_tx, fb_rx) = reliable_pair(&fb_link);
        let feedback_out = Arc::new(OutPort::wired(fb_tx));
        let feedback_in = Arc::new(InPort::wired(fb_rx));

        // Ingress / egress.
        let (ingress_tx, ingress_rx) = channel::unbounded::<BytesMut>();
        let ingress = Arc::new(Mutex::new(ingress_tx));
        let (egress_tx, egress_rx) = channel::unbounded::<Packet>();

        let forwarder = ForwarderState::new(Arc::clone(&metrics));
        let buffer = BufferState::new(
            cfg.ring(),
            egress_tx.clone(),
            Arc::clone(&feedback_out),
            Arc::clone(&metrics),
        );

        for (i, spec) in specs.iter().enumerate() {
            let mut server = Server::new(format!("server{i}"), regions[i]);
            let state = ReplicaState::new(
                i,
                Arc::clone(&cfg),
                spec.build(),
                Arc::clone(&out_ports[i]),
                Arc::clone(&metrics),
            );
            let (nic, queues) = Self::make_nic(&cfg);
            let (ctrl_client, ctrl_server) = ctrl_pair(Duration::ZERO);
            spawn_replica(
                &mut server,
                Arc::clone(&state),
                Arc::clone(&in_ports[i]),
                Arc::clone(&nic),
                queues,
                ctrl_server,
            );
            if i == 0 {
                spawn_forwarder(
                    &mut server,
                    Arc::clone(&forwarder),
                    ingress_rx.clone(),
                    Arc::clone(&feedback_in),
                    Arc::clone(&nic),
                    cfg.propagate_timeout,
                );
            }
            if i == n - 1 {
                spawn_buffer(
                    &mut server,
                    Arc::clone(&buffer),
                    Arc::clone(&buffer_in),
                    cfg.resend_period,
                );
            }
            servers.push(Some(server));
            slots.push(ReplicaSlot {
                state,
                ctrl: ctrl_client,
                in_port: Arc::clone(&in_ports[i]),
                out_port: Arc::clone(&out_ports[i]),
                nic,
                region: regions[i],
            });
        }

        FtcChain {
            cfg,
            metrics,
            servers,
            replicas: slots,
            ingress,
            egress_rx,
            egress_tx,
            forwarder,
            buffer,
            feedback_in,
            topology,
        }
    }

    fn link_between(
        cfg: &ChainConfig,
        topo: &Topology,
        a: RegionId,
        b: RegionId,
        seed_salt: u64,
    ) -> Endpoint {
        if cfg.link.is_sock() {
            // Socket endpoints carry real network latency; nothing to derive.
            return cfg.link.clone();
        }
        let latency = cfg.link.latency() + topo.one_way(a, b);
        let seed = cfg
            .link
            .seed()
            .wrapping_add(seed_salt)
            .wrapping_mul(0x9e3779b9);
        cfg.link.clone().with_latency(latency).with_seed(seed)
    }

    fn make_nic(cfg: &ChainConfig) -> (Arc<Nic>, Vec<Receiver<BytesMut>>) {
        let mut nic = Nic::new(cfg.workers, cfg.nic_queue_depth);
        let queues = (0..cfg.workers).map(|w| nic.take_queue(w)).collect();
        (Arc::new(nic), queues)
    }

    /// Number of replicas (effective chain length).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if the chain has no replicas (never the case after deploy).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Injects an external packet at the chain ingress.
    pub fn inject(&self, pkt: Packet) {
        let _ = self.ingress.lock().send(pkt.into_bytes());
    }

    /// Returns a handle to the chain's egress — the one place to
    /// receive, drain, or collect released packets.
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress_rx.clone())
    }

    /// Fail-stops the server at `idx` (the replica, plus the forwarder or
    /// buffer if co-located). State on the server is lost.
    pub fn kill(&mut self, idx: usize) {
        if let Some(mut s) = self.servers[idx].take() {
            s.kill();
            s.join();
        }
    }

    /// True if the server at `idx` is alive.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.servers[idx].as_ref().is_some_and(|s| s.is_alive())
    }

    /// Rebuilds the replica at position `idx` on a fresh server in `region`
    /// with *already recovered* state, and rewires the data plane around
    /// it. This is the mechanical part of recovery; the orchestrator drives
    /// state fetch (see [`crate::recovery`]) and sequencing.
    ///
    /// Returns the new slot's control client.
    pub fn respawn(
        &mut self,
        idx: usize,
        region: RegionId,
        state: Arc<ReplicaState>,
    ) -> CtrlClient {
        let n = self.len();
        let mut server = Server::new(format!("server{idx}r"), region);

        // Fresh NIC + control plane. The NIC is sized from the *replica's*
        // config, which may carry a different worker count than the rest of
        // the chain (vertical scaling, §4.3).
        let (nic, queues) = Self::make_nic(&state.cfg);
        let (ctrl_client, ctrl_server) = ctrl_pair(Duration::ZERO);

        // Wire: predecessor → new replica.
        let in_port = Arc::new(InPort::empty());
        if idx > 0 {
            let link = Self::link_between(
                &self.cfg,
                &self.topology,
                self.replicas[idx - 1].region,
                region,
                idx as u64,
            );
            let (tx, rx) = reliable_pair(&link);
            in_port.install(rx);
            self.replicas[idx - 1].out_port.install(tx);
        }

        // Wire: new replica → successor (or buffer).
        let out_port = state.out.clone();
        if idx < n - 1 {
            let link = Self::link_between(
                &self.cfg,
                &self.topology,
                region,
                self.replicas[idx + 1].region,
                idx as u64 + 1,
            );
            let (tx, rx) = reliable_pair(&link);
            out_port.install(tx);
            self.replicas[idx + 1].in_port.install(rx);
        } else {
            // New last server: respawn the buffer alongside.
            let (tail_tx, buffer_rx) = reliable_pair(&Endpoint::in_proc());
            out_port.install(tail_tx);
            let buffer_in = Arc::new(InPort::wired(buffer_rx));
            let fb_link = Self::link_between(
                &self.cfg,
                &self.topology,
                region,
                self.replicas[0].region,
                7777,
            );
            let (fb_tx, fb_rx) = reliable_pair(&fb_link);
            let feedback_out = Arc::new(OutPort::wired(fb_tx));
            self.feedback_in.install(fb_rx);
            let buffer = BufferState::new(
                self.cfg.ring(),
                self.egress_tx.clone(),
                feedback_out,
                Arc::clone(&self.metrics),
            );
            spawn_buffer(
                &mut server,
                Arc::clone(&buffer),
                buffer_in,
                self.cfg.resend_period,
            );
            self.buffer = buffer;
            // Feedback queued at the forwarder references the dead
            // replica's transaction history; the replacement reissues those
            // sequence numbers with fresh content.
            self.forwarder.clear_pending();
        }

        if idx == 0 {
            // New first server: respawn the forwarder (soft state, §5.2).
            let (ingress_tx, ingress_rx) = channel::unbounded::<BytesMut>();
            *self.ingress.lock() = ingress_tx;
            let forwarder = ForwarderState::new(Arc::clone(&self.metrics));
            spawn_forwarder(
                &mut server,
                Arc::clone(&forwarder),
                ingress_rx,
                Arc::clone(&self.feedback_in),
                Arc::clone(&nic),
                self.cfg.propagate_timeout,
            );
            self.forwarder = forwarder;
        }

        spawn_replica(
            &mut server,
            Arc::clone(&state),
            Arc::clone(&in_port),
            Arc::clone(&nic),
            queues,
            ctrl_server,
        );

        self.servers[idx] = Some(server);
        self.replicas[idx] = ReplicaSlot {
            state,
            ctrl: ctrl_client.clone(),
            in_port,
            out_port,
            nic,
            region,
        };
        ctrl_client
    }
}

impl Drop for FtcChain {
    fn drop(&mut self) {
        for s in self.servers.iter_mut().flatten() {
            s.kill();
        }
        for s in self.servers.iter_mut().flatten() {
            s.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn monitor_chain(n: usize, f: usize) -> FtcChain {
        let specs = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        FtcChain::deploy(ChainConfig::new(specs).with_f(f))
    }

    fn pkt(i: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 9, 9, 9), 80)
            .ident(i)
            .build()
    }

    #[test]
    fn packets_flow_end_to_end() {
        let chain = monitor_chain(3, 1);
        for i in 0..20 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(20, Duration::from_secs(10));
        assert_eq!(got.len(), 20, "all packets must be released");
        // Every replica counted every packet in its own store.
        for slot in &chain.replicas {
            assert_eq!(
                slot.state.own_store.peek_u64(b"mon:packets:g0"),
                Some(20),
                "replica {} processed all packets",
                slot.state.idx
            );
        }
    }

    #[test]
    fn state_is_replicated_f_plus_1_times() {
        let chain = monitor_chain(3, 1);
        for i in 0..10 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(10, Duration::from_secs(10));
        assert_eq!(got.len(), 10);
        // Give the ring a moment to commit the wrapped logs.
        std::thread::sleep(Duration::from_millis(50));
        // m0 replicated at r1; m1 at r2; m2 at r0 (ring).
        for i in 0..3 {
            let succ = (i + 1) % 3;
            let copy = &chain.replicas[succ].state.replicated[&i];
            assert_eq!(
                copy.store.peek_u64(b"mon:packets:g0"),
                Some(10),
                "m{i}'s state must be replicated at r{succ}"
            );
        }
    }

    #[test]
    fn released_packets_preserve_payload() {
        let chain = monitor_chain(2, 1);
        let sent = pkt(42);
        let sent_bytes = sent.bytes().to_vec();
        chain.inject(sent);
        let got = chain.egress().collect(1, Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        // Monitor does not modify packets: bytes identical, no trailer.
        assert_eq!(got[0].bytes(), &sent_bytes[..]);
        assert!(!got[0].has_piggyback());
    }

    #[test]
    fn lossy_links_do_not_lose_packets() {
        let specs = vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
        ];
        let cfg = ChainConfig::new(specs)
            .with_f(1)
            .with_link(Endpoint::lossy(0.05, 0.05, 1234));
        let chain = FtcChain::deploy(cfg);
        for i in 0..50 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(50, Duration::from_secs(20));
        assert_eq!(got.len(), 50, "reliable links must mask loss");
        for slot in &chain.replicas {
            assert_eq!(slot.state.own_store.peek_u64(b"mon:packets:g0"), Some(50));
        }
    }

    #[test]
    fn multithreaded_chain_counts_correctly() {
        let specs = vec![
            MbSpec::Monitor { sharing_level: 4 },
            MbSpec::Monitor { sharing_level: 4 },
        ];
        let cfg = ChainConfig::new(specs).with_f(1).with_workers(4);
        let chain = FtcChain::deploy(cfg);
        let n = 200;
        for i in 0..n {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(n as usize, Duration::from_secs(20));
        assert_eq!(got.len(), n as usize);
        for slot in &chain.replicas {
            assert_eq!(
                slot.state.own_store.peek_u64(b"mon:packets:g0"),
                Some(u64::from(n)),
                "shared counter must see every packet exactly once"
            );
        }
    }

    #[test]
    fn f0_runs_without_replication() {
        let chain = monitor_chain(2, 0);
        for i in 0..5 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(5, Duration::from_secs(5));
        assert_eq!(got.len(), 5);
        assert_eq!(
            chain
                .metrics
                .logs_applied
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }
}
