//! Control-plane surface of a replica and swappable data-plane ports.
//!
//! The control protocol ([`CtrlReq`]/[`CtrlResp`]) is defined here once,
//! together with its byte codec, and rides any transport backend through
//! the byte-level [`RpcCaller`]/[`RpcResponder`] traits: in one process the
//! bytes flow over a channel pair, across processes they ride a socket —
//! the protocol cannot drift between deployments because both speak the
//! same serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftc_net::rpc::RpcError;
use ftc_net::transport::{FrameRx, FrameTx, RpcCaller, RpcResponder};
use ftc_stm::StoreSnapshot;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Control requests served by a replica's control thread.
#[derive(Debug)]
pub enum CtrlReq {
    /// Liveness probe (heartbeat).
    Ping,
    /// Fetch the state of middlebox `mbox` for recovery. Serving this
    /// request *pauses* the replica's packet processing — "the replica that
    /// is the source for state recovery discards any out-of-order packets
    /// that have not been applied to its state store and will no longer
    /// admit packets in flight" (§4.1) — until [`CtrlReq::Resume`] arrives
    /// after rerouting.
    FetchState {
        /// Middlebox (position) whose store is requested.
        mbox: usize,
    },
    /// Resume packet processing after recovery rerouting completed.
    Resume,
}

/// Control responses.
#[derive(Debug)]
pub enum CtrlResp {
    /// Reply to [`CtrlReq::Ping`].
    Pong,
    /// Reply to [`CtrlReq::FetchState`].
    State {
        /// Deep copy of the store.
        snapshot: StoreSnapshot,
        /// The `MAX` dependency vector (or the head's sequence vector).
        max: Vec<u64>,
    },
    /// The replica does not replicate that middlebox.
    NotHere,
    /// Acknowledgement of [`CtrlReq::Resume`].
    Resumed,
}

// ---- byte codec -----------------------------------------------------------

const REQ_PING: u8 = 1;
const REQ_FETCH: u8 = 2;
const REQ_RESUME: u8 = 3;
const RESP_PONG: u8 = 1;
const RESP_STATE: u8 = 2;
const RESP_NOT_HERE: u8 = 3;
const RESP_RESUMED: u8 = 4;

/// Serialize a control request.
pub fn encode_req(req: &CtrlReq) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    match req {
        CtrlReq::Ping => b.put_u8(REQ_PING),
        CtrlReq::FetchState { mbox } => {
            b.put_u8(REQ_FETCH);
            b.put_u64(*mbox as u64);
        }
        CtrlReq::Resume => b.put_u8(REQ_RESUME),
    }
    b.freeze()
}

/// Deserialize a control request; `None` if the bytes are not a request.
pub fn decode_req(mut b: &[u8]) -> Option<CtrlReq> {
    if !b.has_remaining() {
        return None;
    }
    match b.get_u8() {
        REQ_PING => Some(CtrlReq::Ping),
        REQ_FETCH if b.remaining() >= 8 => Some(CtrlReq::FetchState {
            mbox: b.get_u64() as usize,
        }),
        REQ_RESUME => Some(CtrlReq::Resume),
        _ => None,
    }
}

/// Serialize a control response.
pub fn encode_resp(resp: &CtrlResp) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    match resp {
        CtrlResp::Pong => b.put_u8(RESP_PONG),
        CtrlResp::State { snapshot, max } => {
            b.put_u8(RESP_STATE);
            b.put_u32(snapshot.maps.len() as u32);
            for map in &snapshot.maps {
                b.put_u32(map.len() as u32);
                for (k, v) in map {
                    b.put_u32(k.len() as u32);
                    b.put_slice(k);
                    b.put_u32(v.len() as u32);
                    b.put_slice(v);
                }
            }
            b.put_u32(snapshot.seqs.len() as u32);
            for s in &snapshot.seqs {
                b.put_u64(*s);
            }
            b.put_u32(max.len() as u32);
            for m in max {
                b.put_u64(*m);
            }
        }
        CtrlResp::NotHere => b.put_u8(RESP_NOT_HERE),
        CtrlResp::Resumed => b.put_u8(RESP_RESUMED),
    }
    b.freeze()
}

fn take_bytes(b: &mut &[u8]) -> Option<Bytes> {
    if b.remaining() < 4 {
        return None;
    }
    let len = b.get_u32() as usize;
    if b.remaining() < len {
        return None;
    }
    let out = Bytes::copy_from_slice(&b[..len]);
    b.advance(len);
    Some(out)
}

/// Deserialize a control response; `None` if the bytes are not a response.
pub fn decode_resp(mut b: &[u8]) -> Option<CtrlResp> {
    if !b.has_remaining() {
        return None;
    }
    match b.get_u8() {
        RESP_PONG => Some(CtrlResp::Pong),
        RESP_STATE => {
            let b = &mut b;
            if b.remaining() < 4 {
                return None;
            }
            let n_maps = b.get_u32() as usize;
            let mut maps = Vec::with_capacity(n_maps);
            for _ in 0..n_maps {
                if b.remaining() < 4 {
                    return None;
                }
                let n = b.get_u32() as usize;
                let mut map = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = take_bytes(b)?;
                    let v = take_bytes(b)?;
                    map.push((k, v));
                }
                maps.push(map);
            }
            if b.remaining() < 4 {
                return None;
            }
            let n_seqs = b.get_u32() as usize;
            if b.remaining() < n_seqs * 8 + 4 {
                return None;
            }
            let seqs = (0..n_seqs).map(|_| b.get_u64()).collect();
            let n_max = b.get_u32() as usize;
            if b.remaining() < n_max * 8 {
                return None;
            }
            let max = (0..n_max).map(|_| b.get_u64()).collect();
            Some(CtrlResp::State {
                snapshot: StoreSnapshot { maps, seqs },
                max,
            })
        }
        RESP_NOT_HERE => Some(CtrlResp::NotHere),
        RESP_RESUMED => Some(CtrlResp::Resumed),
        _ => None,
    }
}

// ---- typed RPC wrappers ---------------------------------------------------

/// Client handle to a replica's control plane, over any transport backend.
pub struct CtrlClient {
    inner: Arc<dyn RpcCaller>,
}

impl Clone for CtrlClient {
    fn clone(&self) -> Self {
        CtrlClient {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl CtrlClient {
    /// Wraps a byte-level caller.
    pub fn from_caller(inner: Box<dyn RpcCaller>) -> CtrlClient {
        CtrlClient {
            inner: Arc::from(inner),
        }
    }

    /// A derived client talking to the same server but paying a different
    /// simulated one-way delay (in-process backend; real transports return
    /// an unchanged clone).
    pub fn with_delay(&self, one_way: Duration) -> CtrlClient {
        CtrlClient {
            inner: Arc::from(self.inner.with_delay(one_way)),
        }
    }

    /// Issues a call and waits up to `timeout` for the reply.
    pub fn call(&self, req: CtrlReq, timeout: Duration) -> Result<CtrlResp, RpcError> {
        let resp = self.inner.call_bytes(encode_req(&req), timeout)?;
        // An undecodable response means the peer speaks a different
        // protocol revision — indistinguishable from a dead peer.
        decode_resp(resp.as_ref()).ok_or(RpcError::Disconnected)
    }
}

/// Server side of a replica's control plane.
pub struct CtrlServer {
    inner: Box<dyn RpcResponder>,
}

impl CtrlServer {
    /// Wraps a byte-level responder.
    pub fn from_responder(inner: Box<dyn RpcResponder>) -> CtrlServer {
        CtrlServer { inner }
    }

    /// Serves at most one pending request using `handler`, waiting up to
    /// `timeout` for one to arrive. Returns whether a request was served.
    pub fn serve_next(
        &mut self,
        timeout: Duration,
        handler: impl FnOnce(CtrlReq) -> CtrlResp,
    ) -> Result<bool, RpcError> {
        let mut handler = Some(handler);
        self.inner.serve_next_bytes(timeout, &mut |req_bytes| {
            let resp = match (decode_req(req_bytes.as_ref()), handler.take()) {
                (Some(req), Some(h)) => h(req),
                // Garbled request or (impossible per contract) a second
                // dispatch: answer like a liveness probe, changing nothing.
                _ => CtrlResp::Pong,
            };
            encode_resp(&resp)
        })
    }
}

/// Creates an in-process control channel with the given one-way delay.
pub fn ctrl_pair(one_way: Duration) -> (CtrlClient, CtrlServer) {
    let (client, server) = ftc_net::rpc::rpc_pair::<Bytes, Bytes>(one_way);
    (
        CtrlClient::from_caller(Box::new(client)),
        CtrlServer::from_responder(Box::new(server)),
    )
}

// ---- swappable data-plane ports -------------------------------------------

/// A swappable outgoing reliable-link slot.
///
/// Data-plane threads send through whatever [`FrameTx`] is currently
/// installed; the orchestrator installs a fresh sender when rerouting
/// around a failed successor. An empty slot (mid-recovery) drops frames —
/// exactly the packet loss a rewired physical network would exhibit, and
/// recovered the same way (end-to-end retransmission / buffer resend).
pub struct OutPort {
    slot: Mutex<Option<Box<dyn FrameTx>>>,
}

impl OutPort {
    /// Creates an unwired port (drops frames until [`install`]ed).
    ///
    /// [`install`]: OutPort::install
    pub fn empty() -> OutPort {
        OutPort {
            slot: Mutex::new(None),
        }
    }

    /// Creates a port pre-wired with `sender`.
    pub fn wired(sender: impl FrameTx + 'static) -> OutPort {
        OutPort {
            slot: Mutex::new(Some(Box::new(sender))),
        }
    }

    /// Sends a frame through the current link, if any.
    pub fn send(&self, frame: BytesMut) {
        let mut slot = self.slot.lock();
        if let Some(tx) = slot.as_mut() {
            if tx.send(frame).is_err() {
                // Successor is gone; drop until rerouted.
                *slot = None;
            }
        }
    }

    /// Runs the sender's retransmission/ACK processing.
    pub fn poll(&self) {
        let mut slot = self.slot.lock();
        if let Some(tx) = slot.as_mut() {
            if tx.poll().is_err() {
                *slot = None;
            }
        }
    }

    /// Installs a new link (rerouting).
    pub fn install(&self, sender: impl FrameTx + 'static) {
        *self.slot.lock() = Some(Box::new(sender));
    }

    /// True if a live link is installed.
    pub fn is_wired(&self) -> bool {
        self.slot.lock().is_some()
    }
}

/// A swappable incoming reliable-link slot.
pub struct InPort {
    slot: Mutex<Option<Box<dyn FrameRx>>>,
}

impl InPort {
    /// Creates an unwired port (returns `None` until [`install`]ed).
    ///
    /// [`install`]: InPort::install
    pub fn empty() -> InPort {
        InPort {
            slot: Mutex::new(None),
        }
    }

    /// Creates a port pre-wired with `receiver`.
    pub fn wired(receiver: impl FrameRx + 'static) -> InPort {
        InPort {
            slot: Mutex::new(Some(Box::new(receiver))),
        }
    }

    /// Receives the next in-order frame, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<BytesMut> {
        let mut slot = self.slot.lock();
        match slot.as_mut() {
            Some(rx) => match rx.recv_timeout(timeout) {
                Ok(f) => f,
                Err(_) => {
                    *slot = None;
                    None
                }
            },
            None => {
                // Unwired (predecessor died): emulate the blocking recv's
                // bounded wait so callers don't spin. Not a polling loop —
                // there is no event source to wait on until `install`.
                drop(slot);
                // forbidden-ok: thread-sleep
                std::thread::sleep(timeout.min(Duration::from_millis(1)));
                None
            }
        }
    }

    /// Installs a new link (rerouting).
    pub fn install(&self, receiver: impl FrameRx + 'static) {
        *self.slot.lock() = Some(Box::new(receiver));
    }

    /// True if a live link is installed.
    pub fn is_wired(&self) -> bool {
        self.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_net::{reliable_pair, Endpoint};

    #[test]
    fn ports_relay_frames() {
        let (tx, rx) = reliable_pair(&Endpoint::in_proc());
        let out = OutPort::wired(tx);
        let inp = InPort::wired(rx);
        out.send(BytesMut::from(&b"hello"[..]));
        let f = inp.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&f[..], b"hello");
    }

    #[test]
    fn unwired_ports_drop_and_dont_block() {
        let out = OutPort::empty();
        out.send(BytesMut::from(&b"x"[..])); // silently dropped
        assert!(!out.is_wired());
        let inp = InPort::empty();
        let t0 = std::time::Instant::now();
        assert!(inp.recv_timeout(Duration::from_millis(2)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(1), "must back off");
    }

    #[test]
    fn install_swaps_links() {
        let out = OutPort::empty();
        let inp = InPort::empty();
        let (tx, rx) = reliable_pair(&Endpoint::in_proc());
        out.install(tx);
        inp.install(rx);
        out.send(BytesMut::from(&b"rewired"[..]));
        let f = inp.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&f[..], b"rewired");
    }

    #[test]
    fn dead_peer_unwires_sender() {
        let (tx, rx) = reliable_pair(&Endpoint::in_proc());
        let out = OutPort::wired(tx);
        drop(rx);
        out.send(BytesMut::from(&b"x"[..]));
        assert!(!out.is_wired(), "send to dead peer unwires the port");
    }

    #[test]
    fn ctrl_codec_roundtrips() {
        for req in [
            CtrlReq::Ping,
            CtrlReq::FetchState { mbox: 7 },
            CtrlReq::Resume,
        ] {
            let enc = encode_req(&req);
            let dec = decode_req(enc.as_ref()).unwrap();
            assert_eq!(format!("{req:?}"), format!("{dec:?}"));
        }
        let snapshot = StoreSnapshot {
            maps: vec![
                vec![
                    (Bytes::copy_from_slice(b"k1"), Bytes::copy_from_slice(b"v1")),
                    (Bytes::copy_from_slice(b""), Bytes::copy_from_slice(b"v2")),
                ],
                vec![],
            ],
            seqs: vec![3, 0],
        };
        for resp in [
            CtrlResp::Pong,
            CtrlResp::State {
                snapshot,
                max: vec![9, 8, 7],
            },
            CtrlResp::NotHere,
            CtrlResp::Resumed,
        ] {
            let enc = encode_resp(&resp);
            let dec = decode_resp(enc.as_ref()).unwrap();
            assert_eq!(format!("{resp:?}"), format!("{dec:?}"));
        }
        assert!(decode_req(&[]).is_none());
        assert!(decode_req(&[99]).is_none());
        assert!(decode_resp(&[RESP_STATE, 0, 0]).is_none(), "truncated");
    }

    #[test]
    fn ctrl_pair_calls_roundtrip() {
        let (client, mut server) = ctrl_pair(Duration::ZERO);
        let h = std::thread::spawn(move || {
            server
                .serve_next(Duration::from_secs(1), |req| match req {
                    CtrlReq::FetchState { mbox } => CtrlResp::State {
                        snapshot: StoreSnapshot {
                            maps: vec![vec![]],
                            seqs: vec![mbox as u64],
                        },
                        max: vec![1],
                    },
                    _ => CtrlResp::Pong,
                })
                .unwrap()
        });
        match client
            .call(CtrlReq::FetchState { mbox: 5 }, Duration::from_secs(1))
            .unwrap()
        {
            CtrlResp::State { snapshot, max } => {
                assert_eq!(snapshot.seqs, vec![5]);
                assert_eq!(max, vec![1]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert!(h.join().unwrap());
    }
}
