//! Control-plane surface of a replica and swappable data-plane ports.

use ftc_net::link::Disconnected;
use ftc_net::reliable::{ReliableReceiver, ReliableSender};
use ftc_net::rpc::{RpcClient, RpcServer};
use ftc_stm::StoreSnapshot;
use parking_lot::Mutex;
use std::time::Duration;

/// Control requests served by a replica's control thread.
#[derive(Debug)]
pub enum CtrlReq {
    /// Liveness probe (heartbeat).
    Ping,
    /// Fetch the state of middlebox `mbox` for recovery. Serving this
    /// request *pauses* the replica's packet processing — "the replica that
    /// is the source for state recovery discards any out-of-order packets
    /// that have not been applied to its state store and will no longer
    /// admit packets in flight" (§4.1) — until [`CtrlReq::Resume`] arrives
    /// after rerouting.
    FetchState {
        /// Middlebox (position) whose store is requested.
        mbox: usize,
    },
    /// Resume packet processing after recovery rerouting completed.
    Resume,
}

/// Control responses.
#[derive(Debug)]
pub enum CtrlResp {
    /// Reply to [`CtrlReq::Ping`].
    Pong,
    /// Reply to [`CtrlReq::FetchState`].
    State {
        /// Deep copy of the store.
        snapshot: StoreSnapshot,
        /// The `MAX` dependency vector (or the head's sequence vector).
        max: Vec<u64>,
    },
    /// The replica does not replicate that middlebox.
    NotHere,
    /// Acknowledgement of [`CtrlReq::Resume`].
    Resumed,
}

/// Client handle to a replica's control plane.
pub type CtrlClient = RpcClient<CtrlReq, CtrlResp>;
/// Server side of a replica's control plane.
pub type CtrlServer = RpcServer<CtrlReq, CtrlResp>;

/// A swappable outgoing reliable-link slot.
///
/// Data-plane threads send through whatever sender is currently installed;
/// the orchestrator installs a fresh sender when rerouting around a failed
/// successor. An empty slot (mid-recovery) drops frames — exactly the
/// packet loss a rewired physical network would exhibit, and recovered the
/// same way (end-to-end retransmission / buffer resend).
pub struct OutPort {
    slot: Mutex<Option<ReliableSender>>,
}

impl OutPort {
    /// Creates a port, optionally pre-wired.
    pub fn new(sender: Option<ReliableSender>) -> OutPort {
        OutPort {
            slot: Mutex::new(sender),
        }
    }

    /// Sends a frame through the current link, if any.
    pub fn send(&self, frame: bytes::BytesMut) {
        let mut slot = self.slot.lock();
        if let Some(tx) = slot.as_mut() {
            if tx.send(frame).is_err() {
                // Successor is gone; drop until rerouted.
                *slot = None;
            }
        }
    }

    /// Runs the sender's retransmission/ACK processing.
    pub fn poll(&self) {
        let mut slot = self.slot.lock();
        if let Some(tx) = slot.as_mut() {
            if tx.poll().is_err() {
                *slot = None;
            }
        }
    }

    /// Installs a new link (rerouting).
    pub fn install(&self, sender: ReliableSender) {
        *self.slot.lock() = Some(sender);
    }

    /// True if a live link is installed.
    pub fn is_wired(&self) -> bool {
        self.slot.lock().is_some()
    }
}

/// A swappable incoming reliable-link slot.
pub struct InPort {
    slot: Mutex<Option<ReliableReceiver>>,
}

impl InPort {
    /// Creates a port, optionally pre-wired.
    pub fn new(receiver: Option<ReliableReceiver>) -> InPort {
        InPort {
            slot: Mutex::new(receiver),
        }
    }

    /// Receives the next in-order frame, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<bytes::BytesMut> {
        let mut slot = self.slot.lock();
        match slot.as_mut() {
            Some(rx) => match rx.recv_timeout(timeout) {
                Ok(f) => f,
                Err(Disconnected) => {
                    *slot = None;
                    None
                }
            },
            None => {
                // Unwired (predecessor died): emulate the blocking recv's
                // bounded wait so callers don't spin. Not a polling loop —
                // there is no event source to wait on until `install`.
                drop(slot);
                // forbidden-ok: thread-sleep
                std::thread::sleep(timeout.min(Duration::from_millis(1)));
                None
            }
        }
    }

    /// Installs a new link (rerouting).
    pub fn install(&self, receiver: ReliableReceiver) {
        *self.slot.lock() = Some(receiver);
    }

    /// True if a live link is installed.
    pub fn is_wired(&self) -> bool {
        self.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use ftc_net::{reliable_pair, LinkConfig};

    #[test]
    fn ports_relay_frames() {
        let (tx, rx) = reliable_pair(LinkConfig::ideal());
        let out = OutPort::new(Some(tx));
        let inp = InPort::new(Some(rx));
        out.send(BytesMut::from(&b"hello"[..]));
        let f = inp.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&f[..], b"hello");
    }

    #[test]
    fn unwired_ports_drop_and_dont_block() {
        let out = OutPort::new(None);
        out.send(BytesMut::from(&b"x"[..])); // silently dropped
        assert!(!out.is_wired());
        let inp = InPort::new(None);
        let t0 = std::time::Instant::now();
        assert!(inp.recv_timeout(Duration::from_millis(2)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(1), "must back off");
    }

    #[test]
    fn install_swaps_links() {
        let out = OutPort::new(None);
        let inp = InPort::new(None);
        let (tx, rx) = reliable_pair(LinkConfig::ideal());
        out.install(tx);
        inp.install(rx);
        out.send(BytesMut::from(&b"rewired"[..]));
        let f = inp.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&f[..], b"rewired");
    }

    #[test]
    fn dead_peer_unwires_sender() {
        let (tx, rx) = reliable_pair(LinkConfig::ideal());
        let out = OutPort::new(Some(tx));
        drop(rx);
        out.send(BytesMut::from(&b"x"[..]));
        assert!(!out.is_wired(), "send to dead peer unwires the port");
    }
}
