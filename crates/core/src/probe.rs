//! Step-granular instrumentation hooks for protocol model checking.
//!
//! The protocol elements ([`crate::replica::ReplicaState`],
//! [`crate::buffer::BufferState`], [`crate::forwarder::ForwarderState`] and
//! the recovery driver in [`crate::recovery`]) each embed a [`ProbeSlot`].
//! When a probe is installed, every protocol step of interest reports a
//! [`ProbePoint`] and the probe answers with a [`ProbeVerdict`]: either
//! continue, or fail-stop the component *at that exact point* — state
//! mutated so far persists, the in-progress output is discarded, exactly
//! like a server crashing between two instructions.
//!
//! This is what lets `ftc-audit::protocol` drive a deterministic
//! [`SyncChain`](crate::testkit::SyncChain) through every crash point of
//! the paper's §5 protocol (pre-piggyback, post-apply-pre-forward,
//! post-forward, during recovery) without forking the production code: the
//! same `finish()` path that runs on real threads is the one the model
//! checker crashes mid-step. With no probe installed the hot path pays one
//! `Acquire` load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A protocol step a probe can observe (and veto).
///
/// Replica-side points bracket the steps of `ReplicaState::finish` (paper
/// §5.1): the transaction has committed locally at `PrePiggyback`, the
/// outgoing message is fully assembled at `PostApplyPreForward`, and the
/// frame is on the wire at `PostForward`. Crashing at each point loses a
/// different prefix of the protocol's obligations, which is exactly the
/// case split of the §6 correctness argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbePoint {
    /// Replica `replica` committed its own transaction but has not yet
    /// appended its piggyback log to the outgoing message. A crash here
    /// loses the local commit entirely — no log ever leaves the server.
    PrePiggyback {
        /// Ring position of the replica.
        replica: usize,
    },
    /// Replica `replica` applied predecessor logs, appended its own log and
    /// attached its commit vector, but has not yet handed the frame to the
    /// output port. A crash here loses the frame but keeps the applies.
    PostApplyPreForward {
        /// Ring position of the replica.
        replica: usize,
    },
    /// Replica `replica` has forwarded the frame. A crash here kills the
    /// server with the packet already safely downstream.
    PostForward {
        /// Ring position of the replica.
        replica: usize,
    },
    /// The buffer's release rule fired: commit vectors dominate the
    /// dependency vectors of all `reqs` (pairs of middlebox position and
    /// dependency entries `(partition, seq)`), and the held packet is about
    /// to egress. Observation point for the `f + 1`-replication invariant.
    BufferRelease {
        /// `(mbox, dep entries)` the release rule just proved committed.
        reqs: Vec<(usize, Vec<(u16, u64)>)>,
    },
    /// The forwarder ingested a feedback message carrying `logs` wrapped
    /// logs from the buffer.
    ForwarderFeedback {
        /// Number of logs now pending a carrier packet.
        logs: usize,
    },
    /// Recovery of `recovering` is about to fetch middlebox `mbox`'s state
    /// from replica `source`. A `Crash` verdict here abandons the
    /// half-recovered replacement (the during-recovery crash point).
    RecoveryFetch {
        /// The replica being rebuilt.
        recovering: usize,
        /// The group member about to serve.
        source: usize,
        /// The middlebox whose state is fetched.
        mbox: usize,
    },
    /// A planned-reconfiguration step (scale/migrate/splice handshake,
    /// [`crate::reconfig`]) reached an observable point. A `Crash` verdict
    /// fail-stops `role` — the source or destination instance, or the
    /// orchestrator driving the handshake — at exactly that point, which
    /// is the case split of the crash-during-reconfiguration matrix.
    /// During the transfer phase the point fires once per partition moved,
    /// so triggers can select "after `k` partitions landed".
    Reconfig {
        /// The operation in progress.
        op: crate::reconfig::ReconfigOp,
        /// The handshake phase.
        phase: crate::reconfig::ReconfigPhase,
        /// The participant at this point (the crash victim on `Crash`).
        role: crate::reconfig::ReconfigActor,
        /// The (primary) ring position being reconfigured.
        mbox: usize,
    },
}

/// What the probe wants the component to do at a [`ProbePoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeVerdict {
    /// Proceed normally.
    #[default]
    Continue,
    /// Fail-stop at this exact point: keep state mutated so far, discard
    /// the in-progress output, process nothing further.
    Crash,
}

/// A model-checker hook observing protocol steps.
pub trait ProtocolProbe: Send + Sync {
    /// Called at each instrumented step; the verdict is honored
    /// immediately by the reporting component.
    fn on_step(&self, point: ProbePoint) -> ProbeVerdict;
}

/// An optional, swappable probe embedded in a protocol component.
///
/// `armed` mirrors the slot's occupancy so the uninstrumented hot path is
/// a single `Acquire` load; install/clear are cold control-plane calls.
#[derive(Default)]
pub struct ProbeSlot {
    armed: AtomicBool,
    probe: parking_lot::RwLock<Option<Arc<dyn ProtocolProbe>>>,
}

impl ProbeSlot {
    /// Creates an empty slot.
    pub fn new() -> ProbeSlot {
        ProbeSlot::default()
    }

    /// Installs `probe`, replacing any previous one.
    pub fn install(&self, probe: Arc<dyn ProtocolProbe>) {
        *self.probe.write() = Some(probe);
        self.armed.store(true, Ordering::Release);
    }

    /// Removes the probe.
    pub fn clear(&self) {
        self.armed.store(false, Ordering::Release);
        *self.probe.write() = None;
    }

    /// True when a probe is installed (use to skip building an expensive
    /// [`ProbePoint`] payload on the uninstrumented path).
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Reports `point` to the installed probe, if any.
    pub fn observe(&self, point: ProbePoint) -> ProbeVerdict {
        if !self.armed() {
            return ProbeVerdict::Continue;
        }
        match self.probe.read().as_ref() {
            Some(p) => p.on_step(point),
            None => ProbeVerdict::Continue,
        }
    }

    /// Reports the point built by `make` only when a probe is installed.
    pub fn observe_with(&self, make: impl FnOnce() -> ProbePoint) -> ProbeVerdict {
        if !self.armed() {
            return ProbeVerdict::Continue;
        }
        self.observe(make())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counting {
        seen: AtomicUsize,
        verdict: ProbeVerdict,
    }
    impl ProtocolProbe for Counting {
        fn on_step(&self, _point: ProbePoint) -> ProbeVerdict {
            self.seen.fetch_add(1, Ordering::SeqCst);
            self.verdict
        }
    }

    #[test]
    fn empty_slot_continues_without_building_points() {
        let slot = ProbeSlot::new();
        assert!(!slot.armed());
        let mut built = false;
        let v = slot.observe_with(|| {
            built = true;
            ProbePoint::PostForward { replica: 0 }
        });
        assert_eq!(v, ProbeVerdict::Continue);
        assert!(!built, "payload must not be built when unarmed");
    }

    #[test]
    fn installed_probe_sees_points_and_verdict_propagates() {
        let slot = ProbeSlot::new();
        let probe = Arc::new(Counting {
            seen: AtomicUsize::new(0),
            verdict: ProbeVerdict::Crash,
        });
        slot.install(Arc::clone(&probe) as Arc<dyn ProtocolProbe>);
        assert!(slot.armed());
        let v = slot.observe(ProbePoint::PrePiggyback { replica: 2 });
        assert_eq!(v, ProbeVerdict::Crash);
        assert_eq!(probe.seen.load(Ordering::SeqCst), 1);
        slot.clear();
        assert_eq!(
            slot.observe(ProbePoint::PrePiggyback { replica: 2 }),
            ProbeVerdict::Continue
        );
        assert_eq!(probe.seen.load(Ordering::SeqCst), 1);
    }
}
