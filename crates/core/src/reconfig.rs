//! Shared vocabulary for planned reconfiguration (ROADMAP item 2).
//!
//! The paper only covers fail-stop *replacement*: a replica dies and §5.2
//! rebuilds it from its group. Planned reconfiguration — scaling a
//! middlebox's worker count, migrating an instance to a fresh replica, or
//! splicing a middlebox into/out of a live chain — reuses the same state
//! machinery but is driven as a four-phase handshake:
//!
//! 1. **Prepare** — the source instance is quiesced exactly like a §4.1
//!    recovery source (pause, discard parked packets) and *seals* its
//!    partition claims: it still holds the state, but stops being
//!    serviceable while the state is copied off.
//! 2. **Transfer** — the committed prefix moves to the destination, one
//!    [`PartitionExport`](ftc_stm::PartitionExport) at a time through the
//!    wire codec, so the transfer is incremental and byte-compatible with
//!    the socket transport.
//! 3. **Switch** — the commit point: ring links are re-stitched to the
//!    destination and it claims ownership of every partition. A crash
//!    *before* this point rolls the operation back (the old configuration
//!    stays intact); a crash *after* it rolls forward (the new
//!    configuration is repaired with standard §5.2 recovery).
//! 4. **Release** — the retired source gives up its claims and is
//!    decommissioned.
//!
//! The types here are the shared enumeration used by the engines (the
//! deterministic [`SyncChain`](crate::testkit::SyncChain) handover and the
//! threaded orchestrator in `ftc-orch`), by the step-granular
//! [`ProbePoint::Reconfig`](crate::probe::ProbePoint) crash hooks, and by
//! the `ftc-audit` reconfiguration model checker, which folds the
//! [`ClaimSample`] traces into the I5 (single serviceable owner) and I6
//! (transferred = committed prefix) invariants.

use ftc_stm::{PartitionId, StateBackend, StoreSnapshot};

/// A planned reconfiguration operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconfigOp {
    /// Move a middlebox instance to a fresh replica at the same position.
    Migrate,
    /// Change an instance's worker count via the same handover (the
    /// replacement is built with the new parallelism; state carries over).
    Scale,
    /// Insert a middlebox into the chain at a position.
    SpliceIn,
    /// Remove the middlebox at a position from the chain.
    SpliceOut,
}

impl ReconfigOp {
    /// Short label for witnesses and journal lines.
    pub fn label(&self) -> &'static str {
        match self {
            ReconfigOp::Migrate => "migrate",
            ReconfigOp::Scale => "scale",
            ReconfigOp::SpliceIn => "splice-in",
            ReconfigOp::SpliceOut => "splice-out",
        }
    }
}

/// The four phases of the reconfiguration handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconfigPhase {
    /// Quiesce and seal the source (§4.1 source rule).
    Prepare,
    /// Move the committed prefix, partition by partition.
    Transfer,
    /// Commit point: re-stitch links, destination claims ownership.
    Switch,
    /// Retire the source: unclaim and decommission.
    Release,
}

impl ReconfigPhase {
    /// Short label for witnesses and journal lines.
    pub fn label(&self) -> &'static str {
        match self {
            ReconfigPhase::Prepare => "prepare",
            ReconfigPhase::Transfer => "transfer",
            ReconfigPhase::Switch => "switch",
            ReconfigPhase::Release => "release",
        }
    }
}

/// Which protocol participant a reconfiguration probe point (or crash)
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconfigActor {
    /// The instance giving up state (the old instance).
    Source,
    /// The instance receiving state (the new instance).
    Destination,
    /// The driver of the handshake.
    Orchestrator,
}

impl ReconfigActor {
    /// Short label for witnesses and journal lines.
    pub fn label(&self) -> &'static str {
        match self {
            ReconfigActor::Source => "source",
            ReconfigActor::Destination => "destination",
            ReconfigActor::Orchestrator => "orchestrator",
        }
    }
}

/// How a reconfiguration attempt died.
///
/// Every variant leaves the chain in a *defined* state, stated per
/// variant: either the old configuration is intact (the operation rolls
/// back and can simply be retried), or the crash maps onto the already
/// -verified fail-stop path (a position is dead and standard §5.2
/// recovery repairs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigFailure {
    /// The source instance died at `phase`. The position is fail-stopped;
    /// recover it from the replication group like any crash.
    SourceCrashed {
        /// Phase the crash fired in.
        phase: ReconfigPhase,
    },
    /// The destination instance died at `phase`. Before [`Switch`]
    /// (`Transfer`) the half-built destination is discarded and the source
    /// resumes — old configuration intact, retry at will. At [`Switch`]
    /// the new instance already owns the position, so the position is
    /// fail-stopped on the *new* configuration and §5.2 recovery repairs
    /// it (roll forward).
    ///
    /// [`Switch`]: ReconfigPhase::Switch
    DestinationCrashed {
        /// Phase the crash fired in.
        phase: ReconfigPhase,
    },
    /// The orchestrator died between phases. Before [`Switch`] the
    /// operation rolls back (source resumed, destination discarded);
    /// at [`Release`] it rolls forward (the destination serves; the
    /// sealed source is merely never decommissioned — sealed claims are
    /// not serviceable, so I5 is preserved).
    ///
    /// [`Switch`]: ReconfigPhase::Switch
    /// [`Release`]: ReconfigPhase::Release
    OrchestratorCrashed {
        /// Phase the crash fired in.
        phase: ReconfigPhase,
    },
    /// A splice found the chain not fully live and drained after the
    /// prepare quiescence; the operation aborts with the old chain intact.
    NotQuiescent,
}

impl std::fmt::Display for ReconfigFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigFailure::SourceCrashed { phase } => {
                write!(f, "source crashed at {}", phase.label())
            }
            ReconfigFailure::DestinationCrashed { phase } => {
                write!(f, "destination crashed at {}", phase.label())
            }
            ReconfigFailure::OrchestratorCrashed { phase } => {
                write!(f, "orchestrator crashed at {}", phase.label())
            }
            ReconfigFailure::NotQuiescent => write!(f, "chain not quiescent at prepare"),
        }
    }
}

impl std::error::Error for ReconfigFailure {}

/// One instance's claim-table view at an observable point, tagged with the
/// ring position whose flow partitions the claims govern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimView {
    /// Ring position of the middlebox the instance serves (or served).
    pub position: usize,
    /// Where the instance sits in the topology: `"chain"` (currently
    /// wired), `"incoming"` (destination being built), `"outgoing"`
    /// (source past the switch), `"retired"` (decommissioned).
    pub tag: &'static str,
    /// False once the instance has fail-stopped (a dead instance
    /// processes nothing, so its stale claims cannot violate I5).
    pub alive: bool,
    /// Per-partition `(claimed, sealed)` flags.
    pub flags: Vec<(bool, bool)>,
}

impl ClaimView {
    /// True when this instance would serve packets touching partition `p`:
    /// alive, claimed, and not sealed.
    pub fn serviceable(&self, p: PartitionId) -> bool {
        self.alive
            && self
                .flags
                .get(p as usize)
                .map(|&(c, s)| c && !s)
                .unwrap_or(false)
    }
}

/// The fold of every instance's [`ClaimView`] at one observable point of a
/// reconfiguration. The I5 checker asserts that, per `(position,
/// partition)`, at most one view is serviceable at every sample and
/// exactly one once the operation completes.
#[derive(Debug, Clone)]
pub struct ClaimSample {
    /// The operation being executed.
    pub op: ReconfigOp,
    /// Phase the sample was taken in.
    pub phase: ReconfigPhase,
    /// Actor whose probe point produced the sample.
    pub role: ReconfigActor,
    /// All instances' claim views, including retired and in-flight ones.
    pub views: Vec<ClaimView>,
}

impl ClaimSample {
    /// Number of serviceable claimants for `(position, p)` in this sample.
    pub fn serviceable_count(&self, position: usize, p: PartitionId) -> usize {
        self.views
            .iter()
            .filter(|v| v.position == position && v.serviceable(p))
            .count()
    }
}

/// What a completed transfer moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Encoded bytes that went through the partition-export codec.
    pub transferred: usize,
    /// Partitions moved.
    pub partitions: usize,
}

/// The source's committed prefix, captured at the seal point of the
/// prepare phase. I6 asserts the destination equals exactly this after the
/// transfer: nothing lost, nothing duplicated.
#[derive(Debug, Clone)]
pub struct SealRecord {
    /// Key-sorted snapshot of the source's own store at the seal.
    pub snapshot: StoreSnapshot,
    /// Per-partition commit sequence numbers at the seal.
    pub seqs: Vec<u64>,
}

/// The full record of one reconfiguration attempt: outcome, the I5 claim
/// trace sampled at every probe point, and the I6 seal record.
#[derive(Debug)]
pub struct ReconfigRun {
    /// The operation attempted.
    pub op: ReconfigOp,
    /// The (primary) ring position it targeted.
    pub position: usize,
    /// `Ok` with transfer stats, or the defined-state failure.
    pub outcome: Result<ReconfigStats, ReconfigFailure>,
    /// Claim-table samples at every observable point, in order.
    pub trace: Vec<ClaimSample>,
    /// The source's committed prefix at the seal (absent when the run
    /// died before sealing).
    pub seal: Option<SealRecord>,
}

/// Which side a partition transfer was interrupted on (a crash verdict
/// from the per-chunk probe points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferInterrupt {
    /// The source died after exporting `0`-indexed partition.
    Source(PartitionId),
    /// The destination died after importing the partition.
    Destination(PartitionId),
}

/// Moves every partition of `src` into `dst` through the
/// [`PartitionExport`](ftc_stm::PartitionExport) wire codec — the same
/// bytes a socket transport would carry — so transfers are incremental,
/// byte-compatible, and resumable per partition (imports are idempotent).
///
/// `exported(p)` runs after partition `p` leaves the source and
/// `imported(p)` after it lands at the destination; returning `false`
/// fail-stops that side mid-transfer (the model checker's crash hooks).
/// Returns the encoded byte count on completion.
///
/// Source and destination are [`StateBackend`]s, not concrete stores: a
/// migration may land on a replica running a *different* engine (say 2PL
/// to epoch-batched), and the wire frames are identical either way — the
/// export codec sees only map plus sequence number.
pub fn transfer_store(
    src: &dyn StateBackend,
    dst: &dyn StateBackend,
    mut exported: impl FnMut(PartitionId) -> bool,
    mut imported: impl FnMut(PartitionId) -> bool,
) -> Result<usize, TransferInterrupt> {
    let mut bytes = 0;
    for p in 0..src.partitions() as u16 {
        let wire = src.export_partition(p).encode();
        bytes += wire.len();
        if !exported(p) {
            return Err(TransferInterrupt::Source(p));
        }
        let ex = ftc_stm::PartitionExport::decode(&wire).expect("self-encoded export");
        dst.import_partition(&ex);
        if !imported(p) {
            return Err(TransferInterrupt::Destination(p));
        }
    }
    Ok(bytes)
}

/// True when the skip-release sabotage fixture is compiled in: the engine
/// drops the release message and the source's failure-assumption timeout
/// resumes it while the destination already switched — the deliberate
/// protocol bug that must make the I5 checker fire.
pub fn sabotage_skip_release() -> bool {
    cfg!(feature = "sabotage-skip-release")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_stm::{EngineKind, StateBackendExt, StateStore};

    #[test]
    fn transfer_store_moves_everything_through_the_codec() {
        let src = StateStore::new(8);
        src.transaction(|txn| {
            txn.write_u64(bytes::Bytes::from_static(b"mon:packets:g0"), 1)?;
            txn.write_u64(bytes::Bytes::from_static(b"mon:bytes:g0"), 64)?;
            Ok(())
        });
        let dst = StateStore::new(8);
        let bytes = transfer_store(&src, &dst, |_| true, |_| true).unwrap();
        assert!(bytes > 0);
        assert_eq!(dst.snapshot(), src.snapshot());
        assert_eq!(dst.seq_vector(), src.seq_vector());
    }

    #[test]
    fn transfer_store_migrates_across_engines_in_both_directions() {
        for (from, to) in [
            (EngineKind::TwoPl, EngineKind::Batched),
            (EngineKind::Batched, EngineKind::TwoPl),
        ] {
            let src = from.build(8);
            src.transaction(|txn| {
                txn.write_u64(bytes::Bytes::from_static(b"mon:packets:g0"), 3)?;
                txn.write(
                    bytes::Bytes::from_static(b"lb:backend:f1"),
                    bytes::Bytes::from_static(b"10.0.0.2"),
                )?;
                Ok(())
            });
            let dst = to.build(8);
            let bytes = transfer_store(&*src, &*dst, |_| true, |_| true).unwrap();
            assert!(bytes > 0, "{from} -> {to}");
            assert_eq!(dst.snapshot(), src.snapshot(), "{from} -> {to}");
            assert_eq!(dst.seq_vector(), src.seq_vector(), "{from} -> {to}");
        }
    }

    #[test]
    fn transfer_interrupts_name_the_failing_side() {
        let src = StateStore::new(4);
        let dst = StateStore::new(4);
        assert_eq!(
            transfer_store(&src, &dst, |p| p < 2, |_| true),
            Err(TransferInterrupt::Source(2))
        );
        assert_eq!(
            transfer_store(&src, &dst, |_| true, |p| p < 1),
            Err(TransferInterrupt::Destination(1))
        );
    }

    #[test]
    fn serviceable_needs_alive_claimed_unsealed() {
        let view = |alive, c, s| ClaimView {
            position: 0,
            tag: "chain",
            alive,
            flags: vec![(c, s)],
        };
        assert!(view(true, true, false).serviceable(0));
        assert!(!view(false, true, false).serviceable(0));
        assert!(!view(true, false, false).serviceable(0));
        assert!(!view(true, true, true).serviceable(0));
        assert!(!view(true, true, false).serviceable(7), "out of range");
    }

    #[test]
    fn sample_counts_serviceable_claimants_per_position() {
        let mk = |position, alive, sealed| ClaimView {
            position,
            tag: "chain",
            alive,
            flags: vec![(true, sealed); 2],
        };
        let sample = ClaimSample {
            op: ReconfigOp::Migrate,
            phase: ReconfigPhase::Switch,
            role: ReconfigActor::Orchestrator,
            views: vec![mk(1, true, false), mk(1, true, true), mk(2, true, false)],
        };
        assert_eq!(sample.serviceable_count(1, 0), 1, "sealed does not count");
        assert_eq!(sample.serviceable_count(2, 0), 1);
        assert_eq!(sample.serviceable_count(0, 0), 0);
    }
}
