//! Schedule-exploration property tests: under *any* interleaving of
//! component steps (and any chain shape), the protocol releases every
//! packet exactly once and converges to fully replicated state.

use ftc_core::config::ChainConfig;
use ftc_core::testkit::{Step, SyncChain};
use ftc_packet::builder::UdpPacketBuilder;
use ftc_packet::Packet;
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn pkt(i: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 2, 0, 1), 1000 + (i % 24))
        .dst(Ipv4Addr::new(10, 3, 0, 1), 80)
        .ident(i)
        .build()
}

fn arb_step(n: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..n).prop_map(Step::Replica),
        1 => Just(Step::ForwarderFeedback),
        1 => Just(Step::ForwarderTimer),
        2 => Just(Step::Buffer),
        1 => Just(Step::BufferTimer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any step schedule, any (n, f), any injection pattern: exactly-once
    /// release + converged replication once the chain quiesces.
    #[test]
    fn any_schedule_converges(
        n in 2usize..5,
        f_raw in 1usize..3,
        packets in 1u16..25,
        inject_gaps in vec(0usize..6, 1..25),
        schedule in vec((0usize..5, 0usize..5), 0..300),
    ) {
        let f = f_raw.min(n - 1);
        let chain = SyncChain::new(ChainConfig::ch_n(n, 1).with_f(f));

        // Interleave injections with schedule chunks.
        let mut injected = 0u16;
        let mut sched_iter = schedule.into_iter();
        for gap in inject_gaps.iter().cycle().take(packets as usize) {
            chain.inject(pkt(injected));
            injected += 1;
            for _ in 0..*gap {
                if let Some((kind, idx)) = sched_iter.next() {
                    let step = match kind {
                        0 => Step::Replica(idx % n),
                        1 => Step::ForwarderFeedback,
                        2 => Step::ForwarderTimer,
                        3 => Step::Buffer,
                        _ => Step::BufferTimer,
                    };
                    chain.step(step);
                } else {
                    break;
                }
            }
        }
        // Drain the remaining schedule, then run to quiescence.
        for (kind, idx) in sched_iter {
            let step = match kind {
                0 => Step::Replica(idx % n),
                1 => Step::ForwarderFeedback,
                2 => Step::ForwarderTimer,
                3 => Step::Buffer,
                _ => Step::BufferTimer,
            };
            chain.step(step);
        }
        chain.run_to_quiescence(5_000);

        let got = chain.egress().drain();
        prop_assert_eq!(got.len() as u16, injected, "exactly-once release");
        prop_assert_eq!(chain.held(), 0, "no packet withheld at quiescence");

        // Every replica of every group converged to the head's state.
        let total = u64::from(injected);
        for (m, head) in chain.replicas.iter().enumerate() {
            prop_assert_eq!(head.own_store.peek_u64(b"mon:packets:g0"), Some(total));
            for k in 1..=f {
                let r = (m + k) % n;
                let copy = &chain.replicas[r].replicated[&m];
                prop_assert_eq!(
                    copy.store.peek_u64(b"mon:packets:g0"),
                    Some(total),
                    "m{} at r{} (n={}, f={})", m, r, n, f
                );
                prop_assert_eq!(copy.max.vector(), head.own_store.seq_vector());
            }
        }
    }

    /// The arbitrary-step smoke: no schedule may panic or wedge the
    /// protocol objects (even steps on empty components).
    #[test]
    fn random_steps_never_panic(steps in vec(arb_step(3), 0..200)) {
        let chain = SyncChain::new(ChainConfig::ch_n(3, 1).with_f(1));
        chain.inject(pkt(0));
        for s in steps {
            chain.step(s);
        }
        chain.run_to_quiescence(2_000);
        prop_assert_eq!(chain.egress().drain().len(), 1);
    }

    /// Failure-point exploration: quiesce a batch, fail ANY replica at ANY
    /// later point of a second batch's schedule, recover, and the
    /// already-released updates must all survive. In-flight packets of the
    /// second batch may be lost (fail-stop), but never double-released.
    #[test]
    fn any_failure_point_preserves_released_updates(
        n in 2usize..5,
        victim_raw in 0usize..5,
        first_batch in 1u16..15,
        second_batch in 0u16..10,
        kill_after_steps in 0usize..40,
    ) {
        let victim = victim_raw % n;
        let mut chain = SyncChain::new(ChainConfig::ch_n(n, 1).with_f(1));

        // Batch 1: fully processed and released.
        for i in 0..first_batch {
            chain.inject(pkt(i));
        }
        chain.run_to_quiescence(5_000);
        let released = chain.egress().drain().len() as u64;
        prop_assert_eq!(released, u64::from(first_batch));

        // Batch 2 in flight; kill mid-schedule.
        for i in 0..second_batch {
            chain.inject(pkt(1000 + i));
        }
        for s in 0..kill_after_steps {
            chain.step(Step::Replica(s % n));
            if s % 5 == 4 {
                chain.step(Step::Buffer);
            }
        }
        let released_mid = chain.egress().drain().len() as u64;
        chain.fail_and_recover(victim);

        // Released (quiesced) updates survive at the recovered replica.
        let own = chain.replicas[victim]
            .own_store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0);
        prop_assert!(
            own >= released,
            "victim r{}: recovered {} < released {}", victim, own, released
        );

        // The chain still works for fresh traffic.
        for i in 0..5u16 {
            chain.inject(pkt(2000 + i));
        }
        chain.run_to_quiescence(5_000);
        let after = chain.egress().drain().len() as u64;
        prop_assert!(after >= 5, "post-recovery traffic must flow: {}", after);
        // Never more than what was actually injected.
        prop_assert!(
            released + released_mid + after <= u64::from(first_batch) + u64::from(second_batch) + 5,
            "no packet may be released twice"
        );
    }
}
