//! # FTC — Fault Tolerant Service Function Chaining
//!
//! A Rust implementation of *"Fault Tolerant Service Function Chaining"*
//! (Ghaznavi, Jalalpour, Wong, Boutaba, Mashtizadeh — SIGCOMM 2020).
//!
//! FTC makes an entire chain of middleboxes fault tolerant by piggybacking
//! state updates onto the packets themselves and replicating them *along
//! the chain*: every server hosting a middlebox doubles as a replica for
//! its `f` predecessors, so `f` failures are tolerated with **zero
//! dedicated replica servers** and strong consistency — a packet leaves the
//! chain only once every state update it caused is replicated `f + 1`
//! times.
//!
//! ## Quick start
//!
//! ```
//! use ftc::prelude::*;
//! use std::time::Duration;
//!
//! // An IDS-ish chain: firewall → monitor → NAT, tolerating 1 failure.
//! let chain = FtcChain::deploy(
//!     ChainConfig::new(vec![
//!         MbSpec::Firewall { rules: vec![] },
//!         MbSpec::Monitor { sharing_level: 1 },
//!         MbSpec::SimpleNat { external_ip: "203.0.113.1".parse().unwrap() },
//!     ])
//!     .with_f(1),
//! );
//!
//! chain.inject(UdpPacketBuilder::new().build());
//! let out = chain.egress().recv(Duration::from_secs(5)).expect("released");
//! assert!(!out.has_piggyback(), "trailers never leave the chain");
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`packet`] | `ftc-packet` | headers, flow keys, the piggyback wire format |
//! | [`stm`] | `ftc-stm` | transactional state stores, dependency vectors |
//! | [`net`] | `ftc-net` | links, reliable transport, NICs, servers, regions |
//! | [`mbox`] | `ftc-mbox` | the Click-style framework and Table-1 middleboxes |
//! | [`core`] | `ftc-core` | the FTC protocol: replicas, forwarder, buffer |
//! | [`orch`] | `ftc-orch` | failure detection and three-step recovery |
//! | [`baselines`] | `ftc-baselines` | NF and FTMB(+Snapshot) comparators |
//! | [`sim`] | `ftc-sim` | the calibrated performance models (figures) |
//! | [`traffic`] | `ftc-traffic` | workload generation and measurement |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftc_baselines as baselines;
pub use ftc_core as core;
pub use ftc_mbox as mbox;
pub use ftc_net as net;
pub use ftc_orch as orch;
pub use ftc_packet as packet;
pub use ftc_sim as sim;
pub use ftc_stm as stm;
pub use ftc_traffic as traffic;

/// The commonly used surface in one import.
pub mod prelude {
    pub use ftc_baselines::{FtmbChain, NfChain, SnapshotCfg};
    pub use ftc_core::chain::{ChainSystem, Egress};
    pub use ftc_core::config::ChainConfig;
    pub use ftc_core::journal::{Event, EventKind, EventSource, RecoveryTimeline};
    pub use ftc_core::metrics::MetricsSnapshot;
    pub use ftc_core::FtcChain;
    pub use ftc_mbox::{Action, MbSpec, Middlebox, ProcCtx};
    pub use ftc_net::topology::{RegionId, Topology};
    pub use ftc_net::{Endpoint, PeerAddr};
    pub use ftc_orch::{Orchestrator, OrchestratorConfig};
    pub use ftc_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
    pub use ftc_packet::Packet;
    pub use ftc_stm::{EngineKind, StateBackend, StateTxn, TxnError};
    pub use ftc_traffic::{TrafficRunner, Workload, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let cfg = ChainConfig::new(vec![MbSpec::Passthrough]);
        cfg.validate();
    }
}
