//! Tier-1 smoke test: every bench entry point runs end to end in quick mode.
//!
//! The bench harnesses only execute during explicit `cargo bench` runs, so
//! without this test a refactor can silently break them. Each case sets
//! `FTC_BENCH_QUICK=1` (tiny iteration counts, collapsed durations — see
//! `ftc_bench::quick_mode`) and calls the same `run()` the bench binary
//! calls; the assertion is simply "completes without panicking".

use ftc_bench::runs;

/// All tests set the same value, so concurrent setting is benign.
fn quick() {
    std::env::set_var("FTC_BENCH_QUICK", "1");
}

#[test]
fn smoke_micro() {
    quick();
    runs::micro::run();
}

#[test]
fn smoke_table2_breakdown() {
    quick();
    runs::table2_breakdown::run();
}

#[test]
fn smoke_ablations() {
    quick();
    runs::ablations::run();
}

#[test]
fn smoke_fig5_state_size() {
    quick();
    runs::fig5_state_size::run();
}

#[test]
fn smoke_fig6_sharing() {
    quick();
    runs::fig6_sharing::run();
}

#[test]
fn smoke_fig7_threads() {
    quick();
    runs::fig7_threads::run();
}

#[test]
fn smoke_fig8_latency_load() {
    quick();
    runs::fig8_latency_load::run();
}

#[test]
fn smoke_fig9_chain_length() {
    quick();
    runs::fig9_chain_length::run();
}

#[test]
fn smoke_fig10_chain_latency() {
    quick();
    runs::fig10_chain_latency::run();
}

#[test]
fn smoke_fig11_latency_cdf() {
    quick();
    runs::fig11_latency_cdf::run();
}

#[test]
fn smoke_fig12_replication_factor() {
    quick();
    runs::fig12_replication_factor::run();
}

#[test]
fn smoke_fig13_recovery() {
    quick();
    runs::fig13_recovery::run();
}
