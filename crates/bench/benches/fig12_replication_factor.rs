//! Thin wrapper: the bench body lives in `ftc_bench::runs::fig12_replication_factor` so the
//! test suite can smoke-run it (see `tests/bench_smoke.rs`).

fn main() {
    ftc_bench::runs::fig12_replication_factor::run()
}
