//! Table 2: per-packet cost breakdown of an FTC-enabled MazuNAT running in
//! a chain of length two — measured on the real threaded runtime.

use ftc::prelude::*;
use ftc_bench::{banner, paper_note};
use ftc_traffic::WorkloadConfig;
use std::net::Ipv4Addr;
use std::time::Duration;

fn main() {
    banner(
        "Table 2",
        "Performance breakdown, MazuNAT in a chain of length two",
        "threaded runtime; instrumented sections of the packet path \
         (absolute values differ from the paper's Xeon D-1540 testbed — \
         compare the *relative* weights)",
    );

    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::MazuNat { external_ip: Ipv4Addr::new(203, 0, 113, 2) },
            MbSpec::MazuNat { external_ip: Ipv4Addr::new(203, 0, 113, 3) },
        ])
        .with_f(1)
        .with_workers(2),
    );

    // Warm up flow tables, then measure a steady read-heavy phase.
    let runner = TrafficRunner::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    let report = runner.closed_loop(&chain, 32, Duration::from_secs(4));
    println!(
        "drove {} packets end to end ({:.0} pps sustained)\n",
        report.received, report.pps
    );

    let m = &chain.metrics;
    let cells: [(&str, &ftc::core::metrics::TimingCell, f64); 5] = [
        ("Packet transaction", &m.t_transaction, 355.0 + 152.0),
        ("Piggyback construction", &m.t_piggyback, 58.0),
        ("Log application (replica)", &m.t_apply, 58.0),
        ("Forwarder", &m.t_forwarder, 8.0),
        ("Buffer", &m.t_buffer, 100.0),
    ];
    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>12}",
        "section", "mean (ns)", "cycles@2GHz", "paper (cycles)", "samples"
    );
    for (label, cell, paper_cycles) in cells {
        let mean_ns = cell.mean().map(|d| d.as_nanos() as f64).unwrap_or(0.0);
        println!(
            "{label:<28} {mean_ns:>12.0} {:>12.0} {paper_cycles:>14.0} {:>12}",
            mean_ns * 2.0,
            cell.samples()
        );
    }
    println!(
        "\nmean piggyback trailer: {:.1} B/packet",
        m.mean_piggyback_bytes().unwrap_or(0.0)
    );
    paper_note(
        "Table 2 (CPU cycles @2 GHz): packet processing 355±12, locking \
         152±11, copying piggybacked state 58±6, forwarder 8±2, buffer \
         100±4 — the packet transaction dominates; forwarder and buffer \
         costs are small and independent of chain length",
    );
}
