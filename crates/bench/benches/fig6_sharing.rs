//! Thin wrapper: the bench body lives in `ftc_bench::runs::fig6_sharing` so the
//! test suite can smoke-run it (see `tests/bench_smoke.rs`).

fn main() {
    ftc_bench::runs::fig6_sharing::run()
}
