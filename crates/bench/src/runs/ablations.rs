//! Ablations of FTC's two key design choices (DESIGN.md §4):
//!
//! 1. **Data dependency vectors** (§4.3) — replaced by a single sequence
//!    number, which forces replicas to apply logs in one total order.
//! 2. **State piggybacking** (§3.2) — replaced by separate replication
//!    messages per state update.

use crate::{banner, mpps, paper_note, row, SIM_TPUT_S};
use ftc_sim::{simulate, Ablation, MbKind, SimConfig, SystemKind};

fn tput(chain: Vec<MbKind>, workers: usize, ablation: Option<Ablation>) -> f64 {
    let mut cfg = SimConfig::saturated(SystemKind::Ftc { f: 1 }, chain)
        .with_workers(workers)
        .with_duration(crate::sim_secs(SIM_TPUT_S));
    if let Some(a) = ablation {
        cfg = cfg.with_ablation(a);
    }
    simulate(&cfg).mpps()
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Ablation",
        "FTC design choices: dependency vectors and piggybacking",
        "calibrated simulator; Ch-3 of Monitors (sharing 1), 8 workers",
    );
    let chain = || vec![MbKind::Monitor { sharing: 1 }; 3];

    let full = tput(chain(), 8, None);
    let total_order = tput(chain(), 8, Some(Ablation::TotalOrderReplication));
    let no_piggyback = tput(chain(), 8, Some(Ablation::NoPiggyback));

    row("variant", &["Mpps", "vs full FTC"]);
    row("FTC (full)", &[mpps(full), "1.00x".into()]);
    row(
        "single seq number",
        &[mpps(total_order), format!("{:.2}x", total_order / full)],
    );
    row(
        "separate repl. msgs",
        &[mpps(no_piggyback), format!("{:.2}x", no_piggyback / full)],
    );

    // The dependency-vector ablation matters most when many independent
    // writer streams exist; show the sweep over worker counts.
    println!("\nper-worker sweep (single seq number vs dependency vectors):");
    let workers = [1usize, 2, 4, 8];
    row("workers", &workers.map(|w| w.to_string()));
    row("FTC (Mpps)", &workers.map(|w| mpps(tput(chain(), w, None))));
    row(
        "total-order (Mpps)",
        &workers.map(|w| mpps(tput(chain(), w, Some(Ablation::TotalOrderReplication)))),
    );
    paper_note(
        "§4.3 motivates dependency vectors: a single sequence number \
         'eliminates multithreaded replication at successor replicas'; \
         §3.2 motivates piggybacking: separate messages per update are the \
         §2.2 frameworks' overhead FTC avoids",
    );
}
