//! Figure 9: maximum throughput vs chain length (Ch-2 … Ch-5 of Monitors,
//! 8 threads, sharing level 1) for NF / FTC / FTMB / FTMB+Snapshot.

use crate::{banner, mpps, paper_note, row, SIM_SNAP_S, SIM_TPUT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 9",
        "Throughput vs chain length (Ch-2..Ch-5)",
        "calibrated simulator; FTMB+Snapshot stalls 6 ms every 50 ms per \
         middlebox, unsynchronized across the chain",
    );
    let lengths = [2usize, 3, 4, 5];
    row("chain length", &lengths.map(|n| n.to_string()));

    let chain = |n: usize| vec![MbKind::Monitor { sharing: 1 }; n];
    let run = |sys: SystemKind, n: usize, dur: f64| {
        simulate(&SimConfig::saturated(sys, chain(n)).with_duration(crate::sim_secs(dur))).mpps()
    };

    let nf: Vec<f64> = lengths
        .iter()
        .map(|&n| run(SystemKind::Nf, n, SIM_TPUT_S))
        .collect();
    let ftc: Vec<f64> = lengths
        .iter()
        .map(|&n| run(SystemKind::Ftc { f: 1 }, n, SIM_TPUT_S))
        .collect();
    let ftmb: Vec<f64> = lengths
        .iter()
        .map(|&n| run(SystemKind::Ftmb { snapshot: None }, n, SIM_TPUT_S))
        .collect();
    let snap: Vec<f64> = lengths
        .iter()
        .map(|&n| {
            run(
                SystemKind::Ftmb {
                    snapshot: Some((50e6, 6e6)),
                },
                n,
                SIM_SNAP_S,
            )
        })
        .collect();

    row(
        "NF (Mpps)",
        &nf.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTC (Mpps)",
        &ftc.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTMB (Mpps)",
        &ftmb.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTMB+Snapshot (Mpps)",
        &snap.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );

    let ftc_drop = (1.0 - ftc[3] / ftc[0]) * 100.0;
    let snap_drop = (1.0 - snap[3] / snap[0]) * 100.0;
    println!("\nchain-length drop Ch-2 -> Ch-5: FTC {ftc_drop:.1}%, FTMB+Snapshot {snap_drop:.1}%");
    paper_note(
        "FTC stays within 8.28-8.92 Mpps (6-13% below NF; 2-7% drop with \
         length); FTMB is 4.80-4.83 Mpps; FTMB+Snapshot drops 13-39% \
         (3.94 -> 2.42 Mpps) because unsynchronized snapshots compound",
    );
}
