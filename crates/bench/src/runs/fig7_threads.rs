//! Figure 7: throughput of MazuNAT vs worker threads, for NF / FTC / FTMB.

use crate::{banner, mpps, paper_note, row, SIM_TPUT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

fn tput(system: SystemKind, chain: Vec<MbKind>, workers: usize) -> f64 {
    simulate(
        &SimConfig::saturated(system, chain)
            .with_workers(workers)
            .with_duration(crate::sim_secs(SIM_TPUT_S)),
    )
    .mpps()
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 7",
        "Throughput of MazuNAT vs threads",
        "calibrated simulator; read-heavy NAT (established flows are read-only)",
    );
    let threads = [1usize, 2, 4, 8];
    row("threads", &threads.map(|t| t.to_string()));

    let mut nf = Vec::new();
    let mut ftc = Vec::new();
    let mut ftmb = Vec::new();
    for &t in &threads {
        nf.push(tput(SystemKind::Nf, vec![MbKind::MazuNat], t));
        ftc.push(tput(
            SystemKind::Ftc { f: 1 },
            vec![MbKind::MazuNat, MbKind::Passthrough],
            t,
        ));
        ftmb.push(tput(
            SystemKind::Ftmb { snapshot: None },
            vec![MbKind::MazuNat],
            t,
        ));
    }
    row(
        "NF (Mpps)",
        &nf.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTC (Mpps)",
        &ftc.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTMB (Mpps)",
        &ftmb.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTC/FTMB",
        &ftc.iter()
            .zip(&ftmb)
            .map(|(a, b)| format!("{:.2}x", a / b))
            .collect::<Vec<_>>(),
    );
    paper_note(
        "FTC is 1.37-1.94x FTMB for 1-4 threads (FTC does not replicate \
         reads; FTMB logs them); at 8 threads both NF and FTC reach the \
         NIC's packet processing capacity; FTC is 1-10% below NF",
    );
}
