//! Figure 11: CDF of per-packet latency through Ch-3 (single-threaded
//! Monitors @ 2 Mpps) for NF / FTC / FTMB.

use crate::{banner, paper_note, SIM_LAT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 11",
        "Per-packet latency CDF, Ch-3 (1-thread Monitors @ 2 Mpps)",
        "calibrated simulator; quantiles of the released-packet latency \
         distribution",
    );
    let chain = vec![MbKind::Monitor { sharing: 1 }; 3];
    let quantiles = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999];

    print!("{:<8}", "q");
    for q in quantiles {
        print!(" {q:>9}");
    }
    println!();
    for (name, sys) in [
        ("NF", SystemKind::Nf),
        ("FTC", SystemKind::Ftc { f: 1 }),
        ("FTMB", SystemKind::Ftmb { snapshot: None }),
    ] {
        let r = simulate(
            &SimConfig::at_rate(sys, chain.clone(), 2e6)
                .with_workers(1)
                .with_duration(crate::sim_secs(SIM_LAT_S)),
        );
        print!("{name:<8}");
        for q in quantiles {
            let v = r
                .latency
                .quantile(q)
                .map(|d| format!("{:.1}", d.as_secs_f64() * 1e6))
                .unwrap_or_else(|| "-".into());
            print!(" {v:>9}");
        }
        println!("   (us; {} samples)", r.latency.len());
    }
    paper_note(
        "the tail latency of packets through Ch-3 is only moderately higher \
         than the minimum: FTC sits between NF and FTMB at roughly 2/3 of \
         FTMB's per-middlebox overhead, with no snapshot-style spikes",
    );
}
