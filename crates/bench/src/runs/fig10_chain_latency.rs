//! Figure 10: per-packet latency vs chain length (single-threaded Monitors
//! at a sustainable 2 Mpps) for NF / FTC / FTMB.

use crate::{banner, paper_note, row, us, SIM_LAT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};
use std::time::Duration;

fn mean(sys: SystemKind, n: usize) -> Option<Duration> {
    simulate(
        &SimConfig::at_rate(sys, vec![MbKind::Monitor { sharing: 1 }; n], 2e6)
            .with_workers(1)
            .with_duration(crate::sim_secs(SIM_LAT_S)),
    )
    .mean_latency()
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 10",
        "Latency vs chain length (1-thread Monitors @ 2 Mpps)",
        "calibrated simulator",
    );
    let lengths = [2usize, 3, 4, 5];
    row("chain length", &lengths.map(|n| n.to_string()));

    let nf: Vec<_> = lengths.iter().map(|&n| mean(SystemKind::Nf, n)).collect();
    let ftc: Vec<_> = lengths
        .iter()
        .map(|&n| mean(SystemKind::Ftc { f: 1 }, n))
        .collect();
    let ftmb: Vec<_> = lengths
        .iter()
        .map(|&n| mean(SystemKind::Ftmb { snapshot: None }, n))
        .collect();

    row("NF (us)", &nf.iter().map(|&d| us(d)).collect::<Vec<_>>());
    row("FTC (us)", &ftc.iter().map(|&d| us(d)).collect::<Vec<_>>());
    row(
        "FTMB (us)",
        &ftmb.iter().map(|&d| us(d)).collect::<Vec<_>>(),
    );

    // Per-middlebox overheads vs NF, the quantity the paper quotes.
    let per_mbox = |series: &[Option<Duration>]| -> Vec<String> {
        series
            .iter()
            .zip(&nf)
            .zip(&lengths)
            .map(|((s, n), &len)| match (s, n) {
                (Some(s), Some(n)) => {
                    format!(
                        "{:.1}",
                        (s.as_secs_f64() - n.as_secs_f64()) * 1e6 / len as f64
                    )
                }
                _ => "-".into(),
            })
            .collect()
    };
    row("FTC overhead/mbox (us)", &per_mbox(&ftc));
    row("FTMB overhead/mbox (us)", &per_mbox(&ftmb));
    paper_note(
        "FTC's overhead vs NF is 39-104 us for Ch-2..Ch-5 (~20 us per \
         middlebox); FTMB's is 64-171 us (~35 us per middlebox)",
    );
}
