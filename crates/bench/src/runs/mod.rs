//! The bench entry points as callable library functions.
//!
//! Each `benches/*.rs` target is a thin `main` that calls the matching
//! `run()` here, so the whole bench surface is also reachable from the test
//! suite: `tests/bench_smoke.rs` runs every entry with `FTC_BENCH_QUICK=1`
//! (tiny iteration counts) and keeps the harnesses from bit-rotting between
//! full `cargo bench` runs.

pub mod ablations;
pub mod fig10_chain_latency;
pub mod fig11_latency_cdf;
pub mod fig12_replication_factor;
pub mod fig13_recovery;
pub mod fig5_state_size;
pub mod fig6_sharing;
pub mod fig7_threads;
pub mod fig8_latency_load;
pub mod fig9_chain_length;
pub mod micro;
pub mod table2_breakdown;
