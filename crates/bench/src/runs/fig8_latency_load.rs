//! Figure 8: per-packet latency vs offered load for (a) Monitor with 8
//! threads at sharing level 8, (b) MazuNAT with 1 thread, (c) MazuNAT with
//! 8 threads — NF / FTC / FTMB.

use crate::{banner, paper_note, row, us, SIM_LAT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

fn lat(system: SystemKind, chain: Vec<MbKind>, workers: usize, pps: f64) -> String {
    let r = simulate(
        &SimConfig::at_rate(system, chain, pps)
            .with_workers(workers)
            .with_duration(crate::sim_secs(SIM_LAT_S)),
    );
    us(r.mean_latency())
}

fn panel(title: &str, mb: MbKind, workers: usize, loads_mpps: &[f64]) {
    println!("\n--- {title} ---");
    row(
        "load (Mpps)",
        &loads_mpps
            .iter()
            .map(|l| format!("{l:.1}"))
            .collect::<Vec<_>>(),
    );
    let systems: [(&str, SystemKind, Vec<MbKind>); 3] = [
        ("NF", SystemKind::Nf, vec![mb]),
        (
            "FTC",
            SystemKind::Ftc { f: 1 },
            vec![mb, MbKind::Passthrough],
        ),
        ("FTMB", SystemKind::Ftmb { snapshot: None }, vec![mb]),
    ];
    for (name, sys, chain) in systems {
        let series: Vec<String> = loads_mpps
            .iter()
            .map(|&l| lat(sys, chain.clone(), workers, l * 1e6))
            .collect();
        row(&format!("{name} mean latency (us)"), &series);
    }
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 8",
        "Latency vs offered load",
        "calibrated simulator; open-loop CBR arrivals; latencies spike past \
         each system's saturation point",
    );
    panel(
        "(a) Monitor, 8 threads, sharing level 8",
        MbKind::Monitor { sharing: 8 },
        8,
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
    );
    panel(
        "(b) MazuNAT, 1 thread",
        MbKind::MazuNat,
        1,
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
    );
    panel(
        "(c) MazuNAT, 8 threads",
        MbKind::MazuNat,
        8,
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
    );
    paper_note(
        "under sustainable loads FTC adds 14-25 us and FTMB 22-31 us per \
         packet (a); with one thread FTC sustains nearly NF's load (b); \
         with 8 threads NF and FTC reach the NIC cap and latency spikes \
         past saturation (c)",
    );
}
