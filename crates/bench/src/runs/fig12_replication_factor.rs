//! Figure 12: impact of the replication factor (2–5, i.e. f = 1–4) on
//! FTC's throughput (8 threads) and latency (1 thread), for Ch-5.

use crate::{banner, mpps, paper_note, row, us, SIM_LAT_S, SIM_TPUT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 12",
        "Replication factor vs throughput and latency (Ch-5 Monitors)",
        "calibrated simulator; piggyback trailers grow with f (logs ride f \
         hops; wrapped commit vectors ride back)",
    );
    let chain = vec![MbKind::Monitor { sharing: 1 }; 5];
    let factors = [1usize, 2, 3, 4];
    row("replication factor", &factors.map(|f| (f + 1).to_string()));

    let tput: Vec<String> = factors
        .iter()
        .map(|&f| {
            mpps(
                simulate(
                    &SimConfig::saturated(SystemKind::Ftc { f }, chain.clone())
                        .with_duration(crate::sim_secs(SIM_TPUT_S)),
                )
                .mpps(),
            )
        })
        .collect();
    row("throughput 8t (Mpps)", &tput);

    let lat: Vec<String> = factors
        .iter()
        .map(|&f| {
            us(simulate(
                &SimConfig::at_rate(SystemKind::Ftc { f }, chain.clone(), 1.5e6)
                    .with_workers(1)
                    .with_duration(crate::sim_secs(SIM_LAT_S)),
            )
            .mean_latency())
        })
        .collect();
    row("latency 1t @1.5Mpps (us)", &lat);

    let trailer: Vec<String> = factors
        .iter()
        .map(|&f| {
            format!(
                "{:.0}",
                simulate(
                    &SimConfig::saturated(SystemKind::Ftc { f }, chain.clone())
                        .with_duration(crate::sim_secs(0.005)),
                )
                .trailer_bytes
            )
        })
        .collect();
    row("mean trailer (B/hop)", &trailer);
    paper_note(
        "tolerating more failures costs little: throughput drops only ~3% \
         (8.28 -> 8.06 Mpps) and latency rises ~8 us from replication \
         factor 2 to 5; the limit is trailer growth, which makes very large \
         factors impractical",
    );
}
