//! Figure 6: throughput of the Monitor middlebox vs sharing level, for
//! NF / FTC / FTMB (8 worker threads).

use crate::{banner, mpps, paper_note, row, SIM_TPUT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

fn tput(system: SystemKind, chain: Vec<MbKind>) -> f64 {
    simulate(&SimConfig::saturated(system, chain).with_duration(crate::sim_secs(SIM_TPUT_S))).mpps()
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 6",
        "Throughput of Monitor vs sharing level (8 threads)",
        "calibrated simulator; Monitor counters shared by groups of `sharing` workers",
    );
    let sharings = [1usize, 2, 4, 8];
    row("sharing level", &sharings.map(|s| s.to_string()));

    let mut nf = Vec::new();
    let mut ftc = Vec::new();
    let mut ftmb = Vec::new();
    for &s in &sharings {
        let mon = MbKind::Monitor { sharing: s };
        nf.push(tput(SystemKind::Nf, vec![mon]));
        // FTC needs one pure replica server for a single-middlebox chain.
        ftc.push(tput(
            SystemKind::Ftc { f: 1 },
            vec![mon, MbKind::Passthrough],
        ));
        ftmb.push(tput(SystemKind::Ftmb { snapshot: None }, vec![mon]));
    }
    row(
        "NF (Mpps)",
        &nf.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTC (Mpps)",
        &ftc.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTMB (Mpps)",
        &ftmb.iter().map(|&v| mpps(v)).collect::<Vec<_>>(),
    );
    row(
        "FTC/FTMB",
        &ftc.iter()
            .zip(&ftmb)
            .map(|(a, b)| format!("{:.2}x", a / b))
            .collect::<Vec<_>>(),
    );
    row(
        "FTC overhead vs NF",
        &ftc.iter()
            .zip(&nf)
            .map(|(a, b)| format!("{:.0}%", (1.0 - a / b) * 100.0))
            .collect::<Vec<_>>(),
    );
    paper_note(
        "sharing 8: FTC = 1.2x FTMB, 9% below NF; sharing 2: FTC = 1.4x FTMB, \
         26% below NF; sharing 1: NF and FTC reach the NIC cap (~9.6-10.6 Mpps) \
         while FTMB is limited to 5.26 Mpps by per-packet PAL messages",
    );
}
