//! Figure 13: recovery time of each middlebox of Ch-Rec (Firewall →
//! Monitor → SimpleNAT) deployed across cloud regions — measured on the
//! real threaded runtime with WAN delays injected from the topology.

use crate::{banner, paper_note};
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(i: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 4, 0, 1), 3000 + (i % 16))
        .dst(Ipv4Addr::new(10, 60, 0, 1), 443)
        .ident(i)
        .build()
}

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 13",
        "Recovery time per middlebox of Ch-Rec across cloud regions",
        "threaded runtime; the orchestrator lives in the 'core' region; \
         Firewall is co-located with it, SimpleNAT is in a neighboring \
         region, Monitor in a remote region (the paper's §7.5 placement)",
    );

    // Paper placement: head of Firewall in the orchestrator's region; the
    // heads of SimpleNAT and Monitor in a neighboring and a remote region.
    let topology = Topology::savi_like();
    let regions = vec![RegionId(0), RegionId(2), RegionId(1)]; // fw, mon, nat
    let names = ["Firewall", "Monitor", "SimpleNAT"];

    println!(
        "{:<12} {:>16} {:>18} {:>14} {:>12}",
        "middlebox", "initialization", "state recovery", "rerouting", "bytes"
    );

    let trials = crate::quick_count(2, 1);
    let warm_n = crate::quick_count(400, 60);
    for trial in 0..trials {
        let chain = FtcChain::deploy_in(
            ChainConfig::new(vec![
                MbSpec::Firewall { rules: vec![] },
                MbSpec::Monitor { sharing_level: 1 },
                MbSpec::SimpleNat {
                    external_ip: Ipv4Addr::new(198, 51, 100, 30),
                },
            ])
            .with_f(1),
            topology.clone(),
            regions.clone(),
        );
        let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

        // Build up state to recover: flows through the NAT, counters in the
        // monitor.
        for i in 0..warm_n {
            orch.chain.inject(pkt(i as u16));
        }
        let warm = orch
            .chain
            .egress()
            .collect(warm_n, Duration::from_secs(30))
            .len();
        std::thread::sleep(Duration::from_millis(150));

        for (idx, name) in names.iter().enumerate() {
            let region = regions[idx];
            orch.chain.kill(idx);
            let r = orch.recover(idx, region).expect("recovery");
            println!(
                "{:<12} {:>13.1?} {:>15.1?} {:>13.1?} {:>12}   (trial {trial}, warmed {warm})",
                name, r.initialization, r.state_recovery, r.rerouting, r.bytes_transferred
            );
            // Keep the chain healthy for the next victim.
            for i in 0..50 {
                orch.chain.inject(pkt(500 + i));
            }
            orch.chain.egress().collect(50, Duration::from_secs(20));
            std::thread::sleep(Duration::from_millis(100));
        }

        // The same run, phase by phase, as seen by the event journal.
        println!("\n  journal-derived recovery timelines (trial {trial}):");
        for t in orch.recovery_timelines() {
            println!(
                "    r{}: total {:.1?} (detection {:.1?}, init {:.1?}, \
                 state fetch {:.1?}, resume {:.1?})",
                t.replica,
                t.total(),
                t.detection,
                t.initialization,
                t.state_fetch,
                t.resume,
            );
        }
    }
    paper_note(
        "initialization: Firewall 1.2 ms, SimpleNAT 5.3 ms, Monitor 49.8 ms \
         (ordered by orchestrator->region distance); state recovery \
         114-271 ms, WAN-RTT dominated (our single-round fetch pays one \
         RTT; the paper's TCP transfer pays several); rerouting negligible",
    );
}
