//! Criterion micro-benchmarks of the data-plane building blocks: the
//! per-operation costs behind Table 2.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, BatchSize, Criterion};
use ftc_packet::builder::UdpPacketBuilder;
use ftc_packet::piggyback::{DepVector, MboxId, PiggybackLog, PiggybackMessage, StateWrite};
use ftc_packet::{checksum, FlowKey, Packet};
use ftc_stm::{MaxVector, StateStore};
use std::time::Duration;

fn sample_message() -> PiggybackMessage {
    PiggybackMessage {
        flags: 0,
        logs: vec![PiggybackLog {
            mbox: MboxId(1),
            deps: DepVector::from_entries(vec![(3, 17), (9, 4)]).unwrap(),
            writes: vec![StateWrite {
                key: Bytes::from_static(b"mon:packets:g0"),
                value: Bytes::from_static(b"\0\0\0\0\0\0\0\x2a"),
                partition: 3,
            }],
        }],
        commits: vec![],
    }
}

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    let pkt = UdpPacketBuilder::new().frame_len(256).build();
    let raw = pkt.bytes().to_vec();
    g.bench_function("parse_256B", |b| {
        b.iter_batched(
            || BytesMut::from(&raw[..]),
            |buf| Packet::from_frame(buf).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("flow_key", |b| b.iter(|| pkt.flow_key().unwrap()));
    g.bench_function("ip_checksum_20B", |b| {
        b.iter(|| checksum::checksum(&raw[14..34]))
    });
    g.bench_function("rss_hash", |b| {
        let key = pkt.flow_key().unwrap();
        b.iter(|| FlowKey::rss_hash(&key))
    });
    g.finish();
}

fn bench_piggyback(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let msg = sample_message();
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(128);
            msg.encode(&mut buf);
            buf
        })
    });
    let mut buf = BytesMut::new();
    msg.encode(&mut buf);
    g.bench_function("decode", |b| {
        b.iter(|| PiggybackMessage::decode_trailing(&buf).unwrap().unwrap())
    });
    let base = UdpPacketBuilder::new().frame_len(256).build();
    g.bench_function("attach_detach", |b| {
        b.iter_batched(
            || base.clone(),
            |mut p| {
                p.attach_piggyback(&msg).unwrap();
                p.detach_piggyback().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_stm(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    let store = StateStore::new(32);
    let key = Bytes::from_static(b"counter");
    g.bench_function("read_modify_write_txn", |b| {
        b.iter(|| {
            store.transaction(|txn| {
                let v = txn.read_u64(&key)?.unwrap_or(0);
                txn.write_u64(key.clone(), v + 1)?;
                Ok(())
            })
        })
    });
    g.bench_function("read_only_txn", |b| {
        b.iter(|| store.transaction(|txn| txn.read_u64(&key)))
    });

    // Replica apply throughput: the Table-2 "copying piggybacked state".
    let head = StateStore::new(32);
    let out = head.transaction(|txn| {
        txn.write_u64(key.clone(), 1)?;
        Ok(())
    });
    let log = out.log.unwrap();
    g.bench_function("max_vector_apply", |b| {
        b.iter_batched(
            || (StateStore::new(32), MaxVector::new(32)),
            |(replica, max)| max.offer(&log.deps, &log.writes, &replica),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_packet, bench_piggyback, bench_stm);

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    benches();
}
