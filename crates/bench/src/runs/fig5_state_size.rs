//! Figure 5: FTC throughput of the Gen middlebox vs generated state size,
//! for several packet sizes (single-threaded Gen).

use crate::{banner, mpps, paper_note, row, SIM_TPUT_S};
use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Figure 5",
        "Throughput vs state size (Gen, 1 thread, FTC)",
        "calibrated simulator; per-packet state writes of the given size are \
         piggybacked and replicated",
    );
    let state_sizes = [16usize, 64, 128, 256];
    let packet_sizes = [128usize, 256, 512];

    row("state size (B)", &state_sizes.map(|s| s.to_string()));
    for &pkt in &packet_sizes {
        let series: Vec<String> = state_sizes
            .iter()
            .map(|&state| {
                let cfg = SimConfig::saturated(
                    SystemKind::Ftc { f: 1 },
                    vec![MbKind::Gen { state }, MbKind::Passthrough],
                )
                .with_workers(1)
                .with_packet_bytes(pkt)
                .with_duration(crate::sim_secs(SIM_TPUT_S));
                mpps(simulate(&cfg).mpps())
            })
            .collect();
        row(&format!("{pkt} B packets (Mpps)"), &series);
    }

    // Relative drops, the quantity the paper quotes.
    for &pkt in &packet_sizes {
        let at = |state: usize| {
            simulate(
                &SimConfig::saturated(
                    SystemKind::Ftc { f: 1 },
                    vec![MbKind::Gen { state }, MbKind::Passthrough],
                )
                .with_workers(1)
                .with_packet_bytes(pkt)
                .with_duration(crate::sim_secs(SIM_TPUT_S)),
            )
            .mpps()
        };
        let base = at(16);
        let drop128 = (1.0 - at(128) / base) * 100.0;
        let drop256 = (1.0 - at(256) / base) * 100.0;
        println!(
            "{pkt:>4} B packets: drop at 128 B state = {drop128:.1}%, at 256 B = {drop256:.1}%"
        );
    }
    paper_note(
        "for 128 B packets, throughput drops by only 9% for state up to \
         128 B; with 512 B packets the drop is under a few percent for \
         state up to 256 B (the binding resource shifts off the CPU)",
    );
}
