//! Table 2: per-packet cost breakdown of an FTC-enabled MazuNAT running in
//! a chain of length two — measured on the real threaded runtime.

use crate::{banner, paper_note};
use ftc::prelude::*;
use ftc_traffic::WorkloadConfig;
use std::net::Ipv4Addr;

/// Runs this bench entry end to end (quick mode honours `FTC_BENCH_QUICK`).
pub fn run() {
    banner(
        "Table 2",
        "Performance breakdown, MazuNAT in a chain of length two",
        "threaded runtime; instrumented sections of the packet path \
         (absolute values differ from the paper's Xeon D-1540 testbed — \
         compare the *relative* weights)",
    );

    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 2),
            },
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(203, 0, 113, 3),
            },
        ])
        .with_f(1)
        .with_workers(2),
    );

    // Warm up flow tables, then measure a steady read-heavy phase.
    let runner = TrafficRunner::new(WorkloadConfig {
        flows: 64,
        frame_len: 256,
        ..Default::default()
    });
    let report = runner.closed_loop(&chain, 32, crate::wall_secs(4.0));
    println!(
        "drove {} packets end to end ({:.0} pps sustained)\n",
        report.received, report.pps
    );

    let snap = chain.metrics.snapshot();
    let stages: [(&str, ftc::core::metrics::StageStats, f64); 5] = [
        ("Packet transaction", snap.transaction, 355.0 + 152.0),
        ("Piggyback construction", snap.piggyback, 58.0),
        ("Log application (replica)", snap.apply, 58.0),
        ("Forwarder", snap.forwarder, 8.0),
        ("Buffer", snap.buffer, 100.0),
    ];
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>12} {:>14} {:>10}",
        "section",
        "mean (ns)",
        "p50 (ns)",
        "p99 (ns)",
        "p999 (ns)",
        "cycles@2GHz",
        "paper (cycles)",
        "samples"
    );
    for (label, s, paper_cycles) in stages {
        println!(
            "{label:<28} {:>10} {:>10} {:>10} {:>10} {:>12.0} {paper_cycles:>14.0} {:>10}",
            s.mean_ns,
            s.p50_ns,
            s.p99_ns,
            s.p999_ns,
            s.mean_ns as f64 * 2.0,
            s.samples
        );
    }
    println!(
        "\nmean piggyback trailer: {:.1} B/packet",
        snap.mean_piggyback_bytes
    );
    paper_note(
        "Table 2 (CPU cycles @2 GHz): packet processing 355±12, locking \
         152±11, copying piggybacked state 58±6, forwarder 8±2, buffer \
         100±4 — the packet transaction dominates; forwarder and buffer \
         costs are small and independent of chain length",
    );
}
