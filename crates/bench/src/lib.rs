//! Shared plumbing for the figure/table benchmark harnesses.
//!
//! Every `benches/figN_*.rs` target regenerates one table or figure of the
//! paper's evaluation (§7) and prints it in a uniform format: the measured
//! series side by side with the value the paper reports, so
//! `cargo bench --workspace` produces the raw material for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runs;

use std::fmt::Display;
use std::time::Duration;

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str, method: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("method: {method}");
    println!("================================================================");
}

/// Prints one aligned row of label → values.
pub fn row<V: Display>(label: &str, values: &[V]) {
    print!("{label:<26}");
    for v in values {
        print!(" {v:>12}");
    }
    println!();
}

/// Formats Mpps with two decimals.
pub fn mpps(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a duration in µs with one decimal.
pub fn us(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.1}", d.as_secs_f64() * 1e6),
        None => "-".into(),
    }
}

/// A paper-reported anchor, printed next to measurements.
pub fn paper_note(note: &str) {
    println!("paper: {note}");
}

/// Duration used for throughput simulation runs (long enough for steady
/// state, short enough that sweeps finish quickly in release mode).
pub const SIM_TPUT_S: f64 = 0.04;
/// Duration for latency simulation runs.
pub const SIM_LAT_S: f64 = 0.03;
/// Duration for snapshot-stall runs (must span many 50 ms periods).
pub const SIM_SNAP_S: f64 = 0.5;

/// True when `FTC_BENCH_QUICK=1`: smoke-test mode, where every bench entry
/// runs with tiny durations/iteration counts just to prove it still works.
pub fn quick_mode() -> bool {
    std::env::var("FTC_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// A simulated duration, collapsed to a couple of milliseconds in quick
/// mode.
pub fn sim_secs(full: f64) -> f64 {
    if quick_mode() {
        full.min(0.002)
    } else {
        full
    }
}

/// A wall-clock measurement duration on the threaded runtime, collapsed in
/// quick mode.
pub fn wall_secs(full: f64) -> Duration {
    Duration::from_secs_f64(if quick_mode() { full.min(0.25) } else { full })
}

/// An iteration/packet count, collapsed in quick mode.
pub fn quick_count(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick.min(full)
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(mpps(8.276), "8.28");
        assert_eq!(us(Some(Duration::from_micros(23))), "23.0");
        assert_eq!(us(None), "-");
    }
}
