//! FTMB: rollback-recovery for middleboxes (Sherry et al., SIGCOMM '15), as
//! reimplemented by the FTC paper for comparison (§7.1).
//!
//! Topology per middlebox: a dedicated *master* (M) server and a *logger*
//! server running the input logger (IL) and output logger (OL). "Packets go
//! through IL, M, then OL. M tracks accesses to shared state using packet
//! access logs (PALs) and transmits them to OL."
//!
//! Prototype simplifications, quoted from the paper and mirrored here:
//! "Our prototype assumes that PALs are delivered on the first attempt, and
//! packets are released immediately afterwards. Further, OL maintains only
//! the last PAL." The optional [`SnapshotCfg`] adds the periodic
//! whole-middlebox stall of FTMB+Snapshot (§7.4).

use bytes::{BufMut, BytesMut};
use crossbeam::channel::{self, Receiver, Sender};
use ftc_core::config::ChainConfig;
use ftc_core::control::{InPort, OutPort};
use ftc_core::metrics::ChainMetrics;
use ftc_core::{ChainSystem, Egress};
use ftc_mbox::{Action, Middlebox, ProcCtx};
use ftc_net::nic::Nic;
use ftc_net::server::AliveToken;
use ftc_net::{reliable_pair, Server};
use ftc_packet::Packet;
use ftc_stm::StateStore;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Periodic snapshot stall parameters (FTMB+Snapshot, §7.4: "we add an
/// artificial delay (6 ms) periodically (every 50 ms); we get these values
/// from [51]").
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCfg {
    /// Interval between snapshots.
    pub period: Duration,
    /// Stall duration per snapshot.
    pub pause: Duration,
}

impl SnapshotCfg {
    /// The paper's values: 6 ms pause every 50 ms.
    pub fn paper() -> SnapshotCfg {
        SnapshotCfg {
            period: Duration::from_millis(50),
            pause: Duration::from_millis(6),
        }
    }
}

/// Wire size of one PAL message (a vector-clock record in the original
/// system; the paper's reimplementation sends one small message per data
/// packet).
pub const PAL_BYTES: usize = 24;

struct MasterShared {
    mbox: Arc<dyn Middlebox>,
    store: Arc<StateStore>,
    /// Data packets towards the OL.
    data_out: Arc<OutPort>,
    /// PAL messages towards the OL (separate message stream).
    pal_out: Arc<OutPort>,
    /// Sequence number for PALs / data packets.
    seq: AtomicU64,
    /// Barrier taken for write during a snapshot stall.
    stall_gate: RwLock<()>,
    snapshot: Option<SnapshotCfg>,
    next_snapshot: Mutex<Instant>,
    metrics: Arc<ChainMetrics>,
    pal_count: Arc<AtomicU64>,
}

/// One deployed FTMB middlebox (master + logger pair).
pub struct FtmbStage {
    /// The master's state store (for inspection in tests).
    pub store: Arc<StateStore>,
    /// PALs emitted by this stage.
    pub pals: Arc<AtomicU64>,
}

/// A running FTMB chain.
pub struct FtmbChain {
    /// Configuration used at deploy time.
    pub cfg: Arc<ChainConfig>,
    /// Shared metrics (injected/released/transaction timing).
    pub metrics: Arc<ChainMetrics>,
    /// Per-middlebox state.
    pub stages: Vec<FtmbStage>,
    servers: Vec<Server>,
    ingress: Sender<BytesMut>,
    egress: Receiver<Packet>,
    snapshot: Option<SnapshotCfg>,
}

impl FtmbChain {
    /// Deploys FTMB for `cfg.middleboxes`; dedicates 2 servers per
    /// middlebox ("we dedicate twice the number of servers to FTMB", §7.4).
    pub fn deploy(cfg: ChainConfig, snapshot: Option<SnapshotCfg>) -> FtmbChain {
        cfg.validate();
        let cfg = Arc::new(cfg);
        let metrics = Arc::new(ChainMetrics::default());
        let n = cfg.middleboxes.len();

        let (ingress_tx, ingress_rx) = channel::unbounded::<BytesMut>();
        let (egress_tx, egress_rx) = channel::unbounded::<Packet>();

        let mut servers = Vec::with_capacity(2 * n);
        let mut stages = Vec::with_capacity(n);
        // The IL input of stage i; stage i's OL forwards into stage i+1.
        let mut il_in: Vec<Arc<InPort>> = Vec::with_capacity(n);
        let mut ol_next: Vec<Arc<OutPort>> = Vec::with_capacity(n);
        il_in.push(Arc::new(InPort::empty())); // stage 0 fed by ingress
        for i in 0..n - 1 {
            let link = cfg
                .link
                .clone()
                .with_seed(cfg.link.seed().wrapping_add(100 + i as u64));
            let (tx, rx) = reliable_pair(&link);
            ol_next.push(Arc::new(OutPort::wired(tx)));
            il_in.push(Arc::new(InPort::wired(rx)));
        }
        ol_next.push(Arc::new(OutPort::empty()));

        for (i, spec) in cfg.middleboxes.iter().enumerate() {
            let mbox = spec.build();
            let store = Arc::new(StateStore::new(cfg.partitions));
            let pal_count = Arc::new(AtomicU64::new(0));

            // Links: IL→M (data), M→OL (data), M→OL (PAL stream).
            let (il_to_m_tx, il_to_m_rx) = reliable_pair(&cfg.link);
            let (m_to_ol_tx, m_to_ol_rx) = reliable_pair(&cfg.link);
            let (pal_tx, pal_rx) = reliable_pair(&cfg.link);

            // ---- Master server ------------------------------------------
            let mut master = Server::new(format!("ftmb-m{i}"), ftc_net::RegionId(0));
            let shared = Arc::new(MasterShared {
                mbox: Arc::clone(&mbox),
                store: Arc::clone(&store),
                data_out: Arc::new(OutPort::wired(m_to_ol_tx)),
                pal_out: Arc::new(OutPort::wired(pal_tx)),
                seq: AtomicU64::new(0),
                stall_gate: RwLock::new(()),
                snapshot,
                next_snapshot: Mutex::new(Instant::now()),
                metrics: Arc::clone(&metrics),
                pal_count: Arc::clone(&pal_count),
            });
            let mut nic = Nic::new(cfg.workers, cfg.nic_queue_depth);
            let queues: Vec<Receiver<BytesMut>> =
                (0..cfg.workers).map(|w| nic.take_queue(w)).collect();
            let nic = Arc::new(nic);
            for (w, queue) in queues.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let workers = cfg.workers;
                master.spawn(&format!("worker{w}"), move |alive: AliveToken| {
                    while alive.is_alive() {
                        let Ok(frame) = queue.recv_timeout(Duration::from_millis(1)) else {
                            continue;
                        };
                        shared.process(frame, w, workers);
                    }
                });
            }
            {
                let m_in = InPort::wired(il_to_m_rx);
                let nic = Arc::clone(&nic);
                let shared = Arc::clone(&shared);
                master.spawn("rx", move |alive: AliveToken| {
                    while alive.is_alive() {
                        if let Some(frame) = m_in.recv_timeout(Duration::from_millis(1)) {
                            nic.dispatch(frame);
                        }
                        shared.data_out.poll();
                        shared.pal_out.poll();
                    }
                });
            }
            servers.push(master);

            // ---- Logger server (IL + OL) --------------------------------
            let mut logger = Server::new(format!("ftmb-l{i}"), ftc_net::RegionId(0));
            // IL: log input (count) and relay to the master.
            {
                let il_port = Arc::clone(&il_in[i]);
                let to_m = OutPort::wired(il_to_m_tx);
                let ingress_rx = if i == 0 {
                    Some(ingress_rx.clone())
                } else {
                    None
                };
                let metrics = Arc::clone(&metrics);
                logger.spawn("il", move |alive: AliveToken| {
                    while alive.is_alive() {
                        if let Some(ing) = &ingress_rx {
                            // Stage 0 IL: drain the generator; its data port
                            // is unwired and must not throttle the loop.
                            match ing.recv_timeout(Duration::from_micros(500)) {
                                Ok(frame) => {
                                    metrics.injected.fetch_add(1, Ordering::Relaxed);
                                    to_m.send(frame);
                                    while let Ok(frame) = ing.try_recv() {
                                        metrics.injected.fetch_add(1, Ordering::Relaxed);
                                        to_m.send(frame);
                                    }
                                }
                                Err(channel::RecvTimeoutError::Timeout) => {}
                                Err(channel::RecvTimeoutError::Disconnected) => break,
                            }
                        } else if let Some(frame) = il_port.recv_timeout(Duration::from_micros(500))
                        {
                            to_m.send(frame);
                        }
                        to_m.poll();
                    }
                });
            }
            // OL: release data packets once their PAL arrived; keep only
            // the last PAL.
            {
                let data_in = InPort::wired(m_to_ol_rx);
                let pal_in = InPort::wired(pal_rx);
                let next = Arc::clone(&ol_next[i]);
                let egress = egress_tx.clone();
                let metrics = Arc::clone(&metrics);
                let stateful = mbox.is_stateful();
                let last = i == n - 1;
                logger.spawn("ol", move |alive: AliveToken| {
                    let mut last_pal_seq: u64 = 0; // "OL maintains only the last PAL"
                    let mut data_seq: u64 = 0;
                    while alive.is_alive() {
                        while let Some(pal) = pal_in.recv_timeout(Duration::ZERO) {
                            if pal.len() >= 8 {
                                last_pal_seq =
                                    u64::from_be_bytes(pal[..8].try_into().expect("sized")) + 1;
                            }
                        }
                        let Some(frame) = data_in.recv_timeout(Duration::from_millis(1)) else {
                            continue;
                        };
                        data_seq += 1;
                        // Wait for the PAL covering this packet ("a packet
                        // is released only when its PAL is replicated").
                        while stateful && last_pal_seq < data_seq && alive.is_alive() {
                            if let Some(pal) = pal_in.recv_timeout(Duration::from_micros(200)) {
                                if pal.len() >= 8 {
                                    last_pal_seq =
                                        u64::from_be_bytes(pal[..8].try_into().expect("sized")) + 1;
                                }
                            }
                        }
                        if last {
                            if let Ok(pkt) = Packet::from_frame(frame) {
                                metrics.released.fetch_add(1, Ordering::Relaxed);
                                let _ = egress.send(pkt);
                            }
                        } else {
                            next.send(frame);
                            next.poll();
                        }
                    }
                });
            }
            servers.push(logger);
            stages.push(FtmbStage {
                store,
                pals: pal_count,
            });
        }

        FtmbChain {
            cfg,
            metrics,
            stages,
            servers,
            ingress: ingress_tx,
            egress: egress_rx,
            snapshot,
        }
    }

    /// Injects an external packet.
    pub fn inject(&self, pkt: Packet) {
        let _ = self.ingress.send(pkt.into_bytes());
    }

    /// Returns a handle to the chain's egress (same API as
    /// [`FtcChain::egress`](ftc_core::FtcChain::egress)).
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress.clone())
    }

    /// Whether this deployment stalls for snapshots.
    pub fn snapshot(&self) -> Option<SnapshotCfg> {
        self.snapshot
    }

    /// Fail-stops the master server of middlebox `idx`, joining its
    /// threads so the failure is complete when this returns.
    pub fn kill_master(&mut self, idx: usize) {
        self.servers[idx * 2].kill();
        self.servers[idx * 2].join();
    }
}

impl MasterShared {
    fn process(&self, frame: BytesMut, worker: usize, workers: usize) {
        // Snapshot stall: the first worker to cross the deadline takes the
        // gate exclusively and pauses the whole middlebox.
        if let Some(snap) = self.snapshot {
            let due = {
                let mut next = self.next_snapshot.lock();
                if Instant::now() >= *next {
                    *next = Instant::now() + snap.period;
                    true
                } else {
                    false
                }
            };
            if due {
                let _g = self.stall_gate.write();
                std::thread::sleep(snap.pause);
            }
        }
        let _gate = self.stall_gate.read();

        let Ok(mut pkt) = Packet::from_frame(frame) else {
            return;
        };
        let ctx = ProcCtx { worker, workers };
        let t0 = Instant::now();
        let out = self
            .store
            .transaction(|txn| self.mbox.process(&mut pkt, txn, ctx));
        self.metrics.t_transaction.record(t0.elapsed());

        // One PAL per state-accessing packet, in a separate message — the
        // behaviour that caps FTMB at one message per packet (§7.3).
        if self.mbox.is_stateful() {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let mut pal = BytesMut::with_capacity(PAL_BYTES);
            pal.put_u64(seq);
            pal.put_slice(&[0u8; PAL_BYTES - 8]);
            self.pal_out.send(pal);
            self.pal_count.fetch_add(1, Ordering::Relaxed);
        }
        match out.value {
            Action::Forward => self.data_out.send(pkt.into_bytes()),
            Action::Drop => {
                self.metrics.filtered.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl ChainSystem for FtmbChain {
    fn inject_pkt(&self, pkt: Packet) {
        self.inject(pkt);
    }

    fn egress_pkt(&self, timeout: Duration) -> Option<Packet> {
        self.egress().recv(timeout)
    }

    fn system_name(&self) -> &'static str {
        if self.snapshot.is_some() {
            "FTMB+Snapshot"
        } else {
            "FTMB"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(i: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 9, 9, 9), 80)
            .without_ftc_option()
            .build()
    }

    #[test]
    fn ftmb_chain_processes_traffic_and_emits_pals() {
        let specs = vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
        ];
        let chain = FtmbChain::deploy(ChainConfig::new(specs), None);
        for i in 0..25 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(25, Duration::from_secs(10));
        assert_eq!(got.len(), 25);
        for stage in &chain.stages {
            assert_eq!(stage.store.peek_u64(b"mon:packets:g0"), Some(25));
            assert_eq!(stage.pals.load(Ordering::Relaxed), 25, "one PAL per packet");
        }
    }

    #[test]
    fn stateless_middlebox_emits_no_pals() {
        let specs = vec![MbSpec::Firewall { rules: vec![] }];
        let chain = FtmbChain::deploy(ChainConfig::new(specs), None);
        for i in 0..10 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(10, Duration::from_secs(10));
        assert_eq!(got.len(), 10);
        assert_eq!(chain.stages[0].pals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_stalls_delay_traffic() {
        let specs = vec![MbSpec::Monitor { sharing_level: 1 }];
        let snap = SnapshotCfg {
            period: Duration::from_millis(20),
            pause: Duration::from_millis(10),
        };
        let chain = FtmbChain::deploy(ChainConfig::new(specs), Some(snap));
        assert_eq!(chain.system_name(), "FTMB+Snapshot");
        // The first packet after deploy crosses the snapshot deadline and
        // pays the full pause before coming out.
        let t0 = Instant::now();
        chain.inject(pkt(0));
        let got = chain.egress().collect(1, Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        let first_latency = t0.elapsed();
        assert!(
            first_latency >= snap.pause,
            "first packet must absorb the stall: {first_latency:?}"
        );
        // A packet between snapshots flows with far lower latency.
        let t1 = Instant::now();
        chain.inject(pkt(1));
        assert_eq!(chain.egress().collect(1, Duration::from_secs(5)).len(), 1);
        assert!(
            t1.elapsed() < snap.pause,
            "mid-period packet must not stall"
        );
    }

    #[test]
    fn master_failure_stops_the_stage() {
        let specs = vec![MbSpec::Monitor { sharing_level: 1 }];
        let mut chain = FtmbChain::deploy(ChainConfig::new(specs), None);
        chain.inject(pkt(0));
        assert_eq!(chain.egress().collect(1, Duration::from_secs(5)).len(), 1);
        chain.kill_master(0);
        chain.inject(pkt(1));
        assert!(chain.egress().recv(Duration::from_millis(100)).is_none());
    }
}
