//! The comparison systems of the paper's evaluation (§7.1).
//!
//! * [`nf::NfChain`] — **NF**, "a non fault-tolerant baseline system": the
//!   same middleboxes on the same substrate, one server each, no
//!   replication, no piggybacking.
//! * [`ftmb::FtmbChain`] — **FTMB**, "our implementation of [51] … a
//!   performance upper bound of the original work that performs the logging
//!   operations described in [51] but does not take snapshots": per
//!   middlebox, a *master* (M) server plus a *logger* server hosting the
//!   input logger (IL) and output logger (OL). Packets traverse IL → M →
//!   OL; M emits a packet access log (PAL) to OL for every transaction that
//!   touches shared state, in a separate message; per the paper's prototype
//!   simplifications, PALs are assumed delivered on first attempt, packets
//!   are released immediately afterwards, and the OL retains only the last
//!   PAL.
//! * [`ftmb::SnapshotCfg`] — **FTMB+Snapshot**: FTMB plus the periodic
//!   whole-middlebox stalls of the original system's checkpoints ("we add
//!   an artificial delay (6 ms) periodically (every 50 ms)", §7.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ftmb;
pub mod nf;

pub use ftmb::{FtmbChain, SnapshotCfg};
pub use nf::NfChain;
