//! NF: the non-fault-tolerant baseline chain.
//!
//! Each middlebox runs on its own server with multi-queue RSS dispatch and
//! the same transactional state store as FTC (the store is still needed for
//! thread safety), but nothing is piggybacked, replicated, or withheld:
//! what the middlebox forwards leaves the server immediately.

use crossbeam::channel::{self, Receiver, Sender};
use ftc_core::config::ChainConfig;
use ftc_core::control::{InPort, OutPort};
use ftc_core::metrics::ChainMetrics;
use ftc_core::{ChainSystem, Egress};
use ftc_mbox::{Action, Middlebox, ProcCtx};
use ftc_net::nic::Nic;
use ftc_net::server::AliveToken;
use ftc_net::{reliable_pair, Server};
use ftc_packet::Packet;
use ftc_stm::StateStore;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One NF middlebox stage.
pub struct NfStage {
    /// The middlebox instance.
    pub mbox: Arc<dyn Middlebox>,
    /// Its state store.
    pub store: Arc<StateStore>,
}

/// A running NF chain.
pub struct NfChain {
    /// Configuration used for deployment.
    pub cfg: Arc<ChainConfig>,
    /// Metrics (only the non-replication counters are used).
    pub metrics: Arc<ChainMetrics>,
    /// Per-stage state, by position.
    pub stages: Vec<NfStage>,
    servers: Vec<Server>,
    ingress: Sender<bytes::BytesMut>,
    egress: Receiver<Packet>,
}

impl NfChain {
    /// Deploys the chain; `cfg.f` is ignored (NF tolerates nothing).
    pub fn deploy(cfg: ChainConfig) -> NfChain {
        cfg.validate();
        let cfg = Arc::new(cfg);
        let metrics = Arc::new(ChainMetrics::default());
        let n = cfg.middleboxes.len();

        let (ingress_tx, ingress_rx) = channel::unbounded::<bytes::BytesMut>();
        let (egress_tx, egress_rx) = channel::unbounded::<Packet>();

        // Inter-server links.
        let mut in_ports: Vec<Arc<InPort>> = Vec::with_capacity(n);
        let mut out_ports: Vec<Arc<OutPort>> = Vec::with_capacity(n);
        in_ports.push(Arc::new(InPort::empty())); // stage 0 fed by ingress
        for i in 0..n - 1 {
            let link = cfg
                .link
                .clone()
                .with_seed(cfg.link.seed().wrapping_add(i as u64 + 1));
            let (tx, rx) = reliable_pair(&link);
            out_ports.push(Arc::new(OutPort::wired(tx)));
            in_ports.push(Arc::new(InPort::wired(rx)));
        }
        out_ports.push(Arc::new(OutPort::empty()));

        let mut servers = Vec::with_capacity(n);
        let mut stages = Vec::with_capacity(n);
        for (i, spec) in cfg.middleboxes.iter().enumerate() {
            let mut server = Server::new(format!("nf{i}"), ftc_net::RegionId(0));
            let mbox = spec.build();
            let store = Arc::new(StateStore::new(cfg.partitions));
            let mut nic = Nic::new(cfg.workers, cfg.nic_queue_depth);
            let queues: Vec<Receiver<bytes::BytesMut>> =
                (0..cfg.workers).map(|w| nic.take_queue(w)).collect();
            let nic = Arc::new(nic);

            // Workers.
            for (w, queue) in queues.into_iter().enumerate() {
                let mbox = Arc::clone(&mbox);
                let store = Arc::clone(&store);
                let metrics = Arc::clone(&metrics);
                let out = Arc::clone(&out_ports[i]);
                let egress = egress_tx.clone();
                let workers = cfg.workers;
                let last = i == n - 1;
                server.spawn(&format!("worker{w}"), move |alive: AliveToken| {
                    while alive.is_alive() {
                        let Ok(frame) = queue.recv_timeout(Duration::from_millis(1)) else {
                            continue;
                        };
                        let Ok(mut pkt) = Packet::from_frame(frame) else {
                            continue;
                        };
                        let ctx = ProcCtx { worker: w, workers };
                        let t0 = Instant::now();
                        let out_txn = store.transaction(|txn| mbox.process(&mut pkt, txn, ctx));
                        metrics.t_transaction.record(t0.elapsed());
                        match out_txn.value {
                            Action::Forward => {
                                if last {
                                    metrics.released.fetch_add(1, Ordering::Relaxed);
                                    let _ = egress.send(pkt);
                                } else {
                                    out.send(pkt.into_bytes());
                                }
                            }
                            Action::Drop => {
                                metrics.filtered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }

            // Rx/dispatch.
            {
                let in_port = Arc::clone(&in_ports[i]);
                let nic = Arc::clone(&nic);
                let out = Arc::clone(&out_ports[i]);
                let ingress_rx = if i == 0 {
                    Some(ingress_rx.clone())
                } else {
                    None
                };
                let metrics = Arc::clone(&metrics);
                server.spawn("rx", move |alive: AliveToken| {
                    while alive.is_alive() {
                        if let Some(ing) = &ingress_rx {
                            // Stage 0: drain the generator without letting
                            // the (unwired) data port throttle the loop.
                            match ing.recv_timeout(Duration::from_micros(500)) {
                                Ok(frame) => {
                                    metrics.injected.fetch_add(1, Ordering::Relaxed);
                                    nic.dispatch(frame);
                                    while let Ok(frame) = ing.try_recv() {
                                        metrics.injected.fetch_add(1, Ordering::Relaxed);
                                        nic.dispatch(frame);
                                    }
                                }
                                Err(channel::RecvTimeoutError::Timeout) => {}
                                Err(channel::RecvTimeoutError::Disconnected) => break,
                            }
                        } else if let Some(frame) = in_port.recv_timeout(Duration::from_micros(500))
                        {
                            nic.dispatch(frame);
                        }
                        out.poll();
                    }
                });
            }

            servers.push(server);
            stages.push(NfStage { mbox, store });
        }

        NfChain {
            cfg,
            metrics,
            stages,
            servers,
            ingress: ingress_tx,
            egress: egress_rx,
        }
    }

    /// Injects an external packet.
    pub fn inject(&self, pkt: Packet) {
        let _ = self.ingress.send(pkt.into_bytes());
    }

    /// Returns a handle to the chain's egress (same API as
    /// [`FtcChain::egress`](ftc_core::FtcChain::egress)).
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress.clone())
    }

    /// Fail-stops the server at `idx` (no recovery exists: this is the
    /// baseline's point). Joins the server's threads so the failure is
    /// complete when this returns.
    pub fn kill(&mut self, idx: usize) {
        self.servers[idx].kill();
        self.servers[idx].join();
    }
}

impl ChainSystem for NfChain {
    fn inject_pkt(&self, pkt: Packet) {
        self.inject(pkt);
    }

    fn egress_pkt(&self, timeout: Duration) -> Option<Packet> {
        self.egress().recv(timeout)
    }

    fn system_name(&self) -> &'static str {
        "NF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(i: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 9, 9, 9), 80)
            .without_ftc_option()
            .build()
    }

    #[test]
    fn nf_chain_processes_traffic() {
        let specs = vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
        ];
        let chain = NfChain::deploy(ChainConfig::new(specs));
        for i in 0..30 {
            chain.inject(pkt(i));
        }
        let got = chain.egress().collect(30, Duration::from_secs(10));
        assert_eq!(got.len(), 30);
        for stage in &chain.stages {
            assert_eq!(stage.store.peek_u64(b"mon:packets:g0"), Some(30));
        }
    }

    #[test]
    fn nf_does_not_withhold_packets() {
        let specs = vec![MbSpec::Monitor { sharing_level: 1 }];
        let chain = NfChain::deploy(ChainConfig::new(specs));
        chain.inject(pkt(1));
        let got = chain.egress().collect(1, Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        assert!(!got[0].has_piggyback(), "NF must not modify packets");
    }

    #[test]
    fn nf_loses_state_on_failure() {
        let specs = vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
        ];
        let mut chain = NfChain::deploy(ChainConfig::new(specs));
        for i in 0..5 {
            chain.inject(pkt(i));
        }
        chain.egress().collect(5, Duration::from_secs(5));
        chain.kill(0);
        // The baseline has no replicas: the state is simply gone with the
        // server, and traffic stops flowing.
        chain.inject(pkt(99));
        assert!(chain.egress().recv(Duration::from_millis(100)).is_none());
    }
}
