//! Ethernet II frame header.

use crate::{WireError, WireResult};

/// Length of an Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Returns true if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns true if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Builds a locally-administered unicast address from a small integer,
    /// convenient for synthesizing distinct endpoints in tests.
    pub fn from_index(i: u64) -> MacAddr {
        let b = i.to_be_bytes();
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// An immutable view of an Ethernet II header over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct EthernetView<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetView<'a> {
    /// Parses an Ethernet header at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetView { buf })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[0..6]);
        MacAddr(m)
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[6..12]);
        MacAddr(m)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.buf[12], self.buf[13]])
    }
}

/// Writes an Ethernet II header into the first [`HEADER_LEN`] bytes of `buf`.
pub fn emit(buf: &mut [u8], src: MacAddr, dst: MacAddr, ethertype: u16) -> WireResult<()> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    buf[12..14].copy_from_slice(&ethertype.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; HEADER_LEN];
        let src = MacAddr::from_index(1);
        let dst = MacAddr::from_index(2);
        emit(&mut buf, src, dst, ETHERTYPE_IPV4).unwrap();
        let v = EthernetView::new(&buf).unwrap();
        assert_eq!(v.src(), src);
        assert_eq!(v.dst(), dst);
        assert_eq!(v.ethertype(), ETHERTYPE_IPV4);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EthernetView::new(&[0u8; 13]).unwrap_err(),
            WireError::Truncated
        );
        let mut small = [0u8; 13];
        assert!(emit(&mut small, MacAddr::default(), MacAddr::default(), 0).is_err());
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(7).is_broadcast());
        assert!(!MacAddr::from_index(7).is_multicast());
        assert_eq!(MacAddr::from_index(3).to_string(), "02:00:00:00:00:03");
    }
}
