//! Builders that synthesize valid test/benchmark packets.

use crate::ether::{self, MacAddr};
use crate::ip::{self, Ipv4Fields};
use crate::l4::{self, TcpFields};
use crate::packet::Packet;
use bytes::BytesMut;
use std::net::Ipv4Addr;

/// Builder for UDP packets.
///
/// The produced frame is Ethernet + IPv4 (with the FTC option reserved by
/// default, as every FTC-framed packet carries it) + UDP + payload.
#[derive(Debug, Clone)]
pub struct UdpPacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload_len: usize,
    payload_fill: u8,
    ttl: u8,
    ident: u16,
    with_ftc_option: bool,
}

impl Default for UdpPacketBuilder {
    fn default() -> Self {
        UdpPacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 10000,
            dst_port: 80,
            payload_len: 18,
            payload_fill: 0,
            ttl: 64,
            ident: 0,
            with_ftc_option: true,
        }
    }
}

impl UdpPacketBuilder {
    /// Creates a builder with sensible defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source IP and port.
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.src_ip = ip;
        self.src_port = port;
        self
    }

    /// Sets the destination IP and port.
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.dst_ip = ip;
        self.dst_port = port;
        self
    }

    /// Sets the source and destination MAC addresses.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets the UDP payload length in bytes.
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Sets the byte used to fill the payload.
    pub fn payload_fill(mut self, fill: u8) -> Self {
        self.payload_fill = fill;
        self
    }

    /// Sets the total frame size (Ethernet through payload, no trailer),
    /// adjusting the payload length. Panics if smaller than the headers.
    pub fn frame_len(self, total: usize) -> Self {
        let hdr = ether::HEADER_LEN
            + if self.with_ftc_option {
                ip::MIN_HEADER_LEN + ip::OPTION_FTC_LEN
            } else {
                ip::MIN_HEADER_LEN
            }
            + l4::UDP_HEADER_LEN;
        assert!(total >= hdr, "frame_len {total} smaller than headers {hdr}");
        self.payload_len(total - hdr)
    }

    /// Sets the IP identification field (handy for tagging packets).
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Disables the FTC IP option (for non-FTC baselines).
    pub fn without_ftc_option(mut self) -> Self {
        self.with_ftc_option = false;
        self
    }

    /// Builds the packet.
    pub fn build(&self) -> Packet {
        let ip_fields = Ipv4Fields {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: ip::PROTO_UDP,
            payload_len: (l4::UDP_HEADER_LEN + self.payload_len) as u16,
            ttl: self.ttl,
            ident: self.ident,
            with_ftc_option: self.with_ftc_option,
        };
        let ip_hlen = ip_fields.header_len();
        let total = ether::HEADER_LEN + ip_hlen + l4::UDP_HEADER_LEN + self.payload_len;
        let mut data = BytesMut::zeroed(total);
        ether::emit(&mut data, self.src_mac, self.dst_mac, ether::ETHERTYPE_IPV4)
            .expect("sized buffer");
        ip::emit(&mut data[ether::HEADER_LEN..], &ip_fields).expect("sized buffer");
        let l4_off = ether::HEADER_LEN + ip_hlen;
        l4::emit_udp(
            &mut data[l4_off..],
            self.src_port,
            self.dst_port,
            self.payload_len as u16,
        )
        .expect("sized buffer");
        if self.payload_fill != 0 {
            let start = l4_off + l4::UDP_HEADER_LEN;
            for b in &mut data[start..] {
                *b = self.payload_fill;
            }
        }
        Packet::from_frame_unchecked(data)
    }
}

/// Builder for TCP packets (used by NAT and firewall tests that need
/// SYN/FIN/RST semantics).
#[derive(Debug, Clone)]
pub struct TcpPacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    tcp: TcpFields,
    payload_len: usize,
    with_ftc_option: bool,
}

impl Default for TcpPacketBuilder {
    fn default() -> Self {
        TcpPacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp: TcpFields {
                src_port: 40000,
                dst_port: 443,
                ..Default::default()
            },
            payload_len: 0,
            with_ftc_option: true,
        }
    }
}

impl TcpPacketBuilder {
    /// Creates a builder with sensible defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source IP and port.
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.src_ip = ip;
        self.tcp.src_port = port;
        self
    }

    /// Sets the destination IP and port.
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.dst_ip = ip;
        self.tcp.dst_port = port;
        self
    }

    /// Sets the TCP flag bits.
    pub fn flags(mut self, flags: u8) -> Self {
        self.tcp.flags = flags;
        self
    }

    /// Sets the payload length.
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Builds the packet.
    pub fn build(&self) -> Packet {
        let ip_fields = Ipv4Fields {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: ip::PROTO_TCP,
            payload_len: (l4::TCP_HEADER_LEN + self.payload_len) as u16,
            with_ftc_option: self.with_ftc_option,
            ..Default::default()
        };
        let ip_hlen = ip_fields.header_len();
        let total = ether::HEADER_LEN + ip_hlen + l4::TCP_HEADER_LEN + self.payload_len;
        let mut data = BytesMut::zeroed(total);
        ether::emit(&mut data, self.src_mac, self.dst_mac, ether::ETHERTYPE_IPV4)
            .expect("sized buffer");
        ip::emit(&mut data[ether::HEADER_LEN..], &ip_fields).expect("sized buffer");
        l4::emit_tcp(&mut data[ether::HEADER_LEN + ip_hlen..], &self.tcp).expect("sized buffer");
        Packet::from_frame_unchecked(data)
    }
}

/// Builder for ICMP echo packets (ping traffic for NAT rewriting tests).
#[derive(Debug, Clone)]
pub struct IcmpPacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    icmp_type: u8,
    ident: u16,
    seq: u16,
    payload_len: usize,
}

impl Default for IcmpPacketBuilder {
    fn default() -> Self {
        IcmpPacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            icmp_type: crate::icmp::TYPE_ECHO_REQUEST,
            ident: 1,
            seq: 1,
            payload_len: 16,
        }
    }
}

impl IcmpPacketBuilder {
    /// Creates a builder for an echo request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets source and destination addresses.
    pub fn ips(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.src_ip = src;
        self.dst_ip = dst;
        self
    }

    /// Sets the echo identifier and sequence number.
    pub fn echo(mut self, ident: u16, seq: u16) -> Self {
        self.ident = ident;
        self.seq = seq;
        self
    }

    /// Makes the packet an echo reply.
    pub fn reply(mut self) -> Self {
        self.icmp_type = crate::icmp::TYPE_ECHO_REPLY;
        self
    }

    /// Builds the packet.
    pub fn build(&self) -> Packet {
        let ip_fields = Ipv4Fields {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: ip::PROTO_ICMP,
            payload_len: (crate::icmp::HEADER_LEN + self.payload_len) as u16,
            with_ftc_option: true,
            ..Default::default()
        };
        let ip_hlen = ip_fields.header_len();
        let total = ether::HEADER_LEN + ip_hlen + crate::icmp::HEADER_LEN + self.payload_len;
        let mut data = BytesMut::zeroed(total);
        ether::emit(&mut data, self.src_mac, self.dst_mac, ether::ETHERTYPE_IPV4)
            .expect("sized buffer");
        ip::emit(&mut data[ether::HEADER_LEN..], &ip_fields).expect("sized buffer");
        crate::icmp::emit_echo(
            &mut data[ether::HEADER_LEN + ip_hlen..],
            self.icmp_type,
            self.ident,
            self.seq,
            self.payload_len,
        )
        .expect("sized buffer");
        Packet::from_frame_unchecked(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l4::{tcp_flags, TcpView, UdpView};

    #[test]
    fn udp_builder_produces_valid_packet() {
        let pkt = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(1, 1, 1, 1), 53)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 5353)
            .payload_len(100)
            .build();
        let ipv4 = pkt.ipv4().unwrap();
        ipv4.verify_checksum().unwrap();
        assert_eq!(ipv4.src(), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(ipv4.ftc_option(), Some(0));
        let l4 = pkt.l4().unwrap();
        let udp = UdpView::new(l4).unwrap();
        assert_eq!(udp.src_port(), 53);
        assert_eq!(udp.payload().unwrap().len(), 100);
        let key = pkt.flow_key().unwrap();
        assert_eq!(key.dst_port, 5353);
    }

    #[test]
    fn frame_len_sets_total_size() {
        let pkt = UdpPacketBuilder::new().frame_len(256).build();
        assert_eq!(pkt.wire_len(), 256);
        let pkt = UdpPacketBuilder::new().frame_len(128).build();
        assert_eq!(pkt.wire_len(), 128);
    }

    #[test]
    #[should_panic(expected = "smaller than headers")]
    fn frame_len_too_small_panics() {
        UdpPacketBuilder::new().frame_len(10).build();
    }

    #[test]
    fn tcp_builder_produces_valid_packet() {
        let pkt = TcpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 1, 0, 1), 50001)
            .dst(Ipv4Addr::new(93, 184, 216, 34), 443)
            .flags(tcp_flags::SYN)
            .build();
        pkt.ipv4().unwrap().verify_checksum().unwrap();
        let tcp = TcpView::new(pkt.l4().unwrap()).unwrap();
        assert!(tcp.is_syn());
        assert_eq!(tcp.dst_port(), 443);
    }

    #[test]
    fn icmp_builder_produces_valid_ping() {
        let pkt = IcmpPacketBuilder::new()
            .ips(Ipv4Addr::new(192, 168, 0, 1), Ipv4Addr::new(8, 8, 8, 8))
            .echo(77, 3)
            .build();
        pkt.ipv4().unwrap().verify_checksum().unwrap();
        assert_eq!(pkt.ipv4().unwrap().protocol(), ip::PROTO_ICMP);
        let icmp = crate::icmp::IcmpView::new(pkt.l4().unwrap()).unwrap();
        assert!(icmp.is_echo());
        assert_eq!(icmp.ident(), 77);
        assert_eq!(icmp.seq(), 3);
        icmp.verify_checksum().unwrap();
        // ICMP has no ports; the flow key degrades gracefully.
        assert_eq!(pkt.flow_key().unwrap().src_port, 0);
    }

    #[test]
    fn without_ftc_option_shrinks_header() {
        let with = UdpPacketBuilder::new().payload_len(0).build();
        let without = UdpPacketBuilder::new()
            .without_ftc_option()
            .payload_len(0)
            .build();
        assert_eq!(with.wire_len() - without.wire_len(), ip::OPTION_FTC_LEN);
        assert_eq!(without.ipv4().unwrap().ftc_option(), None);
    }
}
