//! The unified length-prefixed frame codec.
//!
//! One codec frames *every* byte stream in the workspace: the reliable
//! sequenced channel between replicas (DATA/ACK/NACK), the multiplexed
//! socket connection between node processes (stream ids pick the logical
//! channel sharing one socket), and the control-plane RPC layer (`seq`
//! doubles as the correlation id for pipelined requests). Because both the
//! in-process and socket transports emit these exact bytes, the two
//! backends are byte-identical at the frame level — a property pinned by
//! `proptest_transport_parity`.
//!
//! # Wire layout
//!
//! ```text
//! +----------+--------+------------+---------+=================+
//! | len: u32 | kind:u8| stream:u16 | seq:u64 | payload ...     |
//! +----------+--------+------------+---------+=================+
//!  big-endian           big-endian  big-endian
//! ```
//!
//! `len` counts everything after itself (`kind` + `stream` + `seq` +
//! payload), so a stream reader needs exactly four bytes before it knows
//! how much more to wait for. All integers are big-endian.

use bytes::{BufMut, Bytes, BytesMut};

use crate::{WireError, WireResult};

/// Frame kind namespace, shared by every layer that rides the codec so a
/// single demultiplexer can route a connection's frames.
pub mod kind {
    /// Reliable-channel payload frame.
    pub const DATA: u8 = 1;
    /// Reliable-channel cumulative acknowledgement.
    pub const ACK: u8 = 2;
    /// Reliable-channel negative acknowledgement (selective resend request).
    pub const NACK: u8 = 3;
    /// Control-plane RPC request (`seq` = correlation id).
    pub const RPC_REQ: u8 = 4;
    /// Control-plane RPC response (`seq` = correlation id).
    pub const RPC_RESP: u8 = 5;
    /// Connection preamble naming the dialing peer and stream map.
    pub const HELLO: u8 = 6;

    /// True for kinds inside the known namespace. Decoders reject frames
    /// outside it ([`crate::WireError::BadKind`]): an unknown kind means
    /// the stream is desynchronized (e.g. resumed mid-frame after a torn
    /// connection) and must be torn down, not routed.
    pub fn is_known(k: u8) -> bool {
        (DATA..=HELLO).contains(&k)
    }
}

/// Bytes in the `len` prefix.
pub const LEN_PREFIX: usize = 4;
/// Bytes in the header after the `len` prefix (`kind` + `stream` + `seq`).
pub const HEADER_AFTER_LEN: usize = 1 + 2 + 8;
/// Total header bytes preceding the payload.
pub const HEADER_LEN: usize = LEN_PREFIX + HEADER_AFTER_LEN;

/// Upper bound on a frame's payload, as a corruption tripwire: a garbled
/// length prefix otherwise turns into an attempt to buffer gigabytes.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A decoded frame. The payload is a refcounted slice of the receive
/// buffer (zero-copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (see [`kind`]).
    pub kind: u8,
    /// Logical stream id multiplexed onto one connection.
    pub stream: u16,
    /// Sequence number / RPC correlation id.
    pub seq: u64,
    /// Frame payload.
    pub payload: Bytes,
}

/// Total encoded size of a frame carrying `payload_len` bytes.
pub fn wire_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len
}

/// Append one encoded frame to `buf`.
pub fn encode_into(buf: &mut BytesMut, kind: u8, stream: u16, seq: u64, payload: &[u8]) {
    buf.reserve(wire_len(payload.len()));
    buf.put_u32((HEADER_AFTER_LEN + payload.len()) as u32);
    buf.put_u8(kind);
    buf.put_u16(stream);
    buf.put_u64(seq);
    buf.put_slice(payload);
}

/// Encode one frame into a fresh buffer.
pub fn encode(kind: u8, stream: u16, seq: u64, payload: &[u8]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(wire_len(payload.len()));
    encode_into(&mut buf, kind, stream, seq, payload);
    buf
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u16(b: &[u8]) -> u16 {
    u16::from_be_bytes([b[0], b[1]])
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decode the frame at the start of `buf`.
///
/// Returns `Ok(None)` if `buf` holds only a prefix of a frame (read more
/// bytes), `Ok(Some((frame, consumed)))` on success, and `Err` if the
/// bytes cannot be a frame (length prefix out of bounds).
pub fn decode(buf: &[u8]) -> WireResult<Option<(Frame, usize)>> {
    if buf.len() < LEN_PREFIX {
        return Ok(None);
    }
    let body_len = read_u32(buf) as usize;
    if !(HEADER_AFTER_LEN..=HEADER_AFTER_LEN + MAX_PAYLOAD).contains(&body_len) {
        return Err(WireError::BadLength);
    }
    // Reject unknown kinds as soon as the kind byte is visible — before
    // waiting for (and buffering) a possibly huge declared payload.
    if buf.len() > LEN_PREFIX && !kind::is_known(buf[LEN_PREFIX]) {
        return Err(WireError::BadKind(buf[LEN_PREFIX]));
    }
    let total = LEN_PREFIX + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = Bytes::copy_from_slice(&buf[HEADER_LEN..total]);
    Ok(Some((
        Frame {
            kind: buf[LEN_PREFIX],
            stream: read_u16(&buf[LEN_PREFIX + 1..]),
            seq: read_u64(&buf[LEN_PREFIX + 3..]),
            payload,
        },
        total,
    )))
}

/// Incremental decoder for byte streams delivered in arbitrary chunks
/// (socket reads, partial writes). Feed bytes with [`extend`], drain
/// complete frames with [`next_frame`]; frame payloads are zero-copy slices of
/// the accumulated buffer.
///
/// [`extend`]: FrameDecoder::extend
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Create an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed raw bytes from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt and the connection should be torn down.
    pub fn next_frame(&mut self) -> WireResult<Option<Frame>> {
        if self.buf.len() < LEN_PREFIX {
            return Ok(None);
        }
        let body_len = read_u32(self.buf.as_ref()) as usize;
        if !(HEADER_AFTER_LEN..=HEADER_AFTER_LEN + MAX_PAYLOAD).contains(&body_len) {
            return Err(WireError::BadLength);
        }
        if self.buf.len() > LEN_PREFIX && !kind::is_known(self.buf[LEN_PREFIX]) {
            return Err(WireError::BadKind(self.buf[LEN_PREFIX]));
        }
        let total = LEN_PREFIX + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let tail = self.buf.split_off(total);
        let frame_bytes = std::mem::replace(&mut self.buf, tail).freeze();
        let b = frame_bytes.as_slice();
        Ok(Some(Frame {
            kind: b[LEN_PREFIX],
            stream: read_u16(&b[LEN_PREFIX + 1..]),
            seq: read_u64(&b[LEN_PREFIX + 3..]),
            payload: frame_bytes.slice(HEADER_LEN..),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let enc = encode(kind::DATA, 7, 42, b"hello");
        let (frame, used) = decode(enc.as_ref()).unwrap().unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(frame.kind, kind::DATA);
        assert_eq!(frame.stream, 7);
        assert_eq!(frame.seq, 42);
        assert_eq!(frame.payload.as_slice(), b"hello");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let enc = encode(kind::ACK, 0, u64::MAX, b"");
        let (frame, used) = decode(enc.as_ref()).unwrap().unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(frame.seq, u64::MAX);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let mut enc = encode(kind::RPC_REQ, 3, 9, b"abc");
        encode_into(&mut enc, kind::RPC_RESP, 3, 9, b"defgh");
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in enc.as_ref() {
            dec.extend(&[*b]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload.as_slice(), b"abc");
        assert_eq!(out[1].kind, kind::RPC_RESP);
        assert_eq!(out[1].payload.as_slice(), b"defgh");
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn bad_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::to_be_bytes(2)); // shorter than the fixed header
        assert_eq!(dec.next_frame(), Err(WireError::BadLength));
        let huge = (HEADER_AFTER_LEN + MAX_PAYLOAD + 1) as u32;
        assert_eq!(decode(&u32::to_be_bytes(huge)), Err(WireError::BadLength));
    }

    #[test]
    fn incomplete_frame_waits_for_more() {
        let enc = encode(kind::DATA, 1, 2, b"payload");
        assert_eq!(decode(&enc.as_ref()[..3]).unwrap(), None);
        assert_eq!(decode(&enc.as_ref()[..enc.len() - 1]).unwrap(), None);
    }
}
