//! Reusable-buffer pools for the packet hot path.
//!
//! Per-packet work in the forwarder, replicas, and buffer repeatedly needs
//! short-lived allocations: a scratch [`BytesMut`] to encode a piggyback
//! trailer, a `Vec<PiggybackLog>` to stage a feedback batch. Allocating
//! these fresh per packet puts the allocator on the Table-2 critical path.
//! A [`Pool`] keeps returned objects and hands them back out, so steady
//! state allocates nothing per packet: the pool warms up over the first
//! few packets and then recycles.
//!
//! The contract is the `Pool`/`Checkout`/`Reset` idiom:
//!
//! * [`Reset::reset`] restores an object to its freshly-created observable
//!   state **without** releasing its backing storage (`clear`, not `new`).
//! * [`Pool::checkout`] returns a [`Checkout`] smart pointer; dropping it
//!   resets the object and returns it to the pool.
//! * [`Checkout::detach`] extracts the object when it must outlive the
//!   checkout (e.g. a frame handed to a channel); detached objects are
//!   simply not recycled.
//!
//! Correctness: a recycled object is indistinguishable from a fresh one
//! (`proptest_pool` verifies byte-identical behaviour), so pooling is a
//! pure performance feature — determinism and the protocol state space are
//! unaffected.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::BytesMut;

/// Restores an object to its freshly-created observable state while keeping
/// its backing storage for reuse.
pub trait Reset {
    /// Clears all observable state. After `reset`, the object must behave
    /// identically to one produced by its `Default`/constructor.
    fn reset(&mut self);
}

impl Reset for BytesMut {
    fn reset(&mut self) {
        self.clear();
    }
}

impl<T> Reset for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Running counters exposed for tests and the stats CLI.
#[derive(Debug, Default)]
struct PoolStats {
    created: AtomicU64,
    reused: AtomicU64,
}

struct PoolInner<T: Reset> {
    free: Mutex<Vec<T>>,
    /// Upper bound on retained objects; beyond it, returns are dropped so a
    /// burst cannot pin memory forever.
    cap: usize,
    stats: PoolStats,
}

/// A lock-striped-free (single mutex; hold time is one Vec push/pop) object
/// pool. Clone to share: clones refer to the same pool.
pub struct Pool<T: Reset> {
    inner: Arc<PoolInner<T>>,
    make: Arc<dyn Fn() -> T + Send + Sync>,
}

impl<T: Reset> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            inner: Arc::clone(&self.inner),
            make: Arc::clone(&self.make),
        }
    }
}

impl<T: Reset> std::fmt::Debug for Pool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("free", &self.inner.free.lock().len())
            .field("cap", &self.inner.cap)
            .field("created", &self.inner.stats.created)
            .field("reused", &self.inner.stats.reused)
            .finish()
    }
}

impl<T: Reset> Pool<T> {
    /// Creates a pool that builds new objects with `make` and retains at
    /// most `cap` idle objects.
    pub fn new(cap: usize, make: impl Fn() -> T + Send + Sync + 'static) -> Pool<T> {
        Pool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                cap,
                stats: PoolStats::default(),
            }),
            make: Arc::new(make),
        }
    }

    /// Takes an object from the pool, constructing one only if the pool is
    /// empty. The object is already reset.
    pub fn checkout(&self) -> Checkout<T> {
        let recycled = self.inner.free.lock().pop();
        let value = match recycled {
            Some(v) => {
                self.inner.stats.reused.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.inner.stats.created.fetch_add(1, Ordering::Relaxed);
                (self.make)()
            }
        };
        Checkout {
            value: Some(value),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Number of idle objects currently retained.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Total objects constructed over the pool's lifetime.
    pub fn created(&self) -> u64 {
        self.inner.stats.created.load(Ordering::Relaxed)
    }

    /// Total checkouts served from recycled objects.
    pub fn reused(&self) -> u64 {
        self.inner.stats.reused.load(Ordering::Relaxed)
    }
}

/// RAII handle to a pooled object; derefs to `T` and returns the object to
/// the pool (after [`Reset::reset`]) on drop.
pub struct Checkout<T: Reset> {
    value: Option<T>,
    pool: Arc<PoolInner<T>>,
}

impl<T: Reset> Checkout<T> {
    /// Extracts the object, detaching it from the pool (it will not be
    /// recycled).
    pub fn detach(mut self) -> T {
        self.value.take().expect("value present until drop")
    }
}

impl<T: Reset> Deref for Checkout<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("value present until drop")
    }
}

impl<T: Reset> DerefMut for Checkout<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("value present until drop")
    }
}

impl<T: Reset> Drop for Checkout<T> {
    fn drop(&mut self) {
        if let Some(mut v) = self.value.take() {
            v.reset();
            let mut free = self.pool.free.lock();
            if free.len() < self.pool.cap {
                free.push(v);
            }
        }
    }
}

/// Pool of scratch encode buffers sized for a typical piggyback trailer.
pub fn bytes_pool(cap: usize) -> Pool<BytesMut> {
    Pool::new(cap, || BytesMut::with_capacity(512))
}

/// Pool of log-staging vectors for feedback batches.
pub fn log_vec_pool(cap: usize) -> Pool<Vec<crate::piggyback::PiggybackLog>> {
    Pool::new(cap, Vec::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn checkout_recycles_and_resets() {
        let pool = bytes_pool(8);
        {
            let mut b = pool.checkout();
            b.put_slice(b"dirty bytes");
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1, "dropped checkout returned to pool");
        let b = pool.checkout();
        assert!(b.is_empty(), "recycled buffer must be reset");
        assert!(b.capacity() > 0, "but keeps its allocation");
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn detach_skips_recycling() {
        let pool = bytes_pool(8);
        let b = pool.checkout();
        let owned = b.detach();
        drop(owned);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn cap_bounds_retention() {
        let pool = bytes_pool(2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.idle(), 2, "third return dropped at cap");
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = bytes_pool(64);
        let clone = pool.clone();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = clone.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut b = p.checkout();
                        b.put_u64(7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.created() + pool.reused(), 400);
        assert!(pool.created() <= 8, "a few objects serve all checkouts");
    }
}
