//! The Internet checksum (RFC 1071) and incremental-update helpers (RFC 1624).

/// Computes the one's-complement sum of `data`, folding carries.
///
/// The returned value is the 16-bit one's-complement sum *before* the final
/// complement; callers usually want [`checksum`].
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

/// Computes the Internet checksum of `data` (the complement of the folded
/// one's-complement sum).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Combines partial one's-complement sums (e.g. pseudo-header + payload).
pub fn combine(sums: &[u16]) -> u16 {
    let total: u32 = sums.iter().map(|&s| u32::from(s)).sum();
    fold(total)
}

/// Incrementally updates a checksum after a 16-bit word changed from `old`
/// to `new` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
pub fn update(hc: u16, old: u16, new: u16) -> u16 {
    let sum = u32::from(!hc) + u32::from(!old) + u32::from(new);
    !fold(sum)
}

/// Incrementally updates a checksum after a 32-bit value changed (e.g. an
/// IPv4 address rewritten by a NAT).
pub fn update_u32(hc: u16, old: u32, new: u32) -> u16 {
    let hc = update(hc, (old >> 16) as u16, (new >> 16) as u16);
    update(hc, old as u16, new as u16)
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// One's-complement sum of the IPv4 pseudo-header used by TCP/UDP checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, l4_len: u16) -> u16 {
    let mut sum = 0u32;
    sum += u32::from(u16::from_be_bytes([src[0], src[1]]));
    sum += u32::from(u16::from_be_bytes([src[2], src[3]]));
    sum += u32::from(u16::from_be_bytes([dst[0], dst[1]]));
    sum += u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    sum += u32::from(protocol);
    sum += u32::from(l4_len);
    fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn empty_is_zero_sum() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verifies_to_zero_when_embedded() {
        // A buffer whose checksum field is filled with checksum(..) must sum
        // to 0xffff (i.e. checksum() over the whole buffer returns 0).
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0x00, 0x00]); // checksum placeholder
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = c as u8;
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 20];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let before = checksum(&data);
        // change word at offset 4..6
        let old = u16::from_be_bytes([data[4], data[5]]);
        let new = 0xbeef;
        data[4] = (new >> 8) as u8;
        data[5] = new as u8;
        let after_full = checksum(&data);
        let after_incr = update(before, old, new);
        assert_eq!(after_full, after_incr);
    }

    #[test]
    fn incremental_u32_matches_recompute() {
        let mut data = vec![0u8; 32];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(101).wrapping_add(3);
        }
        let before = checksum(&data);
        let old = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
        let new = 0xc0a80a01u32; // 192.168.10.1
        data[8..12].copy_from_slice(&new.to_be_bytes());
        assert_eq!(checksum(&data), update_u32(before, old, new));
    }

    #[test]
    fn combine_is_order_independent() {
        let a = ones_complement_sum(&[1, 2, 3, 4]);
        let b = ones_complement_sum(&[9, 9, 9, 9, 9, 9]);
        assert_eq!(combine(&[a, b]), combine(&[b, a]));
    }
}
