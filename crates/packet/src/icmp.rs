//! ICMP echo (ping) messages — the traffic class `mazu-nat.click` handles
//! with its `ICMPPingRewriter`.

use crate::checksum;
use crate::{WireError, WireResult};

/// ICMP header length for echo messages.
pub const HEADER_LEN: usize = 8;

/// ICMP type: echo reply.
pub const TYPE_ECHO_REPLY: u8 = 0;
/// ICMP type: echo request.
pub const TYPE_ECHO_REQUEST: u8 = 8;

/// An immutable view of an ICMP echo header.
#[derive(Debug, Clone, Copy)]
pub struct IcmpView<'a> {
    buf: &'a [u8],
}

impl<'a> IcmpView<'a> {
    /// Parses an ICMP header at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(IcmpView { buf })
    }

    /// Message type.
    pub fn icmp_type(&self) -> u8 {
        self.buf[0]
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buf[1]
    }

    /// True for echo requests/replies (the messages a NAT rewrites).
    pub fn is_echo(&self) -> bool {
        matches!(self.icmp_type(), TYPE_ECHO_REQUEST | TYPE_ECHO_REPLY)
    }

    /// Echo identifier (the "port" a ping NAT translates).
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Echo sequence number.
    pub fn seq(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// Verifies the ICMP checksum over the whole message.
    pub fn verify_checksum(&self) -> WireResult<()> {
        if checksum::checksum(self.buf) == 0 {
            Ok(())
        } else {
            Err(WireError::BadChecksum)
        }
    }
}

/// Emits an ICMP echo header (checksum over header + payload).
pub fn emit_echo(
    buf: &mut [u8],
    icmp_type: u8,
    ident: u16,
    seq: u16,
    payload_len: usize,
) -> WireResult<()> {
    if buf.len() < HEADER_LEN + payload_len {
        return Err(WireError::Truncated);
    }
    buf[0] = icmp_type;
    buf[1] = 0;
    buf[2..4].copy_from_slice(&[0, 0]);
    buf[4..6].copy_from_slice(&ident.to_be_bytes());
    buf[6..8].copy_from_slice(&seq.to_be_bytes());
    let c = checksum::checksum(&buf[..HEADER_LEN + payload_len]);
    buf[2..4].copy_from_slice(&c.to_be_bytes());
    Ok(())
}

/// Rewrites the echo identifier in place, incrementally fixing the
/// checksum; returns the old identifier. Used by ping-rewriting NATs.
pub fn set_ident(buf: &mut [u8], ident: u16) -> WireResult<u16> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let old = u16::from_be_bytes([buf[4], buf[5]]);
    buf[4..6].copy_from_slice(&ident.to_be_bytes());
    let hc = u16::from_be_bytes([buf[2], buf[3]]);
    let fixed = checksum::update(hc, old, ident);
    buf[2..4].copy_from_slice(&fixed.to_be_bytes());
    Ok(old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let mut buf = vec![0u8; HEADER_LEN + 16];
        for b in &mut buf[HEADER_LEN..] {
            *b = 0xA5;
        }
        emit_echo(&mut buf, TYPE_ECHO_REQUEST, 0x1234, 7, 16).unwrap();
        let v = IcmpView::new(&buf).unwrap();
        assert_eq!(v.icmp_type(), TYPE_ECHO_REQUEST);
        assert!(v.is_echo());
        assert_eq!(v.ident(), 0x1234);
        assert_eq!(v.seq(), 7);
        v.verify_checksum().unwrap();
    }

    #[test]
    fn ident_rewrite_keeps_checksum() {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        emit_echo(&mut buf, TYPE_ECHO_REPLY, 100, 1, 8).unwrap();
        let old = set_ident(&mut buf, 999).unwrap();
        assert_eq!(old, 100);
        let v = IcmpView::new(&buf).unwrap();
        assert_eq!(v.ident(), 999);
        v.verify_checksum().unwrap();
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpView::new(&[0u8; 4]).is_err());
        assert!(set_ident(&mut [0u8; 4], 1).is_err());
        assert!(emit_echo(&mut [0u8; 4], TYPE_ECHO_REQUEST, 0, 0, 0).is_err());
    }

    #[test]
    fn non_echo_detected() {
        let mut buf = vec![0u8; HEADER_LEN];
        emit_echo(&mut buf, 3 /* dest unreachable */, 0, 0, 0).unwrap();
        assert!(!IcmpView::new(&buf).unwrap().is_echo());
    }
}
