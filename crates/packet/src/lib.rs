//! Packet formats and the FTC piggyback wire format.
//!
//! This crate provides the data-plane byte-level building blocks used by the
//! rest of the workspace:
//!
//! * [`ether`], [`ip`], [`l4`] — Ethernet II, IPv4 (including options), TCP
//!   and UDP header views over a contiguous byte buffer, in the spirit of
//!   `smoltcp`'s wire representation: plain accessors over `&[u8]`, no
//!   allocation, explicit error types.
//! * [`checksum`] — the Internet checksum (RFC 1071) with incremental update
//!   helpers used by the NAT middleboxes.
//! * [`icmp`] — ICMP echo messages, for ping-rewriting NATs.
//! * [`flow`] — 5-tuple flow keys and the symmetric RSS-style hash used to
//!   distribute packets to worker queues.
//! * [`packet`] — [`packet::Packet`], an owned mutable packet buffer with
//!   cached header offsets and support for the FTC *piggyback trailer*.
//! * [`piggyback`] — the FTC piggyback message: per-middlebox piggyback logs
//!   (data dependency vector + state writes) and commit vectors, serialized
//!   into a length-suffixed trailer appended after the IP payload and flagged
//!   by an IPv4 option (paper §6).
//! * [`builder`] — convenience builders that synthesize valid UDP/TCP test
//!   packets for examples, tests and benchmarks.
//!
//! # Wire layout of an FTC-framed packet
//!
//! ```text
//! +----------+------------------+-------------+----------------------+
//! | Ethernet | IPv4 (+ option)  | L4 + payload| piggyback trailer    |
//! +----------+------------------+-------------+----------------------+
//!                                             ^ not covered by the IP
//!                                               total-length field
//!                                               while a middlebox holds
//!                                               the packet (paper §6)
//! ```
//!
//! The trailer is self-delimiting (magic + length at a fixed offset from the
//! end), so replicas can locate it without trusting the IP header, and the
//! IPv4 option ([`ip::OPTION_FTC`]) advertises its presence to FTC runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod ether;
pub mod flow;
pub mod frame;
pub mod icmp;
pub mod ip;
pub mod l4;
pub mod packet;
pub mod piggyback;
pub mod pool;

pub use flow::FlowKey;
pub use packet::Packet;
pub use piggyback::{CommitVector, DepVector, PiggybackLog, PiggybackMessage, SeqNo};
pub use pool::{Checkout, Pool, Reset};

/// Errors produced while parsing or emitting packet data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header or field being accessed.
    Truncated,
    /// A length field is inconsistent with the buffer.
    BadLength,
    /// A version or magic constant does not match.
    BadMagic,
    /// The checksum does not verify.
    BadChecksum,
    /// An unsupported protocol or option was encountered.
    Unsupported,
    /// A frame header names a kind outside the known namespace
    /// ([`frame::kind`]); the stream is desynchronized or corrupt.
    BadKind(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadMagic => write!(f, "bad magic or version"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::Unsupported => write!(f, "unsupported protocol or option"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Shorthand result type for wire operations.
pub type WireResult<T> = Result<T, WireError>;
