//! Flow identification: 5-tuples and receive-side-scaling hashes.

use crate::ip::{Ipv4View, PROTO_TCP, PROTO_UDP};
use crate::l4::{TcpView, UdpView};
use crate::{WireError, WireResult};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A transport-level flow identifier (the classic 5-tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source port (0 for protocols without ports).
    pub src_port: u16,
    /// Destination port (0 for protocols without ports).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Extracts a flow key from an IPv4 packet (header + L4 header).
    ///
    /// `ip` must point at the IPv4 header. Protocols other than TCP/UDP get
    /// port 0 on both sides.
    pub fn from_ipv4(ip: &[u8]) -> WireResult<FlowKey> {
        let v = Ipv4View::new(ip)?;
        let l4 = ip.get(v.header_len()..).ok_or(WireError::Truncated)?;
        let (sp, dp) = match v.protocol() {
            PROTO_TCP => {
                let t = TcpView::new(l4)?;
                (t.src_port(), t.dst_port())
            }
            PROTO_UDP => {
                let u = UdpView::new(l4)?;
                (u.src_port(), u.dst_port())
            }
            _ => (0, 0),
        };
        Ok(FlowKey {
            src_ip: v.src(),
            dst_ip: v.dst(),
            src_port: sp,
            dst_port: dp,
            protocol: v.protocol(),
        })
    }

    /// The same flow viewed from the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-insensitive 64-bit hash, used for RSS queue selection so
    /// both directions of a connection land on the same worker.
    pub fn rss_hash(&self) -> u64 {
        // Symmetric combine: sort the endpoint halves before mixing.
        let a = (u32::from(self.src_ip) as u64) << 16 | u64::from(self.src_port);
        let b = (u32::from(self.dst_ip) as u64) << 16 | u64::from(self.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        fnv1a_64(&[
            lo.to_be_bytes(),
            hi.to_be_bytes(),
            [self.protocol; 8], // protocol folded in
        ])
    }

    /// A direction-sensitive hash, used for hash-table placement.
    pub fn hash64(&self) -> u64 {
        let a = (u32::from(self.src_ip) as u64) << 16 | u64::from(self.src_port);
        let b = (u32::from(self.dst_ip) as u64) << 16 | u64::from(self.dst_port);
        fnv1a_64(&[a.to_be_bytes(), b.to_be_bytes(), [self.protocol; 8]])
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

fn fnv1a_64(words: &[[u8; 8]; 3]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for &b in w {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::{self, Ipv4Fields};
    use crate::l4;

    fn sample_udp_packet() -> Vec<u8> {
        let mut buf = vec![0u8; 64];
        let f = Ipv4Fields {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: ip::PROTO_UDP,
            payload_len: (l4::UDP_HEADER_LEN + 4) as u16,
            ..Default::default()
        };
        let hlen = ip::emit(&mut buf, &f).unwrap();
        l4::emit_udp(&mut buf[hlen..], 1111, 2222, 4).unwrap();
        buf
    }

    #[test]
    fn extracts_five_tuple() {
        let pkt = sample_udp_packet();
        let k = FlowKey::from_ipv4(&pkt).unwrap();
        assert_eq!(k.src_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(k.dst_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(k.src_port, 1111);
        assert_eq!(k.dst_port, 2222);
        assert_eq!(k.protocol, ip::PROTO_UDP);
    }

    #[test]
    fn rss_hash_is_symmetric() {
        let pkt = sample_udp_packet();
        let k = FlowKey::from_ipv4(&pkt).unwrap();
        assert_eq!(k.rss_hash(), k.reversed().rss_hash());
        // but the direction-sensitive hash differs (with overwhelming odds)
        assert_ne!(k.hash64(), k.reversed().hash64());
    }

    #[test]
    fn reversed_twice_is_identity() {
        let pkt = sample_udp_packet();
        let k = FlowKey::from_ipv4(&pkt).unwrap();
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn non_tcp_udp_has_zero_ports() {
        let mut buf = vec![0u8; 64];
        let f = Ipv4Fields {
            protocol: ip::PROTO_ICMP,
            payload_len: 8,
            ..Default::default()
        };
        ip::emit(&mut buf, &f).unwrap();
        let k = FlowKey::from_ipv4(&buf).unwrap();
        assert_eq!((k.src_port, k.dst_port), (0, 0));
    }

    #[test]
    fn truncated_l4_rejected() {
        let mut pkt = sample_udp_packet();
        pkt.truncate(22); // cuts into the UDP header
        assert!(FlowKey::from_ipv4(&pkt).is_err());
    }
}
