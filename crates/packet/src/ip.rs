//! IPv4 header with options, including the FTC piggyback-presence option.

use crate::checksum;
use crate::{WireError, WireResult};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;
/// Maximum IPv4 header length (15 32-bit words).
pub const MAX_HEADER_LEN: usize = 60;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;

/// The IPv4 option kind FTC uses to flag a piggyback trailer (paper §6).
///
/// `0x5e` is copy=0, class=2 (debugging/measurement), number=30 — an
/// experimental-range option that routers ignore.
pub const OPTION_FTC: u8 = 0x5e;
/// Total length of the FTC option: kind, length, 16-bit trailer length.
pub const OPTION_FTC_LEN: usize = 4;

/// An immutable IPv4 header view.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Parses an IPv4 header at the start of `buf`.
    ///
    /// Validates version, header length, and that the buffer holds at least
    /// the full header. It does *not* verify the checksum; use
    /// [`Ipv4View::verify_checksum`].
    pub fn new(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let v = Ipv4View { buf };
        if v.version() != 4 {
            return Err(WireError::BadMagic);
        }
        let ihl = v.header_len();
        if !(MIN_HEADER_LEN..=MAX_HEADER_LEN).contains(&ihl) || buf.len() < ihl {
            return Err(WireError::BadLength);
        }
        Ok(v)
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buf[0] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[0] & 0x0f) * 4
    }

    /// The DSCP/ECN byte.
    pub fn tos(&self) -> u8 {
        self.buf[1]
    }

    /// Total length of header + payload, in bytes.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// L4 protocol number.
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// The raw options bytes (between byte 20 and the end of the header).
    pub fn options(&self) -> &'a [u8] {
        &self.buf[MIN_HEADER_LEN..self.header_len()]
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> WireResult<()> {
        if checksum::checksum(&self.buf[..self.header_len()]) == 0 {
            Ok(())
        } else {
            Err(WireError::BadChecksum)
        }
    }

    /// Scans the options for the FTC option and returns the advertised
    /// piggyback trailer length if present.
    pub fn ftc_option(&self) -> Option<u16> {
        let mut opts = self.options();
        while let Some(&kind) = opts.first() {
            match kind {
                0 => return None,       // end of options list
                1 => opts = &opts[1..], // no-op padding
                OPTION_FTC => {
                    if opts.len() >= OPTION_FTC_LEN && opts[1] as usize == OPTION_FTC_LEN {
                        return Some(u16::from_be_bytes([opts[2], opts[3]]));
                    }
                    return None;
                }
                _ => {
                    // other option: skip by its length byte
                    let len = *opts.get(1)? as usize;
                    if len < 2 || len > opts.len() {
                        return None;
                    }
                    opts = &opts[len..];
                }
            }
        }
        None
    }
}

/// Field-by-field description used to emit an IPv4 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Fields {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// L4 protocol number.
    pub protocol: u8,
    /// Payload length in bytes (header length is added automatically).
    pub payload_len: u16,
    /// Time-to-live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
    /// Whether to reserve space for the FTC option.
    pub with_ftc_option: bool,
}

impl Default for Ipv4Fields {
    fn default() -> Self {
        Ipv4Fields {
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
            protocol: PROTO_UDP,
            payload_len: 0,
            ttl: 64,
            ident: 0,
            with_ftc_option: false,
        }
    }
}

impl Ipv4Fields {
    /// The header length this description will emit.
    pub fn header_len(&self) -> usize {
        if self.with_ftc_option {
            MIN_HEADER_LEN + OPTION_FTC_LEN
        } else {
            MIN_HEADER_LEN
        }
    }
}

/// Emits an IPv4 header into `buf` and returns the header length.
///
/// When `fields.with_ftc_option` is set, an FTC option with trailer length 0
/// is included; use [`set_ftc_trailer_len`] to update it later.
pub fn emit(buf: &mut [u8], fields: &Ipv4Fields) -> WireResult<usize> {
    let hlen = fields.header_len();
    if buf.len() < hlen {
        return Err(WireError::Truncated);
    }
    let total_len = hlen as u16 + fields.payload_len;
    buf[0] = 0x40 | (hlen / 4) as u8;
    buf[1] = 0;
    buf[2..4].copy_from_slice(&total_len.to_be_bytes());
    buf[4..6].copy_from_slice(&fields.ident.to_be_bytes());
    buf[6..8].copy_from_slice(&[0, 0]); // flags + fragment offset
    buf[8] = fields.ttl;
    buf[9] = fields.protocol;
    buf[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
    buf[12..16].copy_from_slice(&fields.src.octets());
    buf[16..20].copy_from_slice(&fields.dst.octets());
    if fields.with_ftc_option {
        buf[20] = OPTION_FTC;
        buf[21] = OPTION_FTC_LEN as u8;
        buf[22..24].copy_from_slice(&0u16.to_be_bytes());
    }
    let c = checksum::checksum(&buf[..hlen]);
    buf[10..12].copy_from_slice(&c.to_be_bytes());
    Ok(hlen)
}

/// Rewrites the total-length field of the IPv4 header at the start of `buf`,
/// incrementally fixing the header checksum.
pub fn set_total_len(buf: &mut [u8], total_len: u16) -> WireResult<()> {
    if buf.len() < MIN_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let old = u16::from_be_bytes([buf[2], buf[3]]);
    buf[2..4].copy_from_slice(&total_len.to_be_bytes());
    let hc = u16::from_be_bytes([buf[10], buf[11]]);
    let hc = checksum::update(hc, old, total_len);
    buf[10..12].copy_from_slice(&hc.to_be_bytes());
    Ok(())
}

/// Updates the FTC option's trailer-length field (fixing the checksum).
///
/// Returns `Err(Unsupported)` if the header carries no FTC option.
pub fn set_ftc_trailer_len(buf: &mut [u8], trailer_len: u16) -> WireResult<()> {
    let view = Ipv4View::new(buf)?;
    let hlen = view.header_len();
    // Locate the option (we only ever emit it first in the options area).
    let mut off = MIN_HEADER_LEN;
    while off + 1 < hlen {
        match buf[off] {
            0 => return Err(WireError::Unsupported),
            1 => off += 1,
            OPTION_FTC => {
                let old = u16::from_be_bytes([buf[off + 2], buf[off + 3]]);
                buf[off + 2..off + 4].copy_from_slice(&trailer_len.to_be_bytes());
                let hc = u16::from_be_bytes([buf[10], buf[11]]);
                // The two option payload bytes form one aligned 16-bit word
                // only when `off + 2` is even; our emit layout guarantees it.
                let hc = checksum::update(hc, old, trailer_len);
                buf[10..12].copy_from_slice(&hc.to_be_bytes());
                return Ok(());
            }
            _ => {
                let len = buf[off + 1] as usize;
                if len < 2 {
                    return Err(WireError::BadLength);
                }
                off += len;
            }
        }
    }
    Err(WireError::Unsupported)
}

/// Rewrites the source address (incremental checksum fix). Used by NATs.
pub fn set_src(buf: &mut [u8], addr: Ipv4Addr) -> WireResult<u32> {
    rewrite_addr(buf, 12, addr)
}

/// Rewrites the destination address (incremental checksum fix).
pub fn set_dst(buf: &mut [u8], addr: Ipv4Addr) -> WireResult<u32> {
    rewrite_addr(buf, 16, addr)
}

fn rewrite_addr(buf: &mut [u8], off: usize, addr: Ipv4Addr) -> WireResult<u32> {
    if buf.len() < MIN_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let old = u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
    let new = u32::from_be_bytes(addr.octets());
    buf[off..off + 4].copy_from_slice(&addr.octets());
    let hc = u16::from_be_bytes([buf[10], buf[11]]);
    let hc = checksum::update_u32(hc, old, new);
    buf[10..12].copy_from_slice(&hc.to_be_bytes());
    Ok(old)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Ipv4Fields {
        Ipv4Fields {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 9),
            protocol: PROTO_UDP,
            payload_len: 100,
            ttl: 61,
            ident: 0x1234,
            with_ftc_option: false,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut buf = [0u8; 64];
        let f = fields();
        let hlen = emit(&mut buf, &f).unwrap();
        assert_eq!(hlen, MIN_HEADER_LEN);
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.src(), f.src);
        assert_eq!(v.dst(), f.dst);
        assert_eq!(v.protocol(), PROTO_UDP);
        assert_eq!(v.total_len(), 120);
        assert_eq!(v.ttl(), 61);
        assert_eq!(v.ident(), 0x1234);
        v.verify_checksum().unwrap();
        assert_eq!(v.ftc_option(), None);
    }

    #[test]
    fn ftc_option_roundtrip() {
        let mut buf = [0u8; 64];
        let mut f = fields();
        f.with_ftc_option = true;
        let hlen = emit(&mut buf, &f).unwrap();
        assert_eq!(hlen, MIN_HEADER_LEN + OPTION_FTC_LEN);
        let v = Ipv4View::new(&buf).unwrap();
        v.verify_checksum().unwrap();
        assert_eq!(v.ftc_option(), Some(0));

        set_ftc_trailer_len(&mut buf, 314).unwrap();
        let v = Ipv4View::new(&buf).unwrap();
        v.verify_checksum().unwrap();
        assert_eq!(v.ftc_option(), Some(314));
    }

    #[test]
    fn ftc_option_missing() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        assert_eq!(
            set_ftc_trailer_len(&mut buf, 3),
            Err(WireError::Unsupported)
        );
    }

    #[test]
    fn total_len_update_keeps_checksum_valid() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        set_total_len(&mut buf, 400).unwrap();
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.total_len(), 400);
        v.verify_checksum().unwrap();
    }

    #[test]
    fn nat_rewrites_keep_checksum_valid() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        set_src(&mut buf, Ipv4Addr::new(1, 2, 3, 4)).unwrap();
        set_dst(&mut buf, Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.src(), Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(v.dst(), Ipv4Addr::new(8, 8, 8, 8));
        v.verify_checksum().unwrap();
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4View::new(&buf).unwrap_err(), WireError::BadMagic);
        assert_eq!(Ipv4View::new(&[0u8; 10]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        buf[0] = 0x44; // ihl = 16 bytes < 20
        assert_eq!(Ipv4View::new(&buf).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = [0u8; 64];
        emit(&mut buf, &fields()).unwrap();
        buf[15] ^= 0xff;
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.verify_checksum(), Err(WireError::BadChecksum));
    }
}
