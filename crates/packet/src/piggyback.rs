//! The FTC piggyback message: piggyback logs, commit vectors, and their
//! trailer wire format (paper §4.3, §5.1, §6).
//!
//! A *piggyback log* carries the state updates of one packet transaction at
//! one middlebox: a sparse *data dependency vector* (the pre-increment
//! sequence number of every state partition the transaction read or wrote)
//! plus the written key/value pairs. A *commit vector* is appended by the
//! tail of a replication group and announces the latest updates replicated
//! `f + 1` times. The *piggyback message* is the list of both that rides at
//! the end of the packet.

use crate::{WireError, WireResult};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A per-partition sequence number.
pub type SeqNo = u64;

/// Identifier of a middlebox within a chain (its position, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MboxId(pub u16);

impl core::fmt::Display for MboxId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A sparse data dependency vector: `(partition index, sequence number)`
/// pairs for the partitions a transaction touched, sorted by index.
/// Untouched partitions are implicit "don't care" entries (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DepVector {
    entries: Vec<(u16, SeqNo)>,
}

impl DepVector {
    /// Creates an empty (all don't-care) vector.
    pub fn new() -> Self {
        DepVector::default()
    }

    /// Creates a vector from `(partition, seq)` pairs; sorts and checks for
    /// duplicate partitions.
    pub fn from_entries(mut entries: Vec<(u16, SeqNo)>) -> WireResult<Self> {
        entries.sort_unstable_by_key(|e| e.0);
        if entries.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(WireError::BadLength);
        }
        Ok(DepVector { entries })
    }

    /// The non-don't-care entries, sorted by partition index.
    pub fn entries(&self) -> &[(u16, SeqNo)] {
        &self.entries
    }

    /// Number of concrete entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if every entry is don't-care.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the sequence number recorded for `partition`, if any.
    pub fn get(&self, partition: u16) -> Option<SeqNo> {
        self.entries
            .binary_search_by_key(&partition, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The apply-rule check (paper Fig. 3): this log is applicable at a
    /// replica whose per-partition applied counters are `max` iff
    /// `max[p] == seq` for every concrete entry `(p, seq)`.
    pub fn applicable_at(&self, max: &[SeqNo]) -> Applicability {
        let mut stale = false;
        for &(p, seq) in &self.entries {
            let m = max.get(p as usize).copied().unwrap_or(0);
            if m < seq {
                return Applicability::NotYet;
            }
            if m > seq {
                stale = true;
            }
        }
        if stale {
            // At least one partition already advanced past this log. With
            // FIFO links this only happens for retransmitted duplicates, in
            // which case *all* entries have been applied.
            Applicability::Stale
        } else {
            Applicability::Ready
        }
    }

    /// True iff every entry has been applied under `max` (i.e.
    /// `max[p] > seq` for all entries) — used by the buffer release rule.
    pub fn committed_under(&self, max: &[SeqNo]) -> bool {
        self.entries
            .iter()
            .all(|&(p, seq)| max.get(p as usize).copied().unwrap_or(0) > seq)
    }
}

/// Result of testing a dependency vector against a replica's MAX vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// All dependencies are satisfied exactly; apply now.
    Ready,
    /// Some dependency has not been applied yet; park the log.
    NotYet,
    /// The log was already applied (duplicate delivery); drop it.
    Stale,
}

/// A single state write carried in a piggyback log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateWrite {
    /// State variable key.
    pub key: Bytes,
    /// New value. An empty value encodes a deletion.
    pub value: Bytes,
    /// The state partition the key hashes to (recorded so replicas need not
    /// recompute the hash).
    pub partition: u16,
}

/// The state updates of one packet transaction at one middlebox.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiggybackLog {
    /// Which middlebox produced this log.
    pub mbox: MboxId,
    /// Sparse dependency vector: pre-increment sequence numbers of every
    /// partition the transaction read or wrote.
    pub deps: DepVector,
    /// The writes to replicate (empty for a read-only "no-op" log).
    pub writes: Vec<StateWrite>,
}

impl PiggybackLog {
    /// Serialized size in bytes of this log on the wire.
    pub fn wire_len(&self) -> usize {
        let mut n = 2 + 2 + self.deps.len() * 10 + 2;
        for w in &self.writes {
            n += 2 + 2 + w.key.len() + 2 + w.value.len();
        }
        n
    }
}

/// A commit vector: the tail's dense applied-counter vector for one
/// middlebox, announcing what has been replicated `f + 1` times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitVector {
    /// Which middlebox this commit vector covers.
    pub mbox: MboxId,
    /// Dense per-partition applied counters (`MAX`).
    pub max: Vec<SeqNo>,
}

impl CommitVector {
    /// Serialized size in bytes on the wire.
    pub fn wire_len(&self) -> usize {
        2 + 2 + self.max.len() * 8
    }

    /// Pointwise maximum with another commit vector for the same middlebox.
    pub fn merge_from(&mut self, other: &CommitVector) {
        if other.max.len() > self.max.len() {
            self.max.resize(other.max.len(), 0);
        }
        for (i, &v) in other.max.iter().enumerate() {
            if v > self.max[i] {
                self.max[i] = v;
            }
        }
    }
}

/// Flags carried in the piggyback message header.
pub mod flags {
    /// The packet is a propagating packet: replicas must process the message
    /// but not hand the packet to a middlebox (paper §5.1).
    pub const PROPAGATING: u8 = 0x01;
}

/// The full piggyback message appended to a packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiggybackMessage {
    /// Message flags (see [`flags`]).
    pub flags: u8,
    /// Piggyback logs, in chain order of their originating middleboxes.
    pub logs: Vec<PiggybackLog>,
    /// Commit vectors appended by tails.
    pub commits: Vec<CommitVector>,
}

const MAGIC: u32 = 0x4654_4321; // "FTC!"
const TAIL_MAGIC: u16 = 0x46ec;
const VERSION: u8 = 1;
/// Bytes of fixed framing: header (magic, version, flags, counts) + tail
/// (length, tail magic).
pub const FRAMING_LEN: usize = 4 + 1 + 1 + 2 + 2 + 4;

impl PiggybackMessage {
    /// A propagating-packet message with the given logs.
    pub fn propagating(logs: Vec<PiggybackLog>) -> Self {
        PiggybackMessage {
            flags: flags::PROPAGATING,
            logs,
            commits: Vec::new(),
        }
    }

    /// True if the propagating flag is set.
    pub fn is_propagating(&self) -> bool {
        self.flags & flags::PROPAGATING != 0
    }

    /// Returns the mutable commit vector for `mbox`, inserting a fresh one
    /// if absent.
    pub fn commit_entry(&mut self, mbox: MboxId, partitions: usize) -> &mut CommitVector {
        if let Some(i) = self.commits.iter().position(|c| c.mbox == mbox) {
            return &mut self.commits[i];
        }
        self.commits.push(CommitVector {
            mbox,
            max: vec![0; partitions],
        });
        self.commits.last_mut().expect("just pushed")
    }

    /// Serialized size in bytes, including framing.
    pub fn wire_len(&self) -> usize {
        FRAMING_LEN
            + self.logs.iter().map(PiggybackLog::wire_len).sum::<usize>()
            + self
                .commits
                .iter()
                .map(CommitVector::wire_len)
                .sum::<usize>()
    }

    /// Appends the serialized message to `out` and returns the number of
    /// bytes written.
    pub fn encode(&self, out: &mut BytesMut) -> usize {
        let start = out.len();
        out.put_u32(MAGIC);
        out.put_u8(VERSION);
        out.put_u8(self.flags);
        out.put_u16(self.logs.len() as u16);
        out.put_u16(self.commits.len() as u16);
        for log in &self.logs {
            out.put_u16(log.mbox.0);
            out.put_u16(log.deps.len() as u16);
            for &(p, s) in log.deps.entries() {
                out.put_u16(p);
                out.put_u64(s);
            }
            out.put_u16(log.writes.len() as u16);
            for w in &log.writes {
                out.put_u16(w.partition);
                out.put_u16(w.key.len() as u16);
                out.put_slice(&w.key);
                out.put_u16(w.value.len() as u16);
                out.put_slice(&w.value);
            }
        }
        for c in &self.commits {
            out.put_u16(c.mbox.0);
            out.put_u16(c.max.len() as u16);
            for &s in &c.max {
                out.put_u64(s);
            }
        }
        let len = out.len() - start + 4; // include the tail itself
        out.put_u16(len as u16);
        out.put_u16(TAIL_MAGIC);
        len
    }

    /// Decodes a message that occupies the *last* bytes of `buf`, returning
    /// the message and its total encoded length. Returns `Ok(None)` if the
    /// buffer does not end in a piggyback trailer.
    pub fn decode_trailing(buf: &[u8]) -> WireResult<Option<(PiggybackMessage, usize)>> {
        if buf.len() < FRAMING_LEN {
            return Ok(None);
        }
        let tail = &buf[buf.len() - 4..];
        if u16::from_be_bytes([tail[2], tail[3]]) != TAIL_MAGIC {
            return Ok(None);
        }
        let total = usize::from(u16::from_be_bytes([tail[0], tail[1]]));
        if total < FRAMING_LEN || total > buf.len() {
            return Err(WireError::BadLength);
        }
        let body = &buf[buf.len() - total..buf.len() - 4];
        let msg = Self::decode_body(body)?;
        Ok(Some((msg, total)))
    }

    fn decode_body(mut b: &[u8]) -> WireResult<PiggybackMessage> {
        let magic = take_u32(&mut b)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        if take_u8(&mut b)? != VERSION {
            return Err(WireError::BadMagic);
        }
        let flags = take_u8(&mut b)?;
        let n_logs = take_u16(&mut b)? as usize;
        let n_commits = take_u16(&mut b)? as usize;
        let mut logs = Vec::with_capacity(n_logs);
        for _ in 0..n_logs {
            let mbox = MboxId(take_u16(&mut b)?);
            let n_deps = take_u16(&mut b)? as usize;
            let mut entries = Vec::with_capacity(n_deps);
            for _ in 0..n_deps {
                let p = take_u16(&mut b)?;
                let s = take_u64(&mut b)?;
                entries.push((p, s));
            }
            let deps = DepVector::from_entries(entries)?;
            let n_writes = take_u16(&mut b)? as usize;
            let mut writes = Vec::with_capacity(n_writes);
            for _ in 0..n_writes {
                let partition = take_u16(&mut b)?;
                let klen = take_u16(&mut b)? as usize;
                let key = take_bytes(&mut b, klen)?;
                let vlen = take_u16(&mut b)? as usize;
                let value = take_bytes(&mut b, vlen)?;
                writes.push(StateWrite {
                    key,
                    value,
                    partition,
                });
            }
            logs.push(PiggybackLog { mbox, deps, writes });
        }
        let mut commits = Vec::with_capacity(n_commits);
        for _ in 0..n_commits {
            let mbox = MboxId(take_u16(&mut b)?);
            let len = take_u16(&mut b)? as usize;
            let mut max = Vec::with_capacity(len);
            for _ in 0..len {
                max.push(take_u64(&mut b)?);
            }
            commits.push(CommitVector { mbox, max });
        }
        if !b.is_empty() {
            return Err(WireError::BadLength);
        }
        Ok(PiggybackMessage {
            flags,
            logs,
            commits,
        })
    }
}

fn take_u8(b: &mut &[u8]) -> WireResult<u8> {
    let (&v, rest) = b.split_first().ok_or(WireError::Truncated)?;
    *b = rest;
    Ok(v)
}

fn take_u16(b: &mut &[u8]) -> WireResult<u16> {
    if b.len() < 2 {
        return Err(WireError::Truncated);
    }
    let v = u16::from_be_bytes([b[0], b[1]]);
    *b = &b[2..];
    Ok(v)
}

fn take_u32(b: &mut &[u8]) -> WireResult<u32> {
    if b.len() < 4 {
        return Err(WireError::Truncated);
    }
    let v = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
    *b = &b[4..];
    Ok(v)
}

fn take_u64(b: &mut &[u8]) -> WireResult<u64> {
    if b.len() < 8 {
        return Err(WireError::Truncated);
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    *b = &b[8..];
    Ok(u64::from_be_bytes(a))
}

fn take_bytes(b: &mut &[u8], n: usize) -> WireResult<Bytes> {
    if b.len() < n {
        return Err(WireError::Truncated);
    }
    let v = Bytes::copy_from_slice(&b[..n]);
    *b = &b[n..];
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> PiggybackMessage {
        PiggybackMessage {
            flags: 0,
            logs: vec![
                PiggybackLog {
                    mbox: MboxId(0),
                    deps: DepVector::from_entries(vec![(1, 7), (3, 2)]).unwrap(),
                    writes: vec![StateWrite {
                        key: Bytes::from_static(b"flow:a"),
                        value: Bytes::from_static(b"\x00\x01"),
                        partition: 1,
                    }],
                },
                PiggybackLog {
                    mbox: MboxId(2),
                    deps: DepVector::from_entries(vec![(0, 0)]).unwrap(),
                    writes: vec![],
                },
            ],
            commits: vec![CommitVector {
                mbox: MboxId(1),
                max: vec![4, 5, 6],
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = sample_message();
        let mut buf = BytesMut::from(&b"some packet bytes"[..]);
        let len = msg.encode(&mut buf);
        assert_eq!(len, msg.wire_len());
        let (decoded, total) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        assert_eq!(total, len);
        assert_eq!(decoded, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = PiggybackMessage::default();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let (decoded, total) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        assert_eq!(total, buf.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn no_trailer_detected() {
        assert_eq!(
            PiggybackMessage::decode_trailing(b"plain payload").unwrap(),
            None
        );
        assert_eq!(PiggybackMessage::decode_trailing(b"").unwrap(), None);
    }

    #[test]
    fn corrupt_length_rejected() {
        let msg = sample_message();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let n = buf.len();
        // Claim a length larger than the buffer.
        buf[n - 4..n - 2].copy_from_slice(&(n as u16 + 40).to_be_bytes());
        assert!(PiggybackMessage::decode_trailing(&buf).is_err());
    }

    #[test]
    fn duplicate_dep_partitions_rejected() {
        assert!(DepVector::from_entries(vec![(1, 0), (1, 2)]).is_err());
    }

    #[test]
    fn applicability_rules() {
        let d = DepVector::from_entries(vec![(0, 2), (2, 5)]).unwrap();
        assert_eq!(d.applicable_at(&[2, 99, 5]), Applicability::Ready);
        assert_eq!(d.applicable_at(&[1, 99, 5]), Applicability::NotYet);
        assert_eq!(d.applicable_at(&[3, 99, 6]), Applicability::Stale);
        // Mixed ahead/behind still means we must wait for the behind one.
        assert_eq!(d.applicable_at(&[3, 99, 4]), Applicability::NotYet);
        // Empty vector (read-only) is always ready.
        assert_eq!(DepVector::new().applicable_at(&[]), Applicability::Ready);
    }

    #[test]
    fn commit_rule() {
        let d = DepVector::from_entries(vec![(1, 3)]).unwrap();
        assert!(!d.committed_under(&[0, 3]));
        assert!(d.committed_under(&[0, 4]));
        // Missing partitions count as zero.
        assert!(!d.committed_under(&[]));
    }

    #[test]
    fn commit_vector_merge() {
        let mut a = CommitVector {
            mbox: MboxId(0),
            max: vec![1, 5],
        };
        let b = CommitVector {
            mbox: MboxId(0),
            max: vec![3, 2, 9],
        };
        a.merge_from(&b);
        assert_eq!(a.max, vec![3, 5, 9]);
    }

    #[test]
    fn paper_figure3_scenario() {
        // Head vector starts at [0, 3, 4] (1-indexed partitions in the paper;
        // 0-indexed here). Txn1 = W(p0): log deps {p0: 0}. Txn2 = R(p0),W(p2):
        // log deps {p0: 1, p2: 4}.
        let log1 = DepVector::from_entries(vec![(0, 0)]).unwrap();
        let log2 = DepVector::from_entries(vec![(0, 1), (2, 4)]).unwrap();

        let mut max = vec![0u64, 3, 4];
        // Packet 2 arrives first: held.
        assert_eq!(log2.applicable_at(&max), Applicability::NotYet);
        // Packet 1 arrives: applies.
        assert_eq!(log1.applicable_at(&max), Applicability::Ready);
        max[0] += 1;
        // Now the held packet applies.
        assert_eq!(log2.applicable_at(&max), Applicability::Ready);
        max[0] += 1;
        max[2] += 1;
        assert_eq!(max, vec![2, 3, 5]);
    }

    #[test]
    fn wire_len_matches_encoding() {
        for msg in [PiggybackMessage::default(), sample_message()] {
            let mut buf = BytesMut::new();
            let n = msg.encode(&mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, msg.wire_len());
        }
    }
}
