//! The FTC piggyback message: piggyback logs, commit vectors, and their
//! trailer wire format (paper §4.3, §5.1, §6).
//!
//! A *piggyback log* carries the state updates of one packet transaction at
//! one middlebox: a sparse *data dependency vector* (the pre-increment
//! sequence number of every state partition the transaction read or wrote)
//! plus the written key/value pairs. A *commit vector* is appended by the
//! tail of a replication group and announces the latest updates replicated
//! `f + 1` times. The *piggyback message* is the list of both that rides at
//! the end of the packet.

use crate::{WireError, WireResult};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A per-partition sequence number.
pub type SeqNo = u64;

/// Identifier of a middlebox within a chain (its position, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MboxId(pub u16);

impl core::fmt::Display for MboxId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A sparse data dependency vector: `(partition index, sequence number)`
/// pairs for the partitions a transaction touched, sorted by index.
/// Untouched partitions are implicit "don't care" entries (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DepVector {
    entries: Vec<(u16, SeqNo)>,
}

impl DepVector {
    /// Creates an empty (all don't-care) vector.
    pub fn new() -> Self {
        DepVector::default()
    }

    /// Creates a vector from `(partition, seq)` pairs; sorts and checks for
    /// duplicate partitions.
    pub fn from_entries(mut entries: Vec<(u16, SeqNo)>) -> WireResult<Self> {
        entries.sort_unstable_by_key(|e| e.0);
        if entries.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(WireError::BadLength);
        }
        Ok(DepVector { entries })
    }

    /// The non-don't-care entries, sorted by partition index.
    pub fn entries(&self) -> &[(u16, SeqNo)] {
        &self.entries
    }

    /// Number of concrete entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if every entry is don't-care.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the sequence number recorded for `partition`, if any.
    pub fn get(&self, partition: u16) -> Option<SeqNo> {
        self.entries
            .binary_search_by_key(&partition, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The apply-rule check (paper Fig. 3): this log is applicable at a
    /// replica whose per-partition applied counters are `max` iff
    /// `max[p] == seq` for every concrete entry `(p, seq)`.
    pub fn applicable_at(&self, max: &[SeqNo]) -> Applicability {
        let mut stale = false;
        for &(p, seq) in &self.entries {
            let m = max.get(p as usize).copied().unwrap_or(0);
            if m < seq {
                return Applicability::NotYet;
            }
            if m > seq {
                stale = true;
            }
        }
        if stale {
            // At least one partition already advanced past this log. With
            // FIFO links this only happens for retransmitted duplicates, in
            // which case *all* entries have been applied.
            Applicability::Stale
        } else {
            Applicability::Ready
        }
    }

    /// True iff every entry has been applied under `max` (i.e.
    /// `max[p] > seq` for all entries) — used by the buffer release rule.
    pub fn committed_under(&self, max: &[SeqNo]) -> bool {
        self.entries
            .iter()
            .all(|&(p, seq)| max.get(p as usize).copied().unwrap_or(0) > seq)
    }
}

/// Result of testing a dependency vector against a replica's MAX vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// All dependencies are satisfied exactly; apply now.
    Ready,
    /// Some dependency has not been applied yet; park the log.
    NotYet,
    /// The log was already applied (duplicate delivery); drop it.
    Stale,
}

/// A single state write carried in a piggyback log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateWrite {
    /// State variable key.
    pub key: Bytes,
    /// New value. An empty value encodes a deletion.
    pub value: Bytes,
    /// The state partition the key hashes to (recorded so replicas need not
    /// recompute the hash).
    pub partition: u16,
}

/// The state updates of one packet transaction at one middlebox.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiggybackLog {
    /// Which middlebox produced this log.
    pub mbox: MboxId,
    /// Sparse dependency vector: pre-increment sequence numbers of every
    /// partition the transaction read or wrote.
    pub deps: DepVector,
    /// The writes to replicate (empty for a read-only "no-op" log).
    pub writes: Vec<StateWrite>,
}

impl PiggybackLog {
    /// Serialized size in bytes of this log on the wire.
    pub fn wire_len(&self) -> usize {
        let mut n = 2 + 2 + self.deps.len() * 10 + 2;
        for w in &self.writes {
            n += 2 + 2 + w.key.len() + 2 + w.value.len();
        }
        n
    }
}

/// A commit vector: the tail's dense applied-counter vector for one
/// middlebox, announcing what has been replicated `f + 1` times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitVector {
    /// Which middlebox this commit vector covers.
    pub mbox: MboxId,
    /// Dense per-partition applied counters (`MAX`).
    pub max: Vec<SeqNo>,
}

impl CommitVector {
    /// Serialized size in bytes on the wire.
    pub fn wire_len(&self) -> usize {
        2 + 2 + self.max.len() * 8
    }

    /// Pointwise maximum with another commit vector for the same middlebox.
    pub fn merge_from(&mut self, other: &CommitVector) {
        if other.max.len() > self.max.len() {
            self.max.resize(other.max.len(), 0);
        }
        for (i, &v) in other.max.iter().enumerate() {
            if v > self.max[i] {
                self.max[i] = v;
            }
        }
    }
}

/// Flags carried in the piggyback message header.
pub mod flags {
    /// The packet is a propagating packet: replicas must process the message
    /// but not hand the packet to a middlebox (paper §5.1).
    pub const PROPAGATING: u8 = 0x01;
}

/// The full piggyback message appended to a packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiggybackMessage {
    /// Message flags (see [`flags`]).
    pub flags: u8,
    /// Piggyback logs, in chain order of their originating middleboxes.
    pub logs: Vec<PiggybackLog>,
    /// Commit vectors appended by tails.
    pub commits: Vec<CommitVector>,
}

const MAGIC: u32 = 0x4654_4321; // "FTC!"
const TAIL_MAGIC: u16 = 0x46ec;
const VERSION: u8 = 1;
/// Bytes of fixed framing: header (magic, version, flags, counts) + tail
/// (length, tail magic).
pub const FRAMING_LEN: usize = 4 + 1 + 1 + 2 + 2 + 4;

impl PiggybackMessage {
    /// A propagating-packet message with the given logs.
    pub fn propagating(logs: Vec<PiggybackLog>) -> Self {
        PiggybackMessage {
            flags: flags::PROPAGATING,
            logs,
            commits: Vec::new(),
        }
    }

    /// True if the propagating flag is set.
    pub fn is_propagating(&self) -> bool {
        self.flags & flags::PROPAGATING != 0
    }

    /// Returns the mutable commit vector for `mbox`, inserting a fresh one
    /// if absent.
    pub fn commit_entry(&mut self, mbox: MboxId, partitions: usize) -> &mut CommitVector {
        if let Some(i) = self.commits.iter().position(|c| c.mbox == mbox) {
            return &mut self.commits[i];
        }
        self.commits.push(CommitVector {
            mbox,
            max: vec![0; partitions],
        });
        self.commits.last_mut().expect("just pushed")
    }

    /// Serialized size in bytes, including framing.
    pub fn wire_len(&self) -> usize {
        FRAMING_LEN
            + self.logs.iter().map(PiggybackLog::wire_len).sum::<usize>()
            + self
                .commits
                .iter()
                .map(CommitVector::wire_len)
                .sum::<usize>()
    }

    /// Appends the serialized message to `out` and returns the number of
    /// bytes written.
    pub fn encode(&self, out: &mut BytesMut) -> usize {
        encode_parts(self.flags, &self.logs, &self.commits, out)
    }

    /// Decodes a message that occupies the *last* bytes of `buf`, returning
    /// the message and its total encoded length. Returns `Ok(None)` if the
    /// buffer does not end in a piggyback trailer.
    ///
    /// Key/value bytes are copied out of `buf`. On the hot read path prefer
    /// [`PiggybackMessage::decode_trailing_shared`] (zero-copy) or
    /// [`TrailerView`] (borrowed, allocation-free).
    pub fn decode_trailing(buf: &[u8]) -> WireResult<Option<(PiggybackMessage, usize)>> {
        let Some((body_start, total)) = locate_trailer(buf)? else {
            return Ok(None);
        };
        let body = &buf[body_start..buf.len() - 4];
        let msg = decode_body(body, &mut |r| Bytes::copy_from_slice(&body[r.start..r.end]))?;
        Ok(Some((msg, total)))
    }

    /// Zero-copy variant of [`PiggybackMessage::decode_trailing`]: the
    /// returned message's [`StateWrite`] keys and values are slices sharing
    /// `buf`'s allocation (reference-count bump, no byte copies).
    ///
    /// Accepts and rejects exactly the same inputs as `decode_trailing`
    /// (`proptest_piggyback_batch` checks the parity).
    pub fn decode_trailing_shared(buf: &Bytes) -> WireResult<Option<(PiggybackMessage, usize)>> {
        let Some((body_start, total)) = locate_trailer(buf)? else {
            return Ok(None);
        };
        let body = &buf[body_start..buf.len() - 4];
        let msg = decode_body(body, &mut |r| {
            buf.slice(body_start + r.start..body_start + r.end)
        })?;
        Ok(Some((msg, total)))
    }
}

/// Serializes `logs` as one feedback batch frame and returns the bytes
/// written. The output is byte-identical to
/// `PiggybackMessage { flags: 0, logs, commits: vec![] }.encode(out)` but
/// skips materializing the message: the buffer's log backlog is encoded
/// straight from a slice (no clone per resend) and the frame header is
/// amortized across the whole batch.
pub fn encode_batch(logs: &[PiggybackLog], out: &mut BytesMut) -> usize {
    encode_parts(0, logs, &[], out)
}

/// Serialized size in bytes [`encode_batch`] will produce for `logs`.
pub fn batch_wire_len(logs: &[PiggybackLog]) -> usize {
    FRAMING_LEN + logs.iter().map(PiggybackLog::wire_len).sum::<usize>()
}

/// Decodes a feedback batch frame from the tail of `buf`: the logs and the
/// frame's total length. Accepts exactly what [`encode_batch`] produces plus
/// any other valid trailer (extra commits are dropped — the feedback path
/// carries none), with rejection behaviour identical to
/// [`PiggybackMessage::decode_trailing`].
pub fn decode_batch(buf: &[u8]) -> WireResult<Option<(Vec<PiggybackLog>, usize)>> {
    Ok(PiggybackMessage::decode_trailing(buf)?.map(|(msg, total)| (msg.logs, total)))
}

fn encode_log(log: &PiggybackLog, out: &mut BytesMut) {
    out.put_u16(log.mbox.0);
    out.put_u16(log.deps.len() as u16);
    for &(p, s) in log.deps.entries() {
        out.put_u16(p);
        out.put_u64(s);
    }
    out.put_u16(log.writes.len() as u16);
    for w in &log.writes {
        out.put_u16(w.partition);
        out.put_u16(w.key.len() as u16);
        out.put_slice(&w.key);
        out.put_u16(w.value.len() as u16);
        out.put_slice(&w.value);
    }
}

pub(crate) fn encode_parts(
    flags: u8,
    logs: &[PiggybackLog],
    commits: &[CommitVector],
    out: &mut BytesMut,
) -> usize {
    let start = out.len();
    out.put_u32(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(flags);
    out.put_u16(logs.len() as u16);
    out.put_u16(commits.len() as u16);
    for log in logs {
        encode_log(log, out);
    }
    for c in commits {
        out.put_u16(c.mbox.0);
        out.put_u16(c.max.len() as u16);
        for &s in &c.max {
            out.put_u64(s);
        }
    }
    let len = out.len() - start + 4; // include the tail itself
    out.put_u16(len as u16);
    out.put_u16(TAIL_MAGIC);
    len
}

/// Finds the trailer at the end of `buf`: `Ok(Some((body_start, total)))`
/// with `total` the whole-frame length including framing, `Ok(None)` when
/// the buffer does not end in a trailer.
fn locate_trailer(buf: &[u8]) -> WireResult<Option<(usize, usize)>> {
    if buf.len() < FRAMING_LEN {
        return Ok(None);
    }
    let tail = &buf[buf.len() - 4..];
    if u16::from_be_bytes([tail[2], tail[3]]) != TAIL_MAGIC {
        return Ok(None);
    }
    let total = usize::from(u16::from_be_bytes([tail[0], tail[1]]));
    if total < FRAMING_LEN || total > buf.len() {
        return Err(WireError::BadLength);
    }
    Ok(Some((buf.len() - total, total)))
}

/// Body decoder, parameterized over how key/value byte strings are
/// materialized (`mk` gets a body-relative byte range): copied for the
/// legacy path, shared slices for the zero-copy path.
fn decode_body(
    body: &[u8],
    mk: &mut dyn FnMut(core::ops::Range<usize>) -> Bytes,
) -> WireResult<PiggybackMessage> {
    let mut cur = Cursor::new(body);
    let magic = cur.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    if cur.u8()? != VERSION {
        return Err(WireError::BadMagic);
    }
    let flags = cur.u8()?;
    let n_logs = cur.u16()? as usize;
    let n_commits = cur.u16()? as usize;
    let mut logs = Vec::with_capacity(n_logs);
    for _ in 0..n_logs {
        let mbox = MboxId(cur.u16()?);
        let n_deps = cur.u16()? as usize;
        let mut entries = Vec::with_capacity(n_deps);
        for _ in 0..n_deps {
            let p = cur.u16()?;
            let s = cur.u64()?;
            entries.push((p, s));
        }
        let deps = DepVector::from_entries(entries)?;
        let n_writes = cur.u16()? as usize;
        let mut writes = Vec::with_capacity(n_writes);
        for _ in 0..n_writes {
            let partition = cur.u16()?;
            let klen = cur.u16()? as usize;
            let key = mk(cur.range(klen)?);
            let vlen = cur.u16()? as usize;
            let value = mk(cur.range(vlen)?);
            writes.push(StateWrite {
                key,
                value,
                partition,
            });
        }
        logs.push(PiggybackLog { mbox, deps, writes });
    }
    let mut commits = Vec::with_capacity(n_commits);
    for _ in 0..n_commits {
        let mbox = MboxId(cur.u16()?);
        let len = cur.u16()? as usize;
        let mut max = Vec::with_capacity(len);
        for _ in 0..len {
            max.push(cur.u64()?);
        }
        commits.push(CommitVector { mbox, max });
    }
    if cur.remaining() != 0 {
        return Err(WireError::BadLength);
    }
    Ok(PiggybackMessage {
        flags,
        logs,
        commits,
    })
}

/// Position-tracking reader over a byte slice; byte-string fields come back
/// as ranges so callers decide whether to copy or share them.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn range(&mut self, n: usize) -> WireResult<core::ops::Range<usize>> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let r = self.pos..self.pos + n;
        self.pos += n;
        Ok(r)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> WireResult<u16> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> WireResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> WireResult<u64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_be_bytes(a))
    }
}

/// A borrowed, allocation-free view of a piggyback trailer.
///
/// [`TrailerView::parse_trailing`] validates the whole frame once (same
/// accept/reject behaviour as [`PiggybackMessage::decode_trailing`], minus
/// materialization); the iterators then re-walk the validated bytes lazily,
/// so inspecting a trailer — counting logs, checking applicability, reading
/// a commit vector — touches no allocator at all. Use [`LogView::to_owned`]
/// to materialize only the logs that survive inspection.
#[derive(Debug, Clone, Copy)]
pub struct TrailerView<'a> {
    /// Message body after the fixed header (log + commit records).
    records: &'a [u8],
    flags: u8,
    n_logs: u16,
    n_commits: u16,
    /// Offset of the first commit record within `records`.
    commits_at: usize,
    total: usize,
}

impl<'a> TrailerView<'a> {
    /// Parses and validates a trailer at the end of `buf` without copying
    /// or allocating. `Ok(None)` when the buffer does not end in a trailer.
    pub fn parse_trailing(buf: &'a [u8]) -> WireResult<Option<TrailerView<'a>>> {
        let Some((body_start, total)) = locate_trailer(buf)? else {
            return Ok(None);
        };
        let body = &buf[body_start..buf.len() - 4];
        let mut cur = Cursor::new(body);
        if cur.u32()? != MAGIC {
            return Err(WireError::BadMagic);
        }
        if cur.u8()? != VERSION {
            return Err(WireError::BadMagic);
        }
        let flags = cur.u8()?;
        let n_logs = cur.u16()?;
        let n_commits = cur.u16()?;
        let records = &body[cur.pos..];
        let mut rcur = Cursor::new(records);
        for _ in 0..n_logs {
            skip_log(&mut rcur)?;
        }
        let commits_at = rcur.pos;
        for _ in 0..n_commits {
            rcur.u16()?; // mbox
            let len = rcur.u16()? as usize;
            rcur.take(len * 8)?;
        }
        if rcur.remaining() != 0 {
            return Err(WireError::BadLength);
        }
        Ok(Some(TrailerView {
            records,
            flags,
            n_logs,
            n_commits,
            commits_at,
            total,
        }))
    }

    /// Message flags (see [`flags`]).
    pub fn flags(&self) -> u8 {
        self.flags
    }

    /// True if the propagating flag is set.
    pub fn is_propagating(&self) -> bool {
        self.flags & flags::PROPAGATING != 0
    }

    /// Number of piggyback logs in the message.
    pub fn log_count(&self) -> usize {
        usize::from(self.n_logs)
    }

    /// Number of commit vectors in the message.
    pub fn commit_count(&self) -> usize {
        usize::from(self.n_commits)
    }

    /// Total encoded length of the trailer, including framing.
    pub fn wire_len(&self) -> usize {
        self.total
    }

    /// Iterates the logs without materializing them.
    pub fn logs(&self) -> impl Iterator<Item = LogView<'a>> + '_ {
        let mut cur = Cursor::new(&self.records[..self.commits_at]);
        (0..self.n_logs).map(move |_| {
            let start = cur.pos;
            skip_log(&mut cur).expect("validated by parse_trailing");
            LogView {
                raw: &cur.buf[start..cur.pos],
            }
        })
    }

    /// Iterates the commit vectors without materializing them.
    pub fn commits(&self) -> impl Iterator<Item = CommitView<'a>> + '_ {
        let mut cur = Cursor::new(&self.records[self.commits_at..]);
        (0..self.n_commits).map(move |_| {
            let mbox = MboxId(cur.u16().expect("validated by parse_trailing"));
            let len = cur.u16().expect("validated by parse_trailing") as usize;
            let max = cur.take(len * 8).expect("validated by parse_trailing");
            CommitView { mbox, max }
        })
    }
}

/// Skips one log record, validating its framing (field lengths in bounds)
/// and its dependency vector, so [`TrailerView`] accepts exactly the inputs
/// the owned decoder accepts.
fn skip_log(cur: &mut Cursor<'_>) -> WireResult<()> {
    cur.u16()?; // mbox
    let n_deps = cur.u16()? as usize;
    let deps = cur.take(n_deps * 10)?;
    // Duplicate partitions are rejected like `DepVector::from_entries`;
    // allocation-free O(n²) is fine, dependency vectors are tiny.
    for i in 0..n_deps {
        let pi = u16::from_be_bytes([deps[i * 10], deps[i * 10 + 1]]);
        for j in i + 1..n_deps {
            if pi == u16::from_be_bytes([deps[j * 10], deps[j * 10 + 1]]) {
                return Err(WireError::BadLength);
            }
        }
    }
    let n_writes = cur.u16()? as usize;
    for _ in 0..n_writes {
        cur.u16()?; // partition
        let klen = cur.u16()? as usize;
        cur.take(klen)?;
        let vlen = cur.u16()? as usize;
        cur.take(vlen)?;
    }
    Ok(())
}

/// Borrowed view of one piggyback log within a [`TrailerView`].
#[derive(Debug, Clone, Copy)]
pub struct LogView<'a> {
    /// The log's validated wire bytes.
    raw: &'a [u8],
}

impl<'a> LogView<'a> {
    /// The originating middlebox.
    pub fn mbox(&self) -> MboxId {
        MboxId(u16::from_be_bytes([self.raw[0], self.raw[1]]))
    }

    /// Iterates the dependency entries in wire order.
    pub fn deps(&self) -> impl Iterator<Item = (u16, SeqNo)> + 'a {
        let mut cur = Cursor::new(self.raw);
        cur.u16().expect("validated");
        let n_deps = cur.u16().expect("validated");
        (0..n_deps).map(move |_| {
            let p = cur.u16().expect("validated");
            let s = cur.u64().expect("validated");
            (p, s)
        })
    }

    /// Iterates the state writes, borrowing keys and values.
    pub fn writes(&self) -> impl Iterator<Item = WriteView<'a>> + 'a {
        let mut cur = Cursor::new(self.raw);
        cur.u16().expect("validated");
        let n_deps = cur.u16().expect("validated") as usize;
        cur.take(n_deps * 10).expect("validated");
        let n_writes = cur.u16().expect("validated");
        (0..n_writes).map(move |_| {
            let partition = cur.u16().expect("validated");
            let klen = cur.u16().expect("validated") as usize;
            let key = cur.take(klen).expect("validated");
            let vlen = cur.u16().expect("validated") as usize;
            let value = cur.take(vlen).expect("validated");
            WriteView {
                partition,
                key,
                value,
            }
        })
    }

    /// Materializes the log (copies keys/values; validates the dependency
    /// vector exactly like the owned decoder).
    pub fn to_owned(&self) -> WireResult<PiggybackLog> {
        let deps = DepVector::from_entries(self.deps().collect())?;
        let writes = self
            .writes()
            .map(|w| StateWrite {
                key: Bytes::copy_from_slice(w.key),
                value: Bytes::copy_from_slice(w.value),
                partition: w.partition,
            })
            .collect();
        Ok(PiggybackLog {
            mbox: self.mbox(),
            deps,
            writes,
        })
    }
}

/// Borrowed view of one state write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteView<'a> {
    /// The state partition the key hashes to.
    pub partition: u16,
    /// State variable key.
    pub key: &'a [u8],
    /// New value (empty encodes a deletion).
    pub value: &'a [u8],
}

/// Borrowed view of one commit vector.
#[derive(Debug, Clone, Copy)]
pub struct CommitView<'a> {
    mbox: MboxId,
    /// Raw big-endian u64s.
    max: &'a [u8],
}

impl CommitView<'_> {
    /// Which middlebox this commit vector covers.
    pub fn mbox(&self) -> MboxId {
        self.mbox
    }

    /// Number of per-partition counters.
    pub fn len(&self) -> usize {
        self.max.len() / 8
    }

    /// True when the vector carries no counters.
    pub fn is_empty(&self) -> bool {
        self.max.is_empty()
    }

    /// Iterates the per-partition applied counters.
    pub fn entries(&self) -> impl Iterator<Item = SeqNo> + '_ {
        self.max.chunks_exact(8).map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            u64::from_be_bytes(a)
        })
    }

    /// Materializes the commit vector.
    pub fn to_owned(&self) -> CommitVector {
        CommitVector {
            mbox: self.mbox,
            max: self.entries().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> PiggybackMessage {
        PiggybackMessage {
            flags: 0,
            logs: vec![
                PiggybackLog {
                    mbox: MboxId(0),
                    deps: DepVector::from_entries(vec![(1, 7), (3, 2)]).unwrap(),
                    writes: vec![StateWrite {
                        key: Bytes::from_static(b"flow:a"),
                        value: Bytes::from_static(b"\x00\x01"),
                        partition: 1,
                    }],
                },
                PiggybackLog {
                    mbox: MboxId(2),
                    deps: DepVector::from_entries(vec![(0, 0)]).unwrap(),
                    writes: vec![],
                },
            ],
            commits: vec![CommitVector {
                mbox: MboxId(1),
                max: vec![4, 5, 6],
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = sample_message();
        let mut buf = BytesMut::from(&b"some packet bytes"[..]);
        let len = msg.encode(&mut buf);
        assert_eq!(len, msg.wire_len());
        let (decoded, total) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        assert_eq!(total, len);
        assert_eq!(decoded, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = PiggybackMessage::default();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let (decoded, total) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        assert_eq!(total, buf.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn no_trailer_detected() {
        assert_eq!(
            PiggybackMessage::decode_trailing(b"plain payload").unwrap(),
            None
        );
        assert_eq!(PiggybackMessage::decode_trailing(b"").unwrap(), None);
    }

    #[test]
    fn corrupt_length_rejected() {
        let msg = sample_message();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let n = buf.len();
        // Claim a length larger than the buffer.
        buf[n - 4..n - 2].copy_from_slice(&(n as u16 + 40).to_be_bytes());
        assert!(PiggybackMessage::decode_trailing(&buf).is_err());
    }

    #[test]
    fn duplicate_dep_partitions_rejected() {
        assert!(DepVector::from_entries(vec![(1, 0), (1, 2)]).is_err());
    }

    #[test]
    fn applicability_rules() {
        let d = DepVector::from_entries(vec![(0, 2), (2, 5)]).unwrap();
        assert_eq!(d.applicable_at(&[2, 99, 5]), Applicability::Ready);
        assert_eq!(d.applicable_at(&[1, 99, 5]), Applicability::NotYet);
        assert_eq!(d.applicable_at(&[3, 99, 6]), Applicability::Stale);
        // Mixed ahead/behind still means we must wait for the behind one.
        assert_eq!(d.applicable_at(&[3, 99, 4]), Applicability::NotYet);
        // Empty vector (read-only) is always ready.
        assert_eq!(DepVector::new().applicable_at(&[]), Applicability::Ready);
    }

    #[test]
    fn commit_rule() {
        let d = DepVector::from_entries(vec![(1, 3)]).unwrap();
        assert!(!d.committed_under(&[0, 3]));
        assert!(d.committed_under(&[0, 4]));
        // Missing partitions count as zero.
        assert!(!d.committed_under(&[]));
    }

    #[test]
    fn commit_vector_merge() {
        let mut a = CommitVector {
            mbox: MboxId(0),
            max: vec![1, 5],
        };
        let b = CommitVector {
            mbox: MboxId(0),
            max: vec![3, 2, 9],
        };
        a.merge_from(&b);
        assert_eq!(a.max, vec![3, 5, 9]);
    }

    #[test]
    fn paper_figure3_scenario() {
        // Head vector starts at [0, 3, 4] (1-indexed partitions in the paper;
        // 0-indexed here). Txn1 = W(p0): log deps {p0: 0}. Txn2 = R(p0),W(p2):
        // log deps {p0: 1, p2: 4}.
        let log1 = DepVector::from_entries(vec![(0, 0)]).unwrap();
        let log2 = DepVector::from_entries(vec![(0, 1), (2, 4)]).unwrap();

        let mut max = vec![0u64, 3, 4];
        // Packet 2 arrives first: held.
        assert_eq!(log2.applicable_at(&max), Applicability::NotYet);
        // Packet 1 arrives: applies.
        assert_eq!(log1.applicable_at(&max), Applicability::Ready);
        max[0] += 1;
        // Now the held packet applies.
        assert_eq!(log2.applicable_at(&max), Applicability::Ready);
        max[0] += 1;
        max[2] += 1;
        assert_eq!(max, vec![2, 3, 5]);
    }

    #[test]
    fn batch_encoding_matches_message_encoding() {
        let logs = sample_message().logs;
        let mut batched = BytesMut::new();
        let n = encode_batch(&logs, &mut batched);
        assert_eq!(n, batch_wire_len(&logs));
        let msg = PiggybackMessage {
            flags: 0,
            logs: logs.clone(),
            commits: vec![],
        };
        let mut unbatched = BytesMut::new();
        msg.encode(&mut unbatched);
        assert_eq!(&batched[..], &unbatched[..], "byte-identical framing");
        let (got, total) = decode_batch(&batched).unwrap().unwrap();
        assert_eq!(total, n);
        assert_eq!(got, logs);
    }

    #[test]
    fn shared_decode_matches_copying_decode() {
        let msg = sample_message();
        let mut buf = BytesMut::from(&b"packet payload"[..]);
        msg.encode(&mut buf);
        let frozen = buf.freeze();
        let (shared, n1) = PiggybackMessage::decode_trailing_shared(&frozen)
            .unwrap()
            .unwrap();
        let (copied, n2) = PiggybackMessage::decode_trailing(&frozen).unwrap().unwrap();
        assert_eq!(n1, n2);
        assert_eq!(shared, copied);
        assert_eq!(shared, msg);
    }

    #[test]
    fn view_exposes_logs_and_commits_without_alloc() {
        let msg = sample_message();
        let mut buf = BytesMut::from(&b"xyz"[..]);
        msg.encode(&mut buf);
        let view = TrailerView::parse_trailing(&buf).unwrap().unwrap();
        assert_eq!(view.log_count(), msg.logs.len());
        assert_eq!(view.commit_count(), msg.commits.len());
        assert_eq!(view.wire_len(), msg.wire_len());
        assert!(!view.is_propagating());
        for (lv, log) in view.logs().zip(&msg.logs) {
            assert_eq!(lv.mbox(), log.mbox);
            assert_eq!(
                lv.deps().collect::<Vec<_>>(),
                log.deps.entries().to_vec(),
                "deps borrowed in wire order"
            );
            let writes: Vec<_> = lv.writes().collect();
            assert_eq!(writes.len(), log.writes.len());
            for (wv, w) in writes.iter().zip(&log.writes) {
                assert_eq!(wv.partition, w.partition);
                assert_eq!(wv.key, &w.key[..]);
                assert_eq!(wv.value, &w.value[..]);
            }
            assert_eq!(lv.to_owned().unwrap(), *log);
        }
        for (cv, c) in view.commits().zip(&msg.commits) {
            assert_eq!(cv.mbox(), c.mbox);
            assert_eq!(cv.entries().collect::<Vec<_>>(), c.max);
            assert_eq!(cv.to_owned(), *c);
        }
    }

    #[test]
    fn view_rejects_exactly_what_decode_rejects() {
        let msg = sample_message();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        // Corrupt every single byte in turn; the view and the decoder must
        // agree on accept/reject (and on accept, on the parsed message).
        for i in 0..buf.len() {
            let mut bad = BytesMut::from(&buf[..]);
            bad[i] ^= 0xFF;
            let owned = PiggybackMessage::decode_trailing(&bad);
            let view = TrailerView::parse_trailing(&bad);
            match (&owned, &view) {
                (Ok(Some((m, t1))), Ok(Some(v))) => {
                    assert_eq!(*t1, v.wire_len(), "flip at byte {i}");
                    assert_eq!(m.logs.len(), v.log_count(), "flip at byte {i}");
                }
                (Ok(None), Ok(None)) => {}
                (Err(_), Err(_)) => {}
                _ => panic!("divergence at byte {i}: owned={owned:?} view={view:?}"),
            }
        }
    }

    #[test]
    fn wire_len_matches_encoding() {
        for msg in [PiggybackMessage::default(), sample_message()] {
            let mut buf = BytesMut::new();
            let n = msg.encode(&mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, msg.wire_len());
        }
    }
}
