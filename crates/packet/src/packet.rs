//! The owned packet buffer used throughout the data plane.

use crate::ether::{self, EthernetView, MacAddr};
use crate::flow::FlowKey;
use crate::ip::{self, Ipv4View};
use crate::piggyback::{PiggybackMessage, TrailerView};
use crate::{WireError, WireResult};
use bytes::BytesMut;

/// An owned, mutable packet: Ethernet + IPv4 (+ L4 + payload), optionally
/// followed by an FTC piggyback trailer.
///
/// Invariant: the IPv4 total-length field covers the bytes from the start of
/// the IP header up to but *excluding* the trailer, so a middlebox that
/// consults the header never sees FTC bytes (paper §6: "the relevant header
/// fields are updated to not account for the piggyback message"). The
/// trailer is self-delimiting at the end of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    data: BytesMut,
}

impl Packet {
    /// Wraps a raw frame, validating that it is Ethernet + IPv4.
    pub fn from_frame(data: BytesMut) -> WireResult<Packet> {
        let eth = EthernetView::new(&data)?;
        if eth.ethertype() != ether::ETHERTYPE_IPV4 {
            return Err(WireError::Unsupported);
        }
        Ipv4View::new(&data[ether::HEADER_LEN..])?;
        Ok(Packet { data })
    }

    /// Wraps a raw frame without validation (e.g. frames that were just
    /// emitted by a builder).
    pub fn from_frame_unchecked(data: BytesMut) -> Packet {
        Packet { data }
    }

    /// The full frame bytes, including any trailer.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Total frame length in bytes, including any trailer. This is the
    /// length that occupies the wire.
    pub fn wire_len(&self) -> usize {
        self.data.len()
    }

    /// Consumes the packet and returns the underlying buffer.
    pub fn into_bytes(self) -> BytesMut {
        self.data
    }

    /// The Ethernet header view.
    pub fn eth(&self) -> EthernetView<'_> {
        EthernetView::new(&self.data).expect("validated at construction")
    }

    /// The IPv4 header view.
    pub fn ipv4(&self) -> WireResult<Ipv4View<'_>> {
        Ipv4View::new(&self.data[ether::HEADER_LEN..])
    }

    /// Mutable access to the bytes starting at the IPv4 header.
    pub fn l3_mut(&mut self) -> &mut [u8] {
        &mut self.data[ether::HEADER_LEN..]
    }

    /// The bytes starting at the IPv4 header (including any trailer).
    pub fn l3(&self) -> &[u8] {
        &self.data[ether::HEADER_LEN..]
    }

    /// Offset of the L4 header within the frame.
    pub fn l4_offset(&self) -> WireResult<usize> {
        Ok(ether::HEADER_LEN + self.ipv4()?.header_len())
    }

    /// The L4 header + payload, excluding the trailer.
    pub fn l4(&self) -> WireResult<&[u8]> {
        let start = self.l4_offset()?;
        let end = self.ip_end()?;
        self.data.get(start..end).ok_or(WireError::Truncated)
    }

    /// Mutable L4 header + payload, excluding the trailer.
    pub fn l4_mut(&mut self) -> WireResult<&mut [u8]> {
        let start = self.l4_offset()?;
        let end = self.ip_end()?;
        self.data.get_mut(start..end).ok_or(WireError::Truncated)
    }

    /// End offset (within the frame) of the IP datagram per its total-length
    /// field — i.e. where the trailer begins, if any.
    pub fn ip_end(&self) -> WireResult<usize> {
        let total = self.ipv4()?.total_len() as usize;
        let end = ether::HEADER_LEN + total;
        if end > self.data.len() {
            return Err(WireError::BadLength);
        }
        Ok(end)
    }

    /// The 5-tuple flow key.
    pub fn flow_key(&self) -> WireResult<FlowKey> {
        FlowKey::from_ipv4(self.l3())
    }

    /// True if the frame ends in a piggyback trailer.
    pub fn has_piggyback(&self) -> bool {
        matches!(TrailerView::parse_trailing(&self.data), Ok(Some(_)))
    }

    /// Borrowed, allocation-free view of the piggyback trailer, if present.
    /// Use this to inspect logs and commit vectors without detaching (and
    /// without copying a single byte).
    pub fn piggyback_view(&self) -> WireResult<Option<TrailerView<'_>>> {
        TrailerView::parse_trailing(&self.data)
    }

    /// Appends a piggyback message as a trailer and records its length in
    /// the FTC IP option if the header carries one. The IP total-length
    /// field is left covering only the original datagram.
    pub fn attach_piggyback(&mut self, msg: &PiggybackMessage) -> WireResult<()> {
        self.attach_piggyback_parts(msg.flags, &msg.logs, &msg.commits)
    }

    /// Like [`Packet::attach_piggyback`], but serializes straight from
    /// borrowed parts — no [`PiggybackMessage`] needs to be materialized.
    /// This is the hot-path variant: the forwarder encodes pooled staging
    /// vectors through it without moving the logs into a message first.
    pub fn attach_piggyback_parts(
        &mut self,
        flags: u8,
        logs: &[crate::piggyback::PiggybackLog],
        commits: &[crate::piggyback::CommitVector],
    ) -> WireResult<()> {
        debug_assert!(!self.has_piggyback(), "trailer already attached");
        let len = crate::piggyback::encode_parts(flags, logs, commits, &mut self.data);
        // Record in the IP option when present; optional otherwise.
        let _ = ip::set_ftc_trailer_len(&mut self.data[ether::HEADER_LEN..], len as u16);
        Ok(())
    }

    /// Removes and returns the piggyback trailer, if present.
    ///
    /// Zero-copy: the trailer is split off the frame in place and the
    /// returned message's write keys/values share that one allocation
    /// instead of being copied out individually.
    pub fn detach_piggyback(&mut self) -> WireResult<Option<PiggybackMessage>> {
        // Validate before mutating so a corrupt trailer leaves the packet
        // intact for the caller to drop.
        let Some(view) = TrailerView::parse_trailing(&self.data)? else {
            return Ok(None);
        };
        let total = view.wire_len();
        let new_len = self.data.len() - total;
        let tail = self.data.split_off(new_len).freeze();
        let _ = ip::set_ftc_trailer_len(&mut self.data[ether::HEADER_LEN..], 0);
        let msg = PiggybackMessage::decode_trailing_shared(&tail)?
            .map(|(msg, _)| msg)
            .expect("trailer validated by parse_trailing");
        Ok(Some(msg))
    }

    /// Replaces the current trailer (if any) with `msg` in one pass.
    pub fn replace_piggyback(&mut self, msg: &PiggybackMessage) -> WireResult<()> {
        self.detach_piggyback()?;
        self.attach_piggyback(msg)
    }
}

/// Builds a minimal *propagating packet*: an Ethernet + IPv4 frame whose only
/// purpose is to carry a piggyback message through the chain (paper §5.1).
pub fn propagating_packet(src: MacAddr, dst: MacAddr, msg: &PiggybackMessage) -> Packet {
    debug_assert!(
        msg.is_propagating(),
        "propagating packets must carry the flag"
    );
    let mut pkt = propagating_header(src, dst);
    pkt.attach_piggyback(msg).expect("fresh packet");
    pkt
}

/// [`propagating_packet`] from borrowed logs: the propagating flag is set
/// implicitly and the trailer is encoded straight from the slice, so the
/// forwarder's idle path can carry a pooled staging vector without
/// materializing a [`PiggybackMessage`].
pub fn propagating_packet_from_logs(
    src: MacAddr,
    dst: MacAddr,
    logs: &[crate::piggyback::PiggybackLog],
) -> Packet {
    let mut pkt = propagating_header(src, dst);
    pkt.attach_piggyback_parts(crate::piggyback::flags::PROPAGATING, logs, &[])
        .expect("fresh packet");
    pkt
}

fn propagating_header(src: MacAddr, dst: MacAddr) -> Packet {
    let hdr_len = ether::HEADER_LEN + ip::MIN_HEADER_LEN + ip::OPTION_FTC_LEN;
    let mut data = BytesMut::zeroed(hdr_len);
    ether::emit(&mut data, src, dst, ether::ETHERTYPE_IPV4).expect("sized buffer");
    ip::emit(
        &mut data[ether::HEADER_LEN..],
        &ip::Ipv4Fields {
            protocol: 253, // RFC 3692 experimental protocol number
            with_ftc_option: true,
            ..Default::default()
        },
    )
    .expect("sized buffer");
    Packet { data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UdpPacketBuilder;
    use crate::piggyback::{MboxId, PiggybackLog, StateWrite};
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    fn sample_packet() -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1111)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 2222)
            .payload_len(32)
            .build()
    }

    fn sample_msg() -> PiggybackMessage {
        PiggybackMessage {
            flags: 0,
            logs: vec![PiggybackLog {
                mbox: MboxId(1),
                deps: Default::default(),
                writes: vec![StateWrite {
                    key: Bytes::from_static(b"k"),
                    value: Bytes::from_static(b"v"),
                    partition: 0,
                }],
            }],
            commits: vec![],
        }
    }

    #[test]
    fn attach_detach_roundtrip() {
        let mut pkt = sample_packet();
        let orig_len = pkt.wire_len();
        let msg = sample_msg();
        pkt.attach_piggyback(&msg).unwrap();
        assert!(pkt.has_piggyback());
        assert_eq!(pkt.wire_len(), orig_len + msg.wire_len());
        // The middlebox-visible datagram is unchanged.
        assert_eq!(pkt.ip_end().unwrap(), orig_len);
        // The IP option advertises the trailer.
        assert_eq!(
            pkt.ipv4().unwrap().ftc_option(),
            Some(msg.wire_len() as u16)
        );

        let got = pkt.detach_piggyback().unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(pkt.wire_len(), orig_len);
        assert!(!pkt.has_piggyback());
        assert_eq!(pkt.ipv4().unwrap().ftc_option(), Some(0));
        pkt.ipv4().unwrap().verify_checksum().unwrap();
    }

    #[test]
    fn detach_on_plain_packet_is_none() {
        let mut pkt = sample_packet();
        assert_eq!(pkt.detach_piggyback().unwrap(), None);
    }

    #[test]
    fn replace_swaps_trailer() {
        let mut pkt = sample_packet();
        pkt.attach_piggyback(&sample_msg()).unwrap();
        let msg2 = PiggybackMessage::default();
        pkt.replace_piggyback(&msg2).unwrap();
        let got = pkt.detach_piggyback().unwrap().unwrap();
        assert_eq!(got, msg2);
    }

    #[test]
    fn l4_excludes_trailer() {
        let mut pkt = sample_packet();
        let l4_before = pkt.l4().unwrap().len();
        pkt.attach_piggyback(&sample_msg()).unwrap();
        assert_eq!(pkt.l4().unwrap().len(), l4_before);
    }

    #[test]
    fn propagating_packet_carries_message() {
        let msg = PiggybackMessage::propagating(vec![]);
        let mut pkt = propagating_packet(MacAddr::from_index(1), MacAddr::from_index(2), &msg);
        pkt.ipv4().unwrap().verify_checksum().unwrap();
        let got = pkt.detach_piggyback().unwrap().unwrap();
        assert!(got.is_propagating());
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut data = BytesMut::zeroed(64);
        ether::emit(
            &mut data,
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            ether::ETHERTYPE_ARP,
        )
        .unwrap();
        assert_eq!(
            Packet::from_frame(data).unwrap_err(),
            WireError::Unsupported
        );
    }
}
