//! UDP and TCP header views and emitters.

use crate::checksum;
use crate::{WireError, WireResult};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// An immutable UDP header view.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    buf: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Parses a UDP header at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(UdpView { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// UDP length field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Whether the length field covers at least the header.
    pub fn is_empty(&self) -> bool {
        self.len() as usize <= UDP_HEADER_LEN
    }

    /// The payload bytes according to the length field.
    pub fn payload(&self) -> WireResult<&'a [u8]> {
        let l = self.len() as usize;
        if l < UDP_HEADER_LEN || l > self.buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(&self.buf[UDP_HEADER_LEN..l])
    }
}

/// Emits a UDP header (checksum left as zero — optional in IPv4).
pub fn emit_udp(buf: &mut [u8], src_port: u16, dst_port: u16, payload_len: u16) -> WireResult<()> {
    if buf.len() < UDP_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    buf[0..2].copy_from_slice(&src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
    buf[4..6].copy_from_slice(&(UDP_HEADER_LEN as u16 + payload_len).to_be_bytes());
    buf[6..8].copy_from_slice(&[0, 0]);
    Ok(())
}

/// An immutable TCP header view.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    buf: &'a [u8],
}

/// TCP flag bits.
pub mod tcp_flags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
}

impl<'a> TcpView<'a> {
    /// Parses a TCP header at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let v = TcpView { buf };
        if v.header_len() < TCP_HEADER_LEN || v.header_len() > buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(v)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[12] >> 4) * 4
    }

    /// Flag byte (FIN/SYN/RST/PSH/ACK/URG).
    pub fn flags(&self) -> u8 {
        self.buf[13]
    }

    /// True if the SYN flag is set.
    pub fn is_syn(&self) -> bool {
        self.flags() & tcp_flags::SYN != 0
    }

    /// True if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags() & tcp_flags::FIN != 0
    }

    /// True if the RST flag is set.
    pub fn is_rst(&self) -> bool {
        self.flags() & tcp_flags::RST != 0
    }
}

/// Fields for emitting a TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpFields {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

impl Default for TcpFields {
    fn default() -> Self {
        TcpFields {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: tcp_flags::ACK,
            window: 65535,
        }
    }
}

/// Emits a 20-byte TCP header (checksum zero; our substrate does not verify
/// L4 checksums, matching typical NIC-offload setups).
pub fn emit_tcp(buf: &mut [u8], f: &TcpFields) -> WireResult<()> {
    if buf.len() < TCP_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    buf[0..2].copy_from_slice(&f.src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&f.dst_port.to_be_bytes());
    buf[4..8].copy_from_slice(&f.seq.to_be_bytes());
    buf[8..12].copy_from_slice(&f.ack.to_be_bytes());
    buf[12] = ((TCP_HEADER_LEN / 4) as u8) << 4;
    buf[13] = f.flags;
    buf[14..16].copy_from_slice(&f.window.to_be_bytes());
    buf[16..20].copy_from_slice(&[0, 0, 0, 0]); // checksum + urgent ptr
    Ok(())
}

/// Rewrites a port in a TCP or UDP header at `port_off` (0 = src, 2 = dst),
/// returning the old value. The L4 checksum is not maintained (zeroed for
/// UDP; callers relying on checksums should recompute with
/// [`fill_tcp_checksum`]).
pub fn set_port(l4: &mut [u8], port_off: usize, port: u16) -> WireResult<u16> {
    if l4.len() < port_off + 2 {
        return Err(WireError::Truncated);
    }
    let old = u16::from_be_bytes([l4[port_off], l4[port_off + 1]]);
    l4[port_off..port_off + 2].copy_from_slice(&port.to_be_bytes());
    Ok(old)
}

/// Computes and fills the TCP checksum over the given pseudo-header info.
pub fn fill_tcp_checksum(l4: &mut [u8], src: [u8; 4], dst: [u8; 4]) -> WireResult<()> {
    if l4.len() < TCP_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    l4[16..18].copy_from_slice(&[0, 0]);
    let pseudo = checksum::pseudo_header_sum(src, dst, crate::ip::PROTO_TCP, l4.len() as u16);
    let body = checksum::ones_complement_sum(l4);
    let c = !checksum::combine(&[pseudo, body]);
    l4[16..18].copy_from_slice(&c.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_roundtrip() {
        let mut buf = [0u8; 32];
        emit_udp(&mut buf, 5353, 53, 10).unwrap();
        let v = UdpView::new(&buf).unwrap();
        assert_eq!(v.src_port(), 5353);
        assert_eq!(v.dst_port(), 53);
        assert_eq!(v.len(), 18);
        assert_eq!(v.payload().unwrap().len(), 10);
    }

    #[test]
    fn udp_bad_length_detected() {
        let mut buf = [0u8; 12];
        emit_udp(&mut buf, 1, 2, 100).unwrap(); // claims 108 bytes
        let v = UdpView::new(&buf).unwrap();
        assert_eq!(v.payload().unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn tcp_roundtrip() {
        let mut buf = [0u8; 32];
        let f = TcpFields {
            src_port: 443,
            dst_port: 51000,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: tcp_flags::SYN | tcp_flags::ACK,
            window: 1024,
        };
        emit_tcp(&mut buf, &f).unwrap();
        let v = TcpView::new(&buf).unwrap();
        assert_eq!(v.src_port(), 443);
        assert_eq!(v.dst_port(), 51000);
        assert_eq!(v.seq(), 0xdeadbeef);
        assert_eq!(v.ack(), 0x01020304);
        assert!(v.is_syn());
        assert!(!v.is_fin());
        assert!(!v.is_rst());
        assert_eq!(v.header_len(), TCP_HEADER_LEN);
    }

    #[test]
    fn set_port_returns_old() {
        let mut buf = [0u8; 20];
        emit_udp(&mut buf, 1000, 2000, 0).unwrap();
        let old = set_port(&mut buf, 0, 4242).unwrap();
        assert_eq!(old, 1000);
        assert_eq!(UdpView::new(&buf).unwrap().src_port(), 4242);
    }

    #[test]
    fn tcp_checksum_verifies() {
        let mut buf = vec![0u8; 28];
        emit_tcp(&mut buf, &TcpFields::default()).unwrap();
        buf[20..].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];
        fill_tcp_checksum(&mut buf, src, dst).unwrap();
        // Recompute over the whole segment: must be zero.
        let pseudo = checksum::pseudo_header_sum(src, dst, crate::ip::PROTO_TCP, 28);
        let body = checksum::ones_complement_sum(&buf);
        assert_eq!(!checksum::combine(&[pseudo, body]), 0);
    }
}
