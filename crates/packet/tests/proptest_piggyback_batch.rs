//! Property-based tests for batched piggyback serialization.
//!
//! [`encode_batch`] is documented as byte-identical to encoding a
//! `PiggybackMessage { flags: 0, logs, commits: vec![] }`, and
//! [`decode_batch`] / [`PiggybackMessage::decode_trailing_shared`] as
//! accepting and rejecting exactly the same inputs as the unbatched
//! [`PiggybackMessage::decode_trailing`]. These properties pin both claims,
//! including on truncated and bit-flipped wire images — a divergence would
//! let the feedback path accept frames the piggyback path rejects (or vice
//! versa), which is a protocol split-brain.

use bytes::{Bytes, BytesMut};
use ftc_packet::piggyback::{
    batch_wire_len, decode_batch, encode_batch, DepVector, MboxId, PiggybackLog, PiggybackMessage,
    StateWrite,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_dep_vector() -> impl Strategy<Value = DepVector> {
    proptest::collection::btree_map(0u16..32, 0u64..1_000, 0..5)
        .prop_map(|m| DepVector::from_entries(m.into_iter().collect()).unwrap())
}

fn arb_write() -> impl Strategy<Value = StateWrite> {
    (vec(any::<u8>(), 0..40), vec(any::<u8>(), 0..120), 0u16..32).prop_map(|(k, v, p)| StateWrite {
        key: Bytes::from(k),
        value: Bytes::from(v),
        partition: p,
    })
}

fn arb_log() -> impl Strategy<Value = PiggybackLog> {
    (0u16..8, arb_dep_vector(), vec(arb_write(), 0..4)).prop_map(|(m, deps, writes)| PiggybackLog {
        mbox: MboxId(m),
        deps,
        writes,
    })
}

/// Collapses a decode result to a comparable shape: `Ok(None)`,
/// `Ok(Some(total_len))`, or `Err(())` — the classification that must agree
/// between the batched and unbatched decoders.
fn shape<T>(r: Result<Option<(T, usize)>, ftc_packet::WireError>) -> Result<Option<usize>, ()> {
    match r {
        Ok(Some((_, total))) => Ok(Some(total)),
        Ok(None) => Ok(None),
        Err(_) => Err(()),
    }
}

proptest! {
    /// `encode_batch` is byte-for-byte the unbatched encoding of the same
    /// logs, and `batch_wire_len` predicts its length exactly.
    #[test]
    fn batched_encode_matches_unbatched(
        logs in vec(arb_log(), 0..6),
        prefix in vec(any::<u8>(), 0..64),
    ) {
        let msg = PiggybackMessage { flags: 0, logs: logs.clone(), commits: Vec::new() };

        let mut batched = BytesMut::from(&prefix[..]);
        let n_batched = encode_batch(&logs, &mut batched);
        let mut unbatched = BytesMut::from(&prefix[..]);
        let n_unbatched = msg.encode(&mut unbatched);

        prop_assert_eq!(n_batched, n_unbatched);
        prop_assert_eq!(n_batched, batch_wire_len(&logs));
        prop_assert_eq!(n_batched, msg.wire_len());
        prop_assert_eq!(&batched[..], &unbatched[..], "batched encoding diverged");
    }

    /// `decode_batch` round-trips what `encode_batch` wrote, through an
    /// arbitrary prefix (the batch frame sits at the tail of a datagram).
    #[test]
    fn batched_roundtrip(logs in vec(arb_log(), 0..6), prefix in vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::from(&prefix[..]);
        let n = encode_batch(&logs, &mut buf);
        let (decoded, total) = decode_batch(&buf).unwrap().unwrap();
        prop_assert_eq!(total, n);
        prop_assert_eq!(decoded, logs);
    }

    /// Rejection parity on damaged input: truncate the wire image at an
    /// arbitrary point and flip an arbitrary byte. All three decoders —
    /// unbatched, batched, and zero-copy shared — must classify the result
    /// identically (accept with the same length / reject / not-a-trailer).
    #[test]
    fn damaged_frames_reject_identically(
        logs in vec(arb_log(), 0..5),
        prefix in vec(any::<u8>(), 0..32),
        cut in 0usize..80,
        flip_at in any::<usize>(),
        flip_mask in any::<u8>(),
    ) {
        let mut buf = BytesMut::from(&prefix[..]);
        encode_batch(&logs, &mut buf);
        let mut bytes = buf.to_vec();
        bytes.truncate(bytes.len().saturating_sub(cut));
        if !bytes.is_empty() {
            let i = flip_at % bytes.len();
            bytes[i] ^= flip_mask;
        }

        let unbatched = shape(PiggybackMessage::decode_trailing(&bytes));
        let batched = shape(decode_batch(&bytes));
        let shared_buf = Bytes::from(bytes);
        let shared = shape(PiggybackMessage::decode_trailing_shared(&shared_buf));

        prop_assert_eq!(&batched, &unbatched, "batched decoder classification diverged");
        prop_assert_eq!(&shared, &unbatched, "zero-copy decoder classification diverged");
    }

    /// On *accepted* inputs the decoders also agree on content: the batched
    /// logs equal the unbatched message's logs, and the zero-copy message
    /// equals the copying one.
    #[test]
    fn accepted_frames_decode_identically(
        logs in vec(arb_log(), 0..5),
        commits_as_msg in any::<bool>(),
        prefix in vec(any::<u8>(), 0..32),
    ) {
        // Half the cases go through the full message encoder so the batch
        // decoder also sees frames it did not itself produce.
        let msg = PiggybackMessage { flags: 0, logs: logs.clone(), commits: Vec::new() };
        let mut buf = BytesMut::from(&prefix[..]);
        if commits_as_msg {
            msg.encode(&mut buf);
        } else {
            encode_batch(&logs, &mut buf);
        }

        let (via_msg, n_msg) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        let (via_batch, n_batch) = decode_batch(&buf).unwrap().unwrap();
        let frozen = buf.freeze();
        let (via_shared, n_shared) =
            PiggybackMessage::decode_trailing_shared(&frozen).unwrap().unwrap();

        prop_assert_eq!(n_batch, n_msg);
        prop_assert_eq!(n_shared, n_msg);
        prop_assert_eq!(&via_batch, &via_msg.logs);
        prop_assert_eq!(&via_shared, &via_msg);
    }
}
