//! Property-based tests for the wire formats.

use bytes::{Bytes, BytesMut};
use ftc_packet::builder::UdpPacketBuilder;
use ftc_packet::checksum;
use ftc_packet::piggyback::{
    Applicability, CommitVector, DepVector, MboxId, PiggybackLog, PiggybackMessage, StateWrite,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn arb_dep_vector() -> impl Strategy<Value = DepVector> {
    proptest::collection::btree_map(0u16..32, 0u64..1_000, 0..5)
        .prop_map(|m| DepVector::from_entries(m.into_iter().collect()).unwrap())
}

fn arb_write() -> impl Strategy<Value = StateWrite> {
    (vec(any::<u8>(), 0..40), vec(any::<u8>(), 0..120), 0u16..32).prop_map(|(k, v, p)| StateWrite {
        key: Bytes::from(k),
        value: Bytes::from(v),
        partition: p,
    })
}

fn arb_log() -> impl Strategy<Value = PiggybackLog> {
    (0u16..8, arb_dep_vector(), vec(arb_write(), 0..4)).prop_map(|(m, deps, writes)| PiggybackLog {
        mbox: MboxId(m),
        deps,
        writes,
    })
}

fn arb_commit() -> impl Strategy<Value = CommitVector> {
    (0u16..8, vec(0u64..1_000, 0..16)).prop_map(|(m, max)| CommitVector {
        mbox: MboxId(m),
        max,
    })
}

fn arb_message() -> impl Strategy<Value = PiggybackMessage> {
    (any::<bool>(), vec(arb_log(), 0..6), vec(arb_commit(), 0..4)).prop_map(
        |(prop, logs, commits)| PiggybackMessage {
            flags: if prop {
                ftc_packet::piggyback::flags::PROPAGATING
            } else {
                0
            },
            logs,
            commits,
        },
    )
}

proptest! {
    #[test]
    fn piggyback_roundtrip(msg in arb_message(), prefix in vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::from(&prefix[..]);
        let n = msg.encode(&mut buf);
        prop_assert_eq!(n, msg.wire_len());
        let (decoded, total) = PiggybackMessage::decode_trailing(&buf).unwrap().unwrap();
        prop_assert_eq!(total, n);
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_piggyback_never_panics(msg in arb_message(), cut in 0usize..64) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let keep = buf.len().saturating_sub(cut);
        // Decoding any truncation either fails cleanly or returns None.
        let _ = PiggybackMessage::decode_trailing(&buf[..keep]);
    }

    #[test]
    fn packet_attach_detach_preserves_datagram(
        msg in arb_message(),
        payload_len in 0usize..512,
        sport in 1u16..u16::MAX,
        dport in 1u16..u16::MAX,
    ) {
        let mut pkt = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 9, 8, 7), sport)
            .dst(Ipv4Addr::new(1, 2, 3, 4), dport)
            .payload_len(payload_len)
            .build();
        let before = pkt.bytes().to_vec();
        pkt.attach_piggyback(&msg).unwrap();
        let key = pkt.flow_key().unwrap();
        prop_assert_eq!(key.src_port, sport);
        prop_assert_eq!(key.dst_port, dport);
        let got = pkt.detach_piggyback().unwrap().unwrap();
        prop_assert_eq!(got, msg);
        prop_assert_eq!(pkt.bytes(), &before[..]);
    }

    #[test]
    fn checksum_update_equals_recompute(
        mut data in vec(any::<u8>(), 20..64),
        word_idx in 0usize..10,
        new_word in any::<u16>(),
    ) {
        // force even length so the word replacement is aligned
        if data.len() % 2 == 1 { data.pop(); }
        let len = data.len();
        let off = (word_idx * 2 % (len - 1)) & !1usize;
        let before = checksum::checksum(&data);
        let old = u16::from_be_bytes([data[off], data[off + 1]]);
        data[off..off + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(checksum::checksum(&data), checksum::update(before, old, new_word));
    }

    /// Applying piggyback logs in *any* delivery order under the dependency
    /// vector rule reaches the same final MAX vector, and every log gets
    /// applied exactly once (the heart of paper §4.3).
    #[test]
    fn dep_vector_apply_is_order_independent(
        n_parts in 1usize..6,
        txn_parts in vec(vec(any::<bool>(), 1..6), 1..24),
        order in vec(any::<u16>(), 1..24),
    ) {
        // Build a head-side history: each txn touches a subset of partitions.
        let mut head = vec![0u64; n_parts];
        let mut logs = Vec::new();
        for touched in &txn_parts {
            let mut entries = Vec::new();
            for (p, &t) in touched.iter().take(n_parts).enumerate() {
                if t {
                    entries.push((p as u16, head[p]));
                }
            }
            if entries.is_empty() {
                continue; // read-only txn: no log
            }
            for &(p, _) in &entries {
                head[p as usize] += 1;
            }
            logs.push(DepVector::from_entries(entries).unwrap());
        }

        // Deliver in a permuted order with a parking lot, as a replica does.
        let mut indexed: Vec<(usize, &DepVector)> = logs.iter().enumerate().collect();
        let n = indexed.len();
        for (i, &o) in order.iter().enumerate() {
            if n > 0 {
                let j = (o as usize) % n;
                indexed.swap(i % n, j);
            }
        }
        let mut max = vec![0u64; n_parts];
        let mut parked: Vec<(usize, &DepVector)> = Vec::new();
        let mut applied = BTreeMap::new();
        let mut pending: Vec<(usize, &DepVector)> = indexed;
        while !pending.is_empty() || !parked.is_empty() {
            let mut progressed = false;
            let drain: Vec<_> = pending.drain(..).chain(parked.drain(..)).collect();
            for (id, d) in drain {
                match d.applicable_at(&max) {
                    Applicability::Ready => {
                        for &(p, _) in d.entries() {
                            max[p as usize] += 1;
                        }
                        *applied.entry(id).or_insert(0) += 1;
                        progressed = true;
                    }
                    Applicability::NotYet => parked.push((id, d)),
                    Applicability::Stale => prop_assert!(false, "no duplicates were sent"),
                }
            }
            prop_assert!(progressed || parked.is_empty(), "livelock: nothing applicable");
        }
        prop_assert_eq!(&max, &head);
        prop_assert_eq!(applied.len(), logs.len());
        prop_assert!(applied.values().all(|&c| c == 1));
    }
}
