//! Property-based tests for the buffer pool: recycling is invisible.
//!
//! The pool contract ([`ftc_packet::pool`]) is that a recycled object is
//! indistinguishable from a freshly constructed one — pooling is a pure
//! performance feature. These properties drive arbitrary dirtying
//! sequences through checkouts and assert that whatever came before, the
//! next checkout behaves bit-identically to a fresh object.

use bytes::{BufMut, Bytes, BytesMut};
use ftc_packet::piggyback::{
    encode_batch, DepVector, MboxId, PiggybackLog, PiggybackMessage, StateWrite,
};
use ftc_packet::pool::{bytes_pool, log_vec_pool, Pool};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_dep_vector() -> impl Strategy<Value = DepVector> {
    proptest::collection::btree_map(0u16..32, 0u64..1_000, 0..5)
        .prop_map(|m| DepVector::from_entries(m.into_iter().collect()).unwrap())
}

fn arb_write() -> impl Strategy<Value = StateWrite> {
    (vec(any::<u8>(), 0..40), vec(any::<u8>(), 0..120), 0u16..32).prop_map(|(k, v, p)| StateWrite {
        key: Bytes::from(k),
        value: Bytes::from(v),
        partition: p,
    })
}

fn arb_log() -> impl Strategy<Value = PiggybackLog> {
    (0u16..8, arb_dep_vector(), vec(arb_write(), 0..4)).prop_map(|(m, deps, writes)| PiggybackLog {
        mbox: MboxId(m),
        deps,
        writes,
    })
}

/// One step of an arbitrary pool usage history.
#[derive(Debug, Clone)]
enum Op {
    /// Checkout, write `len` junk bytes of value `byte`, drop (recycle).
    Dirty { byte: u8, len: usize },
    /// Checkout, write junk, detach (never recycled).
    DirtyDetach { byte: u8, len: usize },
    /// Checkout and drop immediately (recycle an already-clean object).
    Touch,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0usize..600).prop_map(|(byte, len)| Op::Dirty { byte, len }),
        (any::<u8>(), 0usize..600).prop_map(|(byte, len)| Op::DirtyDetach { byte, len }),
        Just(Op::Touch),
    ]
}

fn apply_ops(pool: &Pool<BytesMut>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Dirty { byte, len } => {
                let mut b = pool.checkout();
                b.put_slice(&std::iter::repeat_n(byte, len).collect::<Vec<u8>>());
            }
            Op::DirtyDetach { byte, len } => {
                let mut b = pool.checkout();
                b.put_slice(&std::iter::repeat_n(byte, len).collect::<Vec<u8>>());
                drop(b.detach());
            }
            Op::Touch => {
                let _ = pool.checkout();
            }
        }
    }
}

proptest! {
    /// After any history of dirtying checkouts, encoding into a pooled
    /// buffer produces exactly the bytes a fresh `BytesMut` would.
    #[test]
    fn recycled_bytes_encode_identically_to_fresh(
        ops in vec(arb_op(), 0..12),
        logs in vec(arb_log(), 0..5),
    ) {
        let pool = bytes_pool(8);
        apply_ops(&pool, &ops);

        let mut pooled = pool.checkout();
        prop_assert!(pooled.is_empty(), "checkout must hand out a reset buffer");
        let n_pooled = encode_batch(&logs, &mut pooled);

        let mut fresh = BytesMut::new();
        let n_fresh = encode_batch(&logs, &mut fresh);

        prop_assert_eq!(n_pooled, n_fresh);
        prop_assert_eq!(&pooled[..], &fresh[..], "recycled buffer leaked state");
    }

    /// Same property for the log-staging vector pool: a recycled
    /// `Vec<PiggybackLog>` collects and serializes a batch exactly like a
    /// fresh vector, regardless of what previous checkouts staged in it.
    #[test]
    fn recycled_log_vec_stages_identically_to_fresh(
        junk in vec(arb_log(), 0..6),
        batch in vec(arb_log(), 0..6),
    ) {
        let pool = log_vec_pool(8);
        {
            let mut staging = pool.checkout();
            staging.extend(junk.iter().cloned());
        }
        let mut staging = pool.checkout();
        prop_assert!(staging.is_empty(), "checkout must hand out a reset vector");
        staging.extend(batch.iter().cloned());

        let mut via_pool = BytesMut::new();
        encode_batch(&staging, &mut via_pool);
        let mut via_fresh = BytesMut::new();
        encode_batch(&batch, &mut via_fresh);
        prop_assert_eq!(&via_pool[..], &via_fresh[..]);
    }

    /// Full round trip through the hot path's actual usage: encode a
    /// message into a recycled scratch buffer, freeze, decode — the
    /// decoded message equals the original for every history.
    #[test]
    fn pooled_scratch_roundtrips_messages(
        ops in vec(arb_op(), 0..12),
        logs in vec(arb_log(), 0..5),
    ) {
        let pool = bytes_pool(4);
        apply_ops(&pool, &ops);

        let msg = PiggybackMessage { flags: 0, logs, commits: Vec::new() };
        let mut scratch = pool.checkout();
        let n = msg.encode(&mut scratch);
        prop_assert_eq!(n, msg.wire_len());
        let frozen = scratch.detach().freeze();
        let (decoded, total) = PiggybackMessage::decode_trailing(&frozen)
            .unwrap()
            .unwrap();
        prop_assert_eq!(total, n);
        prop_assert_eq!(decoded, msg);
    }

    /// Accounting invariant: every checkout is served either fresh or
    /// recycled, and the pool never retains more than its cap.
    #[test]
    fn pool_accounting_is_conserved(ops in vec(arb_op(), 0..24), cap in 0usize..4) {
        let pool = bytes_pool(cap);
        apply_ops(&pool, &ops);
        prop_assert_eq!(pool.created() + pool.reused(), ops.len() as u64);
        prop_assert!(pool.idle() <= cap);
    }
}
