//! Property tests for the unified frame codec against malformed input.
//!
//! The socket backend feeds `FrameDecoder` raw bytes from connections that
//! can be cut mid-frame, resumed desynchronized, or corrupted; the decoder
//! must fail *cleanly* on every such stream — report `Ok(None)` (need more
//! bytes) or a typed `WireError`, never panic, never consume past the
//! bytes it was given, and never buffer an attacker-declared length.

use bytes::BufMut;
use ftc_packet::frame::{
    self, decode, kind, FrameDecoder, HEADER_AFTER_LEN, LEN_PREFIX, MAX_PAYLOAD,
};
use ftc_packet::WireError;
use proptest::collection::vec;
use proptest::prelude::*;

fn known_kind() -> impl Strategy<Value = u8> {
    kind::DATA..=kind::HELLO
}

/// Any byte outside the known kind namespace (1..=6): shift known values
/// past the top of the namespace, leave the rest as-is.
fn unknown_kind() -> impl Strategy<Value = u8> {
    any::<u8>().prop_map(|k| {
        if kind::is_known(k) {
            k + kind::HELLO
        } else {
            k
        }
    })
}

proptest! {
    /// Valid frames survive arbitrary re-chunking byte-for-byte.
    #[test]
    fn roundtrip_under_arbitrary_chunking(
        frames in vec(
            (known_kind(), any::<u16>(), any::<u64>(), vec(any::<u8>(), 0..64)),
            1..8,
        ),
        chunk in 1usize..32,
    ) {
        let mut wire = bytes::BytesMut::new();
        for (k, stream, seq, payload) in &frames {
            frame::encode_into(&mut wire, *k, *stream, *seq, payload);
        }
        let mut out = Vec::new();
        let mut dec = FrameDecoder::new();
        for piece in wire.as_ref().chunks(chunk) {
            dec.extend(piece);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out.len(), frames.len());
        for (f, (k, stream, seq, payload)) in out.iter().zip(&frames) {
            prop_assert_eq!(f.kind, *k);
            prop_assert_eq!(f.stream, *stream);
            prop_assert_eq!(f.seq, *seq);
            prop_assert_eq!(f.payload.as_slice(), &payload[..]);
        }
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated frame — cut anywhere, length prefix included — is
    /// "need more bytes", never an error, panic, or phantom frame.
    #[test]
    fn truncation_is_incomplete_not_corrupt(
        stream in any::<u16>(),
        seq in any::<u64>(),
        payload in vec(any::<u8>(), 0..64),
        cut in 0usize..4096,
    ) {
        let wire = frame::encode(kind::DATA, stream, seq, &payload);
        let cut = cut % wire.len(); // always a strict prefix
        prop_assert_eq!(decode(&wire.as_ref()[..cut]).unwrap(), None);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire.as_ref()[..cut]);
        prop_assert_eq!(dec.next_frame().unwrap(), None);
        prop_assert_eq!(dec.pending(), cut, "decoder must not consume a partial frame");
    }

    /// An oversized declared length is rejected from the 4-byte prefix
    /// alone — before any attempt to buffer the declared payload.
    #[test]
    fn oversized_declared_length_is_rejected_early(
        excess in 1u64..=(u32::MAX as u64 - (HEADER_AFTER_LEN + MAX_PAYLOAD) as u64),
        tail in vec(any::<u8>(), 0..32),
    ) {
        let bad_len = (HEADER_AFTER_LEN + MAX_PAYLOAD) as u64 + excess;
        let mut wire = bytes::BytesMut::new();
        wire.put_u32(bad_len as u32);
        wire.extend_from_slice(&tail);
        prop_assert_eq!(decode(wire.as_ref()), Err(WireError::BadLength));
        let mut dec = FrameDecoder::new();
        dec.extend(wire.as_ref());
        prop_assert_eq!(dec.next_frame(), Err(WireError::BadLength));
    }

    /// Undersized lengths (shorter than the fixed header) are equally
    /// corrupt — a zero or tiny prefix must not underflow the payload
    /// arithmetic.
    #[test]
    fn undersized_declared_length_is_rejected(
        body_len in 0u32..HEADER_AFTER_LEN as u32,
        tail in vec(any::<u8>(), 0..32),
    ) {
        let mut wire = bytes::BytesMut::new();
        wire.put_u32(body_len);
        wire.extend_from_slice(&tail);
        prop_assert_eq!(decode(wire.as_ref()), Err(WireError::BadLength));
    }

    /// A plausible length followed by an unknown kind byte is rejected as
    /// soon as the kind is visible, even if the declared payload never
    /// arrives — a desynchronized stream must not stall waiting for
    /// garbage to complete.
    #[test]
    fn unknown_kind_is_rejected_before_payload(
        k in unknown_kind(),
        stream in any::<u16>(),
        seq in any::<u64>(),
        payload in vec(any::<u8>(), 0..64),
        deliver_header_only in any::<bool>(),
    ) {
        let wire = frame::encode(k, stream, seq, &payload);
        let cut = if deliver_header_only { LEN_PREFIX + 1 } else { wire.len() };
        prop_assert_eq!(
            decode(&wire.as_ref()[..cut]),
            Err(WireError::BadKind(k))
        );
        let mut dec = FrameDecoder::new();
        dec.extend(&wire.as_ref()[..cut]);
        prop_assert_eq!(dec.next_frame(), Err(WireError::BadKind(k)));
    }

    /// A reset mid-frame followed by a new connection's bytes (stream
    /// resumed at an arbitrary offset) errors cleanly or resynchronizes —
    /// it never panics and never yields a frame that was not encoded.
    #[test]
    fn mid_frame_reset_fails_cleanly(
        payload in vec(any::<u8>(), 1..64),
        cut in 1usize..16,
        next_payload in vec(any::<u8>(), 0..64),
    ) {
        let first = frame::encode(kind::DATA, 1, 1, &payload);
        let cut = cut.min(first.len() - 1);
        let second = frame::encode(kind::ACK, 2, 9, &next_payload);
        let mut dec = FrameDecoder::new();
        dec.extend(&first.as_ref()[..cut]); // torn connection: frame cut short
        dec.extend(second.as_ref()); // bytes from the replacement connection
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => {
                    // Any frame that does come out must be internally
                    // consistent — a known kind and a payload the decoder
                    // actually holds.
                    prop_assert!(kind::is_known(f.kind));
                }
                Ok(None) => break,
                Err(_) => break, // clean typed error: connection torn down
            }
        }
    }

    /// Pure fuzz: arbitrary bytes in arbitrary chunks never panic the
    /// decoder, and every outcome is a clean verdict.
    #[test]
    fn arbitrary_bytes_never_panic(
        data in vec(any::<u8>(), 0..256),
        chunk in 1usize..32,
    ) {
        let mut dec = FrameDecoder::new();
        let mut corrupt = false;
        for piece in data.chunks(chunk) {
            if corrupt {
                break; // a real connection is torn down at first error
            }
            dec.extend(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        corrupt = true;
                        break;
                    }
                }
            }
            prop_assert!(dec.pending() <= data.len());
        }
    }
}
