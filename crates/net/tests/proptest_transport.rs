//! Property-based tests of the transport abstraction: the in-process and
//! socket backends speak the same unified frame codec and deliver the same
//! byte streams, and the socket backend tolerates adversarial byte-level
//! framing (partial writes) and injected connection resets.

use bytes::BytesMut;
use ftc_net::sock::{SockNode, SockTransport};
use ftc_net::transport::InProcTransport;
use ftc_net::{Endpoint, PeerAddr, Transport};
use ftc_packet::frame;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Fresh UDS address per test case (paths must be unique and short).
fn uds_addr(tag: &str) -> PeerAddr {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    PeerAddr::Uds(
        std::env::temp_dir().join(format!("ftc-pt-{tag}-{}-{n}.sock", std::process::id())),
    )
}

/// Pushes `payloads` through a transport's reliable stream and returns the
/// delivered byte streams, pumping sender and receiver until done.
fn pump(
    tx: &mut Box<dyn ftc_net::FrameTx>,
    rx: &mut Box<dyn ftc_net::FrameRx>,
    payloads: &[Vec<u8>],
    deadline: Instant,
) -> Vec<Vec<u8>> {
    let mut got: Vec<Vec<u8>> = Vec::with_capacity(payloads.len());
    let mut sent = 0;
    while got.len() < payloads.len() {
        assert!(
            Instant::now() < deadline,
            "stalled at {}/{}",
            got.len(),
            payloads.len()
        );
        if sent < payloads.len() {
            tx.send(BytesMut::from(&payloads[sent][..])).unwrap();
            sent += 1;
        }
        tx.poll().unwrap();
        while let Some(p) = rx.recv_timeout(Duration::from_micros(300)).unwrap() {
            got.push(p.to_vec());
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The two backends are interchangeable behind the `Transport` trait:
    /// for any payload sequence, the byte streams delivered over an
    /// in-process link and over a real Unix socket are identical (and
    /// equal to the input — exactly-once, in order, contents intact).
    #[test]
    fn in_proc_and_uds_backends_deliver_identical_streams(
        payloads in pvec(pvec(any::<u8>(), 0..600usize), 1..40usize),
    ) {
        let deadline = Instant::now() + Duration::from_secs(20);

        let inproc = InProcTransport::new();
        let ep = Endpoint::in_proc();
        let mut tx = inproc.open_tx(&ep, 7);
        let mut rx = inproc.open_rx(&ep, 7);
        let via_inproc = pump(&mut tx, &mut rx, &payloads, deadline);

        let addr = uds_addr("parity");
        let node = SockNode::bind(&addr).unwrap();
        let transport = SockTransport::new(node);
        let sock_ep = Endpoint::sock(addr);
        let mut tx = transport.open_tx(&sock_ep, 7);
        let mut rx = transport.open_rx(&sock_ep, 7);
        let via_uds = pump(&mut tx, &mut rx, &payloads, deadline);

        prop_assert_eq!(&via_inproc, &payloads);
        prop_assert_eq!(&via_uds, &payloads);
    }

    /// A reliable receiver behind the socket backend reassembles frames
    /// from arbitrary partial writes: a raw dialer trickles the encoded
    /// bytes in adversarial chunk sizes and everything is still delivered
    /// exactly once, in order.
    #[test]
    fn receiver_reassembles_arbitrary_partial_writes(
        payloads in pvec(pvec(any::<u8>(), 0..300usize), 1..30usize),
        chunks in pvec(1usize..48, 1..64usize),
    ) {
        let addr = uds_addr("chunks");
        let node = SockNode::bind(&addr).unwrap();
        let transport = SockTransport::new(node);
        let sock_ep = Endpoint::sock(addr.clone());
        let mut rx = transport.open_rx(&sock_ep, 3);

        // Encode the whole DATA sequence with the shared codec, then
        // deliver it through a raw socket in the proptest-chosen splits.
        let mut wire = BytesMut::new();
        for (seq, p) in payloads.iter().enumerate() {
            frame::encode_into(&mut wire, frame::kind::DATA, 3, seq as u64, p);
        }
        let PeerAddr::Uds(path) = &addr else { unreachable!() };
        let mut raw = std::os::unix::net::UnixStream::connect(path).unwrap();
        let mut off = 0;
        let mut chunk = chunks.iter().cycle();
        while off < wire.len() {
            let n = (*chunk.next().unwrap()).min(wire.len() - off);
            raw.write_all(&wire[off..off + n]).unwrap();
            raw.flush().unwrap();
            off += n;
        }

        let mut got: Vec<Vec<u8>> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < payloads.len() {
            prop_assert!(Instant::now() < deadline, "stalled at {}/{}", got.len(), payloads.len());
            while let Some(p) = rx.recv_timeout(Duration::from_millis(1)).unwrap() {
                got.push(p.to_vec());
            }
        }
        prop_assert_eq!(&got, &payloads);
    }

    /// The reliable endpoints survive connection resets injected at
    /// arbitrary points in the transfer: RTO retransmission redials and
    /// fills whatever the kill dropped.
    #[test]
    fn reliable_transfer_survives_injected_resets(
        n in 20u32..120,
        kill_at in pvec(0u32..120, 1..4usize),
    ) {
        let addr = uds_addr("resets");
        let node = SockNode::bind(&addr).unwrap();
        let transport = SockTransport::new(node.clone());
        let sock_ep = Endpoint::sock(addr);
        let mut tx = transport.open_tx(&sock_ep, 9);
        let mut rx = transport.open_rx(&sock_ep, 9);

        let mut got: Vec<u32> = Vec::new();
        let mut sent = 0u32;
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u32) < n {
            prop_assert!(Instant::now() < deadline, "stalled at {}/{n}", got.len());
            if sent < n {
                if kill_at.contains(&sent) {
                    node.kill_connections();
                }
                tx.send(BytesMut::from(&sent.to_be_bytes()[..])).unwrap();
                sent += 1;
            }
            tx.poll().unwrap();
            while let Some(p) = rx.recv_timeout(Duration::from_micros(300)).unwrap() {
                got.push(u32::from_be_bytes(p[..4].try_into().unwrap()));
            }
        }
        let expect: Vec<u32> = (0..n).collect();
        prop_assert_eq!(got, expect);
    }
}
