//! Property-based tests of the reliable transport: under *any* combination
//! of loss, reorder and jitter, delivery is exactly-once and in order.

use bytes::BytesMut;
use ftc_net::{reliable_pair, Endpoint};
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exactly_once_in_order_under_impairments(
        loss in 0.0f64..0.35,
        reorder in 0.0f64..0.3,
        jitter_us in 0u64..200,
        seed in any::<u64>(),
        n in 1u32..120,
    ) {
        let ep = Endpoint::in_proc()
            .with_latency(Duration::from_micros(5))
            .with_jitter(Duration::from_micros(jitter_us))
            .with_loss(loss)
            .with_reorder(reorder)
            .with_seed(seed);
        let (mut tx, mut rx) = reliable_pair(&ep);
        let mut got: Vec<u32> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut sent = 0u32;
        while (got.len() as u32) < n {
            prop_assert!(
                Instant::now() < deadline,
                "stalled at {}/{n} (loss={loss:.2} reorder={reorder:.2} seed={seed})",
                got.len()
            );
            if sent < n {
                tx.send(BytesMut::from(&sent.to_be_bytes()[..])).unwrap();
                sent += 1;
            }
            tx.poll().unwrap();
            while let Some(p) = rx.recv_timeout(Duration::from_micros(300)).unwrap() {
                got.push(u32::from_be_bytes(p[..4].try_into().unwrap()));
            }
        }
        let expect: Vec<u32> = (0..n).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sender_buffer_stays_bounded(
        loss in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let (mut tx, mut rx) = reliable_pair(&Endpoint::lossy(loss, 0.1, seed));
        for i in 0..300u32 {
            tx.send(BytesMut::from(&i.to_be_bytes()[..])).unwrap();
            tx.poll().unwrap();
            while rx.recv_timeout(Duration::from_micros(100)).unwrap().is_some() {}
        }
        // Drain and let ACKs land.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            tx.poll().unwrap();
            let more = rx.recv_timeout(Duration::from_millis(1)).unwrap().is_some();
            if !more && tx.unacked_len() < 64 {
                break;
            }
            prop_assert!(Instant::now() < deadline, "unacked = {}", tx.unacked_len());
        }
        prop_assert!(tx.unacked_len() < 64, "cumulative ACKs must prune: {}", tx.unacked_len());
    }
}
