//! Transport clock: the one place the socket backend and the reliable
//! layer read time or sleep.
//!
//! Normally these are `Instant::now()` and `std::thread::sleep`. When the
//! vendored tokio's [det mode](tokio::det) is active on the current thread
//! (the async-transport model checker), `now` reads the virtual clock and
//! `block_sleep` runs deterministic executor steps while virtual time
//! advances — so RTO retransmission, dial backoff, and call deadlines are
//! explored deterministically instead of racing the wall clock.

use std::time::{Duration, Instant};

/// Current instant: wall clock normally, virtual clock under det mode.
#[inline]
pub fn now() -> Instant {
    tokio::time::now()
}

/// Sleep `dur`: thread sleep normally, cooperative virtual-time wait under
/// det mode (the deterministic executor keeps running while time passes).
pub fn block_sleep(dur: Duration) {
    if tokio::det::active() {
        tokio::det::block_sleep(dur);
    } else {
        std::thread::sleep(dur); // forbidden-ok: thread-sleep
    }
}

/// Elapsed virtual-or-wall time since `earlier`.
#[inline]
pub fn since(earlier: Instant) -> Duration {
    now().saturating_duration_since(earlier)
}
