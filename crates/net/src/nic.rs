//! Multi-queue NIC model with receive-side scaling (RSS).
//!
//! "Each middlebox runs multiple threads and is equipped with a multi-queue
//! network interface card; a thread receives packets from a NIC's input
//! queue" (paper §2). The dispatcher hashes the symmetric 5-tuple so both
//! directions of a flow reach the same worker, like hardware RSS with a
//! symmetric key.

use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use ftc_packet::FlowKey;

/// A bounded multi-queue receive NIC.
pub struct Nic {
    queues_tx: Vec<Sender<BytesMut>>,
    queues_rx: Vec<Option<Receiver<BytesMut>>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl Nic {
    /// Creates a NIC with `queues` receive queues of `depth` frames each.
    ///
    /// A bounded depth models real NIC rings: when a queue overflows, frames
    /// are dropped and counted, exactly like RX-ring overruns under
    /// overload.
    pub fn new(queues: usize, depth: usize) -> Nic {
        assert!(queues > 0);
        let mut queues_tx = Vec::with_capacity(queues);
        let mut queues_rx = Vec::with_capacity(queues);
        for _ in 0..queues {
            let (tx, rx) = channel::bounded(depth);
            queues_tx.push(tx);
            queues_rx.push(Some(rx));
        }
        Nic {
            queues_tx,
            queues_rx,
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of receive queues.
    pub fn queues(&self) -> usize {
        self.queues_tx.len()
    }

    /// Takes ownership of queue `i`'s receiver (each worker thread takes
    /// one). Panics if taken twice.
    pub fn take_queue(&mut self, i: usize) -> Receiver<BytesMut> {
        self.queues_rx[i].take().expect("queue already taken")
    }

    /// Dispatches a frame to a queue by symmetric flow hash; falls back to
    /// queue 0 for frames without a parseable flow (e.g. propagating
    /// packets).
    pub fn dispatch(&self, frame: BytesMut) {
        let q = match FlowKey::from_ipv4(&frame[ftc_packet::ether::HEADER_LEN..]) {
            Ok(key) => (key.rss_hash() % self.queues_tx.len() as u64) as usize,
            Err(_) => 0,
        };
        self.dispatch_to(q, frame);
    }

    /// Dispatches a frame to a specific queue.
    pub fn dispatch_to(&self, q: usize, frame: BytesMut) {
        match self.queues_tx[q].try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Dispatches with backpressure: blocks (in `tick` slices, re-checking
    /// `keep_waiting`) instead of dropping when the queue is full.
    ///
    /// Inter-replica frames carry piggyback logs whose loss above the
    /// reliable transport would be unrecoverable, so replica rx paths use
    /// this instead of [`Nic::dispatch`]'s drop-on-overrun. Returns false
    /// if the frame was abandoned (queue dead or `keep_waiting` said stop).
    pub fn dispatch_backpressure(
        &self,
        frame: BytesMut,
        tick: std::time::Duration,
        mut keep_waiting: impl FnMut() -> bool,
    ) -> bool {
        let q = match FlowKey::from_ipv4(&frame[ftc_packet::ether::HEADER_LEN..]) {
            Ok(key) => (key.rss_hash() % self.queues_tx.len() as u64) as usize,
            Err(_) => 0,
        };
        let mut frame = frame;
        loop {
            match self.queues_tx[q].send_timeout(frame, tick) {
                Ok(()) => return true,
                Err(channel::SendTimeoutError::Timeout(f)) => {
                    if !keep_waiting() {
                        self.dropped
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return false;
                    }
                    frame = f;
                }
                Err(channel::SendTimeoutError::Disconnected(_)) => {
                    self.dropped
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return false;
                }
            }
        }
    }

    /// Frames dropped due to queue overflow or dead workers.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn frame(src_port: u16, dst_port: u16, swap: bool) -> BytesMut {
        let b = UdpPacketBuilder::new();
        let b = if swap {
            b.src(Ipv4Addr::new(10, 0, 0, 2), dst_port)
                .dst(Ipv4Addr::new(10, 0, 0, 1), src_port)
        } else {
            b.src(Ipv4Addr::new(10, 0, 0, 1), src_port)
                .dst(Ipv4Addr::new(10, 0, 0, 2), dst_port)
        };
        b.build().into_bytes()
    }

    #[test]
    fn same_flow_same_queue_both_directions() {
        let mut nic = Nic::new(4, 64);
        let rxs: Vec<_> = (0..4).map(|i| nic.take_queue(i)).collect();
        nic.dispatch(frame(1000, 80, false));
        nic.dispatch(frame(1000, 80, true));
        let counts: Vec<usize> = rxs.iter().map(|r| r.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 2);
        assert_eq!(
            counts.iter().filter(|&&c| c == 2).count(),
            1,
            "both in one queue: {counts:?}"
        );
    }

    #[test]
    fn different_flows_spread() {
        let mut nic = Nic::new(4, 1024);
        let rxs: Vec<_> = (0..4).map(|i| nic.take_queue(i)).collect();
        for port in 0..256 {
            nic.dispatch(frame(10_000 + port, 80, false));
        }
        let used = rxs.iter().filter(|r| !r.is_empty()).count();
        assert!(used >= 3, "RSS failed to spread: {used} queues used");
    }

    #[test]
    fn overflow_counts_drops() {
        let mut nic = Nic::new(1, 4);
        let _rx = nic.take_queue(0);
        for _ in 0..10 {
            nic.dispatch(frame(1, 2, false));
        }
        assert_eq!(nic.dropped(), 6);
    }

    #[test]
    #[should_panic(expected = "queue already taken")]
    fn double_take_panics() {
        let mut nic = Nic::new(1, 4);
        let _a = nic.take_queue(0);
        let _b = nic.take_queue(0);
    }
}
