//! Impaired point-to-point links.
//!
//! A link delivers byte frames with configurable propagation latency,
//! jitter, random loss, reordering and serialization delay (bandwidth).
//! Impairments are applied at the sender; the receiver releases frames no
//! earlier than their computed delivery time, which is what makes jitter
//! produce genuine reordering.

use crate::transport::Disconnected;
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a link's impairments.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Fixed one-way propagation delay.
    pub latency: Duration,
    /// Uniform random extra delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delayed an extra jitter interval, causing it
    /// to arrive after its successors (reordering).
    pub reorder: f64,
    /// Link bandwidth in bits/s; serialization delay = len / bandwidth.
    /// `None` models an infinitely fast link.
    pub bandwidth_bps: Option<u64>,
    /// RNG seed so impairments are reproducible.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            loss: 0.0,
            reorder: 0.0,
            bandwidth_bps: None,
            seed: 0,
        }
    }
}

impl LinkConfig {
    /// An ideal link: zero latency, no impairments.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A lossy, reordering link for stress tests.
    pub fn lossy(loss: f64, reorder: f64, seed: u64) -> Self {
        LinkConfig {
            latency: Duration::from_micros(5),
            jitter: Duration::from_micros(20),
            loss,
            reorder,
            bandwidth_bps: None,
            seed,
        }
    }

    /// A WAN link with the given round-trip time (one-way = rtt/2).
    pub fn wan(rtt: Duration) -> Self {
        LinkConfig {
            latency: rtt / 2,
            ..Default::default()
        }
    }
}

struct TimedFrame {
    deliver_at: Instant,
    payload: BytesMut,
}

struct TxState {
    rng: StdRng,
    /// The time the link is busy serializing previously sent frames.
    busy_until: Instant,
}

/// Sending half of a link. Cloneable: multiple producers share the wire.
pub struct LinkTx {
    tx: Sender<TimedFrame>,
    cfg: LinkConfig,
    state: Arc<Mutex<TxState>>,
}

impl Clone for LinkTx {
    fn clone(&self) -> Self {
        LinkTx {
            tx: self.tx.clone(),
            cfg: self.cfg.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl LinkTx {
    /// Sends a frame, applying the configured impairments. A frame eaten by
    /// loss still returns `Ok` (the sender cannot tell — that is the point).
    pub fn send(&self, payload: BytesMut) -> Result<(), Disconnected> {
        let now = Instant::now();
        let mut st = self.state.lock();
        if self.cfg.loss > 0.0 && st.rng.gen_bool(self.cfg.loss) {
            return Ok(());
        }
        let mut delay = self.cfg.latency;
        if self.cfg.jitter > Duration::ZERO {
            delay += self.cfg.jitter.mul_f64(st.rng.gen::<f64>());
        }
        if self.cfg.reorder > 0.0 && st.rng.gen_bool(self.cfg.reorder) {
            delay += self.cfg.jitter.max(Duration::from_micros(50)) * 2;
        }
        if let Some(bps) = self.cfg.bandwidth_bps {
            let ser = Duration::from_secs_f64(payload.len() as f64 * 8.0 / bps as f64);
            let start = st.busy_until.max(now);
            st.busy_until = start + ser;
            delay += st.busy_until.saturating_duration_since(now);
        }
        drop(st);
        self.tx
            .send(TimedFrame {
                deliver_at: now + delay,
                payload,
            })
            .map_err(|_| Disconnected)
    }
}

/// Receiving half of a link.
///
/// Frames are released in *delivery-time* order (not send order), which is
/// how sender-side jitter turns into genuine on-the-wire reordering.
pub struct LinkRx {
    rx: Receiver<TimedFrame>,
    /// Frames popped from the channel, ordered by delivery time.
    heap: std::collections::BinaryHeap<HeapFrame>,
    disconnected: bool,
}

struct HeapFrame(TimedFrame);

impl PartialEq for HeapFrame {
    fn eq(&self, other: &Self) -> bool {
        self.0.deliver_at == other.0.deliver_at
    }
}
impl Eq for HeapFrame {}
impl PartialOrd for HeapFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by delivery time.
        other.0.deliver_at.cmp(&self.0.deliver_at)
    }
}

impl LinkRx {
    /// Receives the next due frame, waiting up to `timeout`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<BytesMut>, Disconnected> {
        let deadline = Instant::now() + timeout;
        loop {
            // Drain everything currently on the channel into the heap so the
            // earliest-due frame wins regardless of send order.
            loop {
                match self.rx.try_recv() {
                    Ok(f) => self.heap.push(HeapFrame(f)),
                    Err(channel::TryRecvError::Empty) => break,
                    Err(channel::TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                }
            }
            let now = Instant::now();
            if let Some(earliest) = self.heap.peek() {
                let due = earliest.0.deliver_at;
                if due <= now {
                    let f = self.heap.pop().expect("peeked");
                    return Ok(Some(f.0.payload));
                }
                if due > deadline {
                    return Ok(None);
                }
                // Wait until the frame is due, but wake early if something
                // new arrives (it might be due even earlier).
                match self.rx.recv_deadline(due) {
                    Ok(f) => self.heap.push(HeapFrame(f)),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        self.disconnected = true;
                        std::thread::sleep(due.saturating_duration_since(Instant::now()));
                    }
                }
                continue;
            }
            if self.disconnected {
                return Err(Disconnected);
            }
            match self.rx.recv_deadline(deadline) {
                Ok(f) => self.heap.push(HeapFrame(f)),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => {
                    self.disconnected = true;
                }
            }
        }
    }
}

/// Creates a unidirectional link.
pub fn simplex(cfg: LinkConfig) -> (LinkTx, LinkRx) {
    let (tx, rx) = channel::unbounded();
    (
        LinkTx {
            tx,
            state: Arc::new(Mutex::new(TxState {
                rng: StdRng::seed_from_u64(cfg.seed),
                busy_until: Instant::now(),
            })),
            cfg,
        },
        LinkRx {
            rx,
            heap: std::collections::BinaryHeap::new(),
            disconnected: false,
        },
    )
}

/// One side of a bidirectional link.
pub struct Duplex {
    /// Transmit half towards the peer.
    pub tx: LinkTx,
    /// Receive half from the peer.
    pub rx: LinkRx,
}

/// Creates a bidirectional link (a pair of independent simplex links with
/// the same configuration but decorrelated RNG seeds).
pub fn duplex(cfg: LinkConfig) -> (Duplex, Duplex) {
    let mut back = cfg.clone();
    back.seed = cfg.seed.wrapping_add(0x9e3779b97f4a7c15);
    let (atx, brx) = simplex(cfg);
    let (btx, arx) = simplex(back);
    (Duplex { tx: atx, rx: arx }, Duplex { tx: btx, rx: brx })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: u8) -> BytesMut {
        BytesMut::from(&[i][..])
    }

    #[test]
    fn ideal_link_delivers_in_order() {
        let (tx, mut rx) = simplex(LinkConfig::ideal());
        for i in 0..10 {
            tx.send(frame(i)).unwrap();
        }
        for i in 0..10 {
            let f = rx
                .recv_timeout(Duration::from_millis(100))
                .unwrap()
                .unwrap();
            assert_eq!(f[0], i);
        }
    }

    #[test]
    fn latency_is_respected() {
        let cfg = LinkConfig {
            latency: Duration::from_millis(20),
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        let t0 = Instant::now();
        tx.send(frame(1)).unwrap();
        let f = rx
            .recv_timeout(Duration::from_millis(200))
            .unwrap()
            .unwrap();
        assert_eq!(f[0], 1);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn timeout_returns_none_and_keeps_frame() {
        let cfg = LinkConfig {
            latency: Duration::from_millis(50),
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        tx.send(frame(7)).unwrap();
        // Too short: frame not yet due, must not be lost.
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)).unwrap(), None);
        let f = rx
            .recv_timeout(Duration::from_millis(200))
            .unwrap()
            .unwrap();
        assert_eq!(f[0], 7);
    }

    #[test]
    fn full_loss_drops_everything() {
        let cfg = LinkConfig {
            loss: 1.0,
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        for i in 0..20 {
            tx.send(frame(i)).unwrap();
        }
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), None);
    }

    #[test]
    fn partial_loss_drops_some() {
        let cfg = LinkConfig {
            loss: 0.5,
            seed: 42,
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        let n = 200;
        for i in 0..n {
            tx.send(frame(i as u8)).unwrap();
        }
        let mut got = 0;
        while rx.recv_timeout(Duration::from_millis(5)).unwrap().is_some() {
            got += 1;
        }
        assert!(got > n / 5 && got < n, "got {got} of {n}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        // 1 Mbit/s, 1250-byte frames => 10 ms each.
        let cfg = LinkConfig {
            bandwidth_bps: Some(1_000_000),
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        let t0 = Instant::now();
        for _ in 0..3 {
            tx.send(BytesMut::zeroed(1250)).unwrap();
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_millis(500))
                .unwrap()
                .unwrap();
        }
        let el = t0.elapsed();
        assert!(el >= Duration::from_millis(29), "elapsed {el:?}");
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = simplex(LinkConfig::ideal());
        drop(rx);
        assert_eq!(tx.send(frame(0)), Err(Disconnected));
        let (tx, mut rx) = simplex(LinkConfig::ideal());
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(Disconnected));
    }

    #[test]
    fn duplex_is_bidirectional() {
        let (mut a, mut b) = duplex(LinkConfig::ideal());
        a.tx.send(frame(1)).unwrap();
        b.tx.send(frame(2)).unwrap();
        assert_eq!(
            b.rx.recv_timeout(Duration::from_millis(50))
                .unwrap()
                .unwrap()[0],
            1
        );
        assert_eq!(
            a.rx.recv_timeout(Duration::from_millis(50))
                .unwrap()
                .unwrap()[0],
            2
        );
    }

    #[test]
    fn jitter_reorders_eventually() {
        let cfg = LinkConfig {
            jitter: Duration::from_micros(300),
            reorder: 0.3,
            seed: 7,
            ..Default::default()
        };
        let (tx, mut rx) = simplex(cfg);
        let n = 100u8;
        for i in 0..n {
            tx.send(frame(i)).unwrap();
            std::thread::sleep(Duration::from_micros(30));
        }
        let mut order = Vec::new();
        while let Some(f) = rx.recv_timeout(Duration::from_millis(20)).unwrap() {
            order.push(f[0]);
        }
        assert_eq!(order.len(), n as usize);
        let sorted: Vec<u8> = (0..n).collect();
        assert_ne!(order, sorted, "expected at least one reordering");
    }
}
