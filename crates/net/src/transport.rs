//! Backend-agnostic transport abstraction.
//!
//! Everything above this module speaks three small trait surfaces —
//! [`FrameTx`]/[`FrameRx`] for the reliable sequenced frame links the paper
//! assumes between servers, [`RpcCaller`]/[`RpcResponder`] for control-plane
//! request/response, and [`Transport`] as the node-local factory that wires
//! both — plus the [`Endpoint`]/[`PeerAddr`] naming scheme that describes
//! *where* a link terminates and *how* it behaves.
//!
//! Two backends implement the surfaces:
//!
//! * **In-process** ([`InProcTransport`], [`crate::reliable_pair`]): crossbeam
//!   channels with seeded, deterministic impairments. This is the backend the
//!   protocol model checker and the audit harness run on — determinism is a
//!   contract, not an accident: impairments are driven by a per-link seeded
//!   RNG and no wall-clock-dependent scheduling decision affects *which*
//!   bytes flow, only when.
//! * **Socket** ([`crate::sock`]): tokio TCP/UDS connections with
//!   length-prefixed framing, one multiplexed connection per peer pair, and
//!   connection-level retry/backoff, so a chain deploys as N OS processes.
//!
//! Both backends put the exact same bytes on the wire — frames from the
//! unified codec in [`ftc_packet::frame`] — which is pinned by a proptest
//! asserting frame-level byte identity.

use crate::link::{self, LinkConfig};
use crate::rpc::RpcError;
use bytes::{Bytes, BytesMut};
use ftc_packet::frame::{self, Frame};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// Error returned when the peer of a link has gone away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl core::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "link peer disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Logical node identity within a deployment plan.
pub type NodeId = u16;

/// Address of a peer for socket backends.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PeerAddr {
    /// TCP socket address.
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Uds(PathBuf),
    /// In-memory simulated socket (det-mode model checking only): a name
    /// in the thread-local `tokio::sim` registry. Dials resolve within the
    /// same thread, which is exactly what the deterministic explorer needs.
    Sim(String),
}

impl PeerAddr {
    /// Parses `"uds:<path>"`, `"tcp:<ip>:<port>"`, a bare `<ip>:<port>`,
    /// a bare filesystem path (containing `/`), or `"sim:<name>"`.
    pub fn parse(s: &str) -> Result<PeerAddr, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            return Ok(PeerAddr::Uds(PathBuf::from(path)));
        }
        if let Some(name) = s.strip_prefix("sim:") {
            return Ok(PeerAddr::Sim(name.to_string()));
        }
        let bare = s.strip_prefix("tcp:").unwrap_or(s);
        if let Ok(addr) = bare.parse::<SocketAddr>() {
            return Ok(PeerAddr::Tcp(addr));
        }
        if s.contains('/') {
            return Ok(PeerAddr::Uds(PathBuf::from(s)));
        }
        Err(format!(
            "cannot parse peer address {s:?}: expected uds:<path> or <ip>:<port>"
        ))
    }
}

impl core::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PeerAddr::Tcp(a) => write!(f, "tcp:{a}"),
            PeerAddr::Uds(p) => write!(f, "uds:{}", p.display()),
            PeerAddr::Sim(n) => write!(f, "sim:{n}"),
        }
    }
}

/// Socket-backend endpoint options: peer address plus timeouts.
#[derive(Debug, Clone)]
pub struct SockOpts {
    /// Where the peer (or the local listener) lives.
    pub addr: PeerAddr,
    /// Total budget for the initial dial, including retries. Nodes of a
    /// multi-process chain start in arbitrary order, so dialing retries
    /// with backoff until the peer binds or this budget is exhausted.
    pub connect_timeout: Duration,
    /// Initial pause between dial attempts (doubled per retry).
    pub retry_backoff: Duration,
    /// Cap on the dial backoff.
    pub max_backoff: Duration,
}

#[derive(Debug, Clone)]
enum Kind {
    InProc(LinkConfig),
    Sock(SockOpts),
}

/// Per-backend link/endpoint configuration — the one way to configure a
/// link.
///
/// An endpoint is either **in-process** (latency/jitter/loss/reorder/
/// bandwidth/seed knobs, applied by the deterministic channel backend) or
/// **socket** (peer address plus dial timeouts, served by the tokio
/// TCP/UDS backend). Builder methods panic when applied to the wrong
/// backend, so a mis-configured deployment fails loudly at wiring time
/// rather than silently ignoring a knob.
#[derive(Debug, Clone)]
pub struct Endpoint {
    kind: Kind,
}

impl Default for Endpoint {
    fn default() -> Self {
        Endpoint::in_proc()
    }
}

impl Endpoint {
    // ---- constructors -----------------------------------------------------

    /// An ideal in-process link: zero latency, no impairments.
    pub fn in_proc() -> Endpoint {
        Endpoint {
            kind: Kind::InProc(LinkConfig::ideal()),
        }
    }

    /// A lossy, reordering in-process link for stress tests.
    pub fn lossy(loss: f64, reorder: f64, seed: u64) -> Endpoint {
        Endpoint {
            kind: Kind::InProc(LinkConfig::lossy(loss, reorder, seed)),
        }
    }

    /// An in-process WAN link with the given round-trip time.
    pub fn wan(rtt: Duration) -> Endpoint {
        Endpoint {
            kind: Kind::InProc(LinkConfig::wan(rtt)),
        }
    }

    /// A socket endpoint at `addr` with default timeouts.
    pub fn sock(addr: PeerAddr) -> Endpoint {
        Endpoint {
            kind: Kind::Sock(SockOpts {
                addr,
                connect_timeout: Duration::from_secs(10),
                retry_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
            }),
        }
    }

    // ---- in-process knobs -------------------------------------------------

    fn link_mut(&mut self, knob: &str) -> &mut LinkConfig {
        match &mut self.kind {
            Kind::InProc(cfg) => cfg,
            Kind::Sock(_) => {
                panic!("{knob} is an in-process link knob, not valid for a socket endpoint")
            }
        }
    }

    /// Sets the fixed one-way propagation delay (in-process backend).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.link_mut("latency").latency = latency;
        self
    }

    /// Sets the uniform random extra delay bound (in-process backend).
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.link_mut("jitter").jitter = jitter;
        self
    }

    /// Sets the frame-loss probability (in-process backend).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.link_mut("loss").loss = loss;
        self
    }

    /// Sets the reordering probability (in-process backend).
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.link_mut("reorder").reorder = reorder;
        self
    }

    /// Sets the link bandwidth in bits/s, `None` = infinitely fast
    /// (in-process backend).
    pub fn with_bandwidth(mut self, bps: Option<u64>) -> Self {
        self.link_mut("bandwidth").bandwidth_bps = bps;
        self
    }

    /// Sets the impairment RNG seed (in-process backend).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.link_mut("seed").seed = seed;
        self
    }

    // ---- socket knobs -----------------------------------------------------

    fn sock_mut(&mut self, knob: &str) -> &mut SockOpts {
        match &mut self.kind {
            Kind::Sock(opts) => opts,
            Kind::InProc(_) => {
                panic!("{knob} is a socket knob, not valid for an in-process endpoint")
            }
        }
    }

    /// Sets the total initial-dial budget, retries included (socket backend).
    pub fn with_connect_timeout(mut self, t: Duration) -> Self {
        self.sock_mut("connect_timeout").connect_timeout = t;
        self
    }

    /// Sets the initial dial retry backoff (socket backend).
    pub fn with_retry_backoff(mut self, t: Duration) -> Self {
        self.sock_mut("retry_backoff").retry_backoff = t;
        self
    }

    /// Sets the dial backoff cap (socket backend).
    pub fn with_max_backoff(mut self, t: Duration) -> Self {
        self.sock_mut("max_backoff").max_backoff = t;
        self
    }

    // ---- accessors --------------------------------------------------------

    /// True for socket endpoints.
    pub fn is_sock(&self) -> bool {
        matches!(self.kind, Kind::Sock(_))
    }

    /// One-way propagation delay (in-process; panics on socket endpoints).
    pub fn latency(&self) -> Duration {
        self.link_cfg().latency
    }

    /// Frame-loss probability (in-process; panics on socket endpoints).
    pub fn loss(&self) -> f64 {
        self.link_cfg().loss
    }

    /// Impairment RNG seed (in-process; panics on socket endpoints).
    pub fn seed(&self) -> u64 {
        self.link_cfg().seed
    }

    /// Peer address (socket; panics on in-process endpoints).
    pub fn addr(&self) -> &PeerAddr {
        &self.sock_opts().addr
    }

    pub(crate) fn link_cfg(&self) -> &LinkConfig {
        match &self.kind {
            Kind::InProc(cfg) => cfg,
            Kind::Sock(_) => panic!("socket endpoint has no in-process link config"),
        }
    }

    /// Socket options (panics on in-process endpoints).
    pub fn sock_opts(&self) -> &SockOpts {
        match &self.kind {
            Kind::Sock(opts) => opts,
            Kind::InProc(_) => panic!("in-process endpoint has no socket options"),
        }
    }
}

/// A raw duplex frame channel: unreliable, unsequenced, possibly lossy —
/// what the [`crate::reliable`] layer runs over.
///
/// Implementations encode/decode the unified [`ftc_packet::frame`] codec,
/// so the bytes on the wire are identical whichever backend carries them.
/// A send into a dead backend may report success (frames silently vanish,
/// like loss); the reliable layer's RTO recovers once the backend heals,
/// which is how socket resets are survived.
pub trait RawLink: Send {
    /// Sends one frame (`kind`, `seq`, payload) on this link's stream.
    fn send_frame(&mut self, kind: u8, seq: u64, payload: &[u8]) -> Result<(), Disconnected>;

    /// Receives the next frame, waiting up to `timeout`.
    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Frame>, Disconnected>;

    /// Non-blocking receive.
    fn try_recv_frame(&mut self) -> Result<Option<Frame>, Disconnected> {
        self.recv_frame(Duration::ZERO)
    }

    /// The stream id this link's frames are tagged with.
    fn stream(&self) -> u16;
}

/// Sending half of a reliable, sequenced frame link (what an
/// [`OutPort`](https://docs.rs/) slot holds). Implemented by
/// [`crate::reliable::ReliableSender`] over any [`RawLink`].
pub trait FrameTx: Send {
    /// Sends a payload with the next sequence number.
    fn send(&mut self, payload: BytesMut) -> Result<(), Disconnected>;

    /// Drives retransmission/ACK processing; call periodically.
    fn poll(&mut self) -> Result<(), Disconnected>;

    /// Frames sent but not yet acknowledged.
    fn in_flight(&self) -> usize;
}

/// Receiving half of a reliable, sequenced frame link. Implemented by
/// [`crate::reliable::ReliableReceiver`] over any [`RawLink`].
pub trait FrameRx: Send {
    /// Receives the next in-order payload, waiting up to `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<BytesMut>, Disconnected>;
}

impl FrameTx for Box<dyn FrameTx> {
    fn send(&mut self, payload: BytesMut) -> Result<(), Disconnected> {
        (**self).send(payload)
    }

    fn poll(&mut self) -> Result<(), Disconnected> {
        (**self).poll()
    }

    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
}

impl FrameRx for Box<dyn FrameRx> {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<BytesMut>, Disconnected> {
        (**self).recv_timeout(timeout)
    }
}

/// Byte-level RPC client: serialize the request, get serialized response.
///
/// Both backends serialize identically (the typed wrappers in `ftc-core`
/// own the codec), so control-plane behavior cannot drift between the
/// deterministic and the socket deployment.
pub trait RpcCaller: Send + Sync {
    /// Issues a call and waits up to `timeout` for the response.
    fn call_bytes(&self, req: Bytes, timeout: Duration) -> Result<Bytes, RpcError>;

    /// A derived caller paying an extra simulated one-way delay per
    /// direction (in-process backend; socket backends return an unchanged
    /// clone — their delays are real).
    fn with_delay(&self, one_way: Duration) -> Box<dyn RpcCaller>;

    /// Clones the caller (object-safe `Clone`).
    fn clone_caller(&self) -> Box<dyn RpcCaller>;
}

/// Byte-level RPC server half.
pub trait RpcResponder: Send {
    /// Serves at most one pending request via `handler`, waiting up to
    /// `timeout` for one to arrive. Returns whether a request was served.
    fn serve_next_bytes(
        &mut self,
        timeout: Duration,
        handler: &mut dyn FnMut(Bytes) -> Bytes,
    ) -> Result<bool, RpcError>;
}

/// A transport backend: the node-local factory that opens the two halves
/// of reliable frame links and RPC channels, addressed by stream id.
///
/// For the in-process backend both halves come from one factory instance
/// (the second `open_*`/`rpc_*` call for a stream claims the half stashed
/// by the first). For the socket backend each process holds its own
/// factory ([`crate::sock::SockTransport`]) and the stream id plus the
/// deployment plan's addresses pair the halves across processes.
pub trait Transport: Send + Sync {
    /// Opens the sending half of reliable stream `stream` toward `peer`.
    fn open_tx(&self, peer: &Endpoint, stream: u16) -> Box<dyn FrameTx>;

    /// Opens the receiving half of reliable stream `stream`.
    fn open_rx(&self, local: &Endpoint, stream: u16) -> Box<dyn FrameRx>;

    /// Opens an RPC client toward `peer`, correlated on `stream`.
    fn rpc_caller(&self, peer: &Endpoint, stream: u16) -> Box<dyn RpcCaller>;

    /// Opens the RPC responder for `stream`.
    fn rpc_responder(&self, local: &Endpoint, stream: u16) -> Box<dyn RpcResponder>;
}

/// In-process raw link: one side of an impaired duplex channel, carrying
/// unified-codec frames.
pub struct InProcRawLink {
    duplex: link::Duplex,
    stream: u16,
}

impl RawLink for InProcRawLink {
    fn send_frame(&mut self, kind: u8, seq: u64, payload: &[u8]) -> Result<(), Disconnected> {
        self.duplex
            .tx
            .send(frame::encode(kind, self.stream, seq, payload))
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Frame>, Disconnected> {
        match self.duplex.rx.recv_timeout(timeout)? {
            // In-process channels preserve message boundaries: one message
            // is one frame. A decode failure cannot happen short of memory
            // corruption, so treat it as loss rather than poisoning the rx.
            Some(buf) => Ok(frame::decode(buf.as_ref()).ok().flatten().map(|(f, _)| f)),
            None => Ok(None),
        }
    }

    fn stream(&self) -> u16 {
        self.stream
    }
}

/// Creates the two sides of an in-process raw duplex link on `stream`.
pub fn raw_pair(ep: &Endpoint, stream: u16) -> (InProcRawLink, InProcRawLink) {
    let (a, b) = link::duplex(ep.link_cfg().clone());
    (
        InProcRawLink { duplex: a, stream },
        InProcRawLink { duplex: b, stream },
    )
}

enum LinkSlot {
    Tx(Box<dyn FrameTx>),
    Rx(Box<dyn FrameRx>),
}

enum RpcSlot {
    Caller(Box<dyn RpcCaller>),
    Responder(Box<dyn RpcResponder>),
}

/// The in-process [`Transport`]: both halves of every stream live in one
/// process, so the factory creates a pair on first open and hands the
/// stashed half to the second open. Deterministic — impairments come from
/// the endpoint's seeded RNG and nothing else.
#[derive(Default)]
pub struct InProcTransport {
    links: Mutex<HashMap<u16, LinkSlot>>,
    rpcs: Mutex<HashMap<u16, RpcSlot>>,
}

impl InProcTransport {
    /// Creates an empty in-process transport.
    pub fn new() -> InProcTransport {
        InProcTransport::default()
    }
}

impl Transport for InProcTransport {
    fn open_tx(&self, peer: &Endpoint, stream: u16) -> Box<dyn FrameTx> {
        let mut links = self.links.lock();
        match links.remove(&stream) {
            Some(LinkSlot::Tx(tx)) => tx,
            Some(LinkSlot::Rx(rx)) => {
                // Put it back; opening the same half twice is a wiring bug.
                links.insert(stream, LinkSlot::Rx(rx));
                panic!("stream {stream}: rx half already stashed; open_rx must claim it")
            }
            None => {
                let (tx, rx) = crate::reliable::reliable_pair_on(peer, stream);
                links.insert(stream, LinkSlot::Rx(Box::new(rx)));
                Box::new(tx)
            }
        }
    }

    fn open_rx(&self, local: &Endpoint, stream: u16) -> Box<dyn FrameRx> {
        let mut links = self.links.lock();
        match links.remove(&stream) {
            Some(LinkSlot::Rx(rx)) => rx,
            Some(LinkSlot::Tx(tx)) => {
                links.insert(stream, LinkSlot::Tx(tx));
                panic!("stream {stream}: tx half already stashed; open_tx must claim it")
            }
            None => {
                let (tx, rx) = crate::reliable::reliable_pair_on(local, stream);
                links.insert(stream, LinkSlot::Tx(Box::new(tx)));
                Box::new(rx)
            }
        }
    }

    fn rpc_caller(&self, _peer: &Endpoint, stream: u16) -> Box<dyn RpcCaller> {
        let mut rpcs = self.rpcs.lock();
        match rpcs.remove(&stream) {
            Some(RpcSlot::Caller(c)) => c,
            Some(RpcSlot::Responder(r)) => {
                rpcs.insert(stream, RpcSlot::Responder(r));
                panic!("stream {stream}: responder already stashed; rpc_responder must claim it")
            }
            None => {
                let (c, r) = crate::rpc::rpc_pair::<Bytes, Bytes>(Duration::ZERO);
                rpcs.insert(stream, RpcSlot::Responder(Box::new(r)));
                Box::new(c)
            }
        }
    }

    fn rpc_responder(&self, _local: &Endpoint, stream: u16) -> Box<dyn RpcResponder> {
        let mut rpcs = self.rpcs.lock();
        match rpcs.remove(&stream) {
            Some(RpcSlot::Responder(r)) => r,
            Some(RpcSlot::Caller(c)) => {
                rpcs.insert(stream, RpcSlot::Caller(c));
                panic!("stream {stream}: caller already stashed; rpc_caller must claim it")
            }
            None => {
                let (c, r) = crate::rpc::rpc_pair::<Bytes, Bytes>(Duration::ZERO);
                rpcs.insert(stream, RpcSlot::Caller(Box::new(c)));
                Box::new(r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_addr_parses_all_forms() {
        assert_eq!(
            PeerAddr::parse("uds:/tmp/a.sock").unwrap(),
            PeerAddr::Uds(PathBuf::from("/tmp/a.sock"))
        );
        assert_eq!(
            PeerAddr::parse("/tmp/b.sock").unwrap(),
            PeerAddr::Uds(PathBuf::from("/tmp/b.sock"))
        );
        assert!(matches!(
            PeerAddr::parse("tcp:127.0.0.1:9000").unwrap(),
            PeerAddr::Tcp(_)
        ));
        assert!(matches!(
            PeerAddr::parse("127.0.0.1:9000").unwrap(),
            PeerAddr::Tcp(_)
        ));
        assert_eq!(
            PeerAddr::parse("sim:node-a").unwrap(),
            PeerAddr::Sim("node-a".to_string())
        );
        assert_eq!(PeerAddr::Sim("x".into()).to_string(), "sim:x");
        assert!(PeerAddr::parse("not-an-addr").is_err());
    }

    #[test]
    fn endpoint_builders_roundtrip() {
        let ep = Endpoint::in_proc()
            .with_latency(Duration::from_micros(5))
            .with_loss(0.1)
            .with_seed(7);
        assert!(!ep.is_sock());
        assert_eq!(ep.latency(), Duration::from_micros(5));
        assert_eq!(ep.loss(), 0.1);
        assert_eq!(ep.seed(), 7);

        let sock = Endpoint::sock(PeerAddr::parse("uds:/tmp/x.sock").unwrap())
            .with_connect_timeout(Duration::from_secs(1));
        assert!(sock.is_sock());
        assert_eq!(sock.sock_opts().connect_timeout, Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "in-process link knob")]
    fn in_proc_knob_on_sock_endpoint_panics() {
        let _ = Endpoint::sock(PeerAddr::Uds(PathBuf::from("/tmp/x"))).with_loss(0.5);
    }

    #[test]
    #[should_panic(expected = "socket knob")]
    fn sock_knob_on_in_proc_endpoint_panics() {
        let _ = Endpoint::in_proc().with_connect_timeout(Duration::from_secs(1));
    }

    #[test]
    fn raw_pair_carries_codec_frames() {
        let (mut a, mut b) = raw_pair(&Endpoint::in_proc(), 9);
        a.send_frame(frame::kind::DATA, 42, b"payload").unwrap();
        let f = b
            .recv_frame(Duration::from_millis(100))
            .unwrap()
            .expect("frame");
        assert_eq!(f.kind, frame::kind::DATA);
        assert_eq!(f.stream, 9);
        assert_eq!(f.seq, 42);
        assert_eq!(f.payload.as_slice(), b"payload");
    }

    #[test]
    fn in_proc_transport_pairs_halves() {
        let t = InProcTransport::new();
        let mut tx = t.open_tx(&Endpoint::in_proc(), 1);
        let mut rx = t.open_rx(&Endpoint::in_proc(), 1);
        tx.send(BytesMut::from(&b"hi"[..])).unwrap();
        let got = rx
            .recv_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("delivered");
        assert_eq!(got.as_ref(), b"hi");

        let caller = t.rpc_caller(&Endpoint::in_proc(), 2);
        let mut responder = t.rpc_responder(&Endpoint::in_proc(), 2);
        let h = std::thread::spawn(move || {
            responder
                .serve_next_bytes(Duration::from_secs(1), &mut |req| {
                    Bytes::copy_from_slice(&[req.as_slice(), b"!"].concat())
                })
                .unwrap()
        });
        let resp = caller
            .call_bytes(Bytes::copy_from_slice(b"ping"), Duration::from_secs(1))
            .unwrap();
        assert_eq!(resp.as_slice(), b"ping!");
        assert!(h.join().unwrap());
    }
}
