//! Fail-stop servers: named groups of threads with a shared liveness token.
//!
//! The paper models failures as fail-stop (§2): "failures are detectable,
//! and failed components are not restored". [`Server::kill`] flips the
//! liveness token; every loop in the server's threads polls it and exits,
//! dropping channels (so peers observe disconnects) and state (so the
//! failure genuinely loses the server's stores).

use crate::topology::RegionId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared liveness flag for all threads of a server.
#[derive(Debug, Clone)]
pub struct AliveToken(Arc<AtomicBool>);

impl AliveToken {
    /// Creates a live token.
    pub fn new() -> Self {
        AliveToken(Arc::new(AtomicBool::new(true)))
    }

    /// True until the server is killed.
    pub fn is_alive(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Marks the server dead.
    pub fn kill(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

impl Default for AliveToken {
    fn default() -> Self {
        Self::new()
    }
}

/// A simulated physical server hosting middlebox/replica threads.
pub struct Server {
    name: String,
    region: RegionId,
    alive: AliveToken,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Creates a server in `region`.
    pub fn new(name: impl Into<String>, region: RegionId) -> Server {
        Server {
            name: name.into(),
            region,
            alive: AliveToken::new(),
            threads: Vec::new(),
        }
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region the server is deployed in.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The liveness token to hand to thread loops.
    pub fn alive_token(&self) -> AliveToken {
        self.alive.clone()
    }

    /// True until killed.
    pub fn is_alive(&self) -> bool {
        self.alive.is_alive()
    }

    /// Spawns a named thread owned by this server. The closure receives the
    /// liveness token and must return promptly once it reads `false`.
    pub fn spawn(&mut self, label: &str, f: impl FnOnce(AliveToken) + Send + 'static) {
        let token = self.alive.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}/{}", self.name, label))
            .spawn(move || f(token))
            .expect("spawn thread");
        self.threads.push(handle);
    }

    /// Fail-stops the server: threads observe the dead token and exit. Does
    /// not block; use [`Server::join`] to wait for full termination.
    pub fn kill(&self) {
        self.alive.kill();
    }

    /// Waits for all server threads to exit.
    pub fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn threads_stop_on_kill() {
        let counter = Arc::new(AtomicU32::new(0));
        let mut s = Server::new("s1", RegionId(0));
        for _ in 0..3 {
            let c = Arc::clone(&counter);
            s.spawn("worker", move |alive| {
                while alive.is_alive() {
                    std::thread::sleep(Duration::from_micros(100));
                }
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(s.is_alive());
        s.kill();
        s.join();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert!(!s.is_alive());
    }

    #[test]
    fn drop_kills_and_joins() {
        let counter = Arc::new(AtomicU32::new(0));
        {
            let mut s = Server::new("s2", RegionId(1));
            let c = Arc::clone(&counter);
            s.spawn("w", move |alive| {
                while alive.is_alive() {
                    std::thread::sleep(Duration::from_micros(100));
                }
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
