//! Minimal control-plane RPC with injected WAN delay.
//!
//! Used for orchestrator↔replica communication (heartbeats, recovery
//! commands) and replica↔replica state fetches ("using a reliable TCP
//! connection, the thread sends a fetch request ... and waits to receive
//! state", paper §6). Each call pays the configured round-trip time, which
//! is how the recovery experiment reproduces WAN-dominated delays (§7.5).

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The server endpoint is gone (fail-stop peer).
    Disconnected,
    /// The server did not answer within the caller's timeout.
    Timeout,
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RpcError::Disconnected => write!(f, "rpc peer disconnected"),
            RpcError::Timeout => write!(f, "rpc timed out"),
        }
    }
}

impl std::error::Error for RpcError {}

struct Envelope<Req, Resp> {
    req: Req,
    reply: Sender<Resp>,
}

/// Client handle: cloneable, cheap.
pub struct RpcClient<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    /// One-way network delay paid on the request and again on the response.
    one_way: Duration,
}

impl<Req, Resp> Clone for RpcClient<Req, Resp> {
    fn clone(&self) -> Self {
        RpcClient {
            tx: self.tx.clone(),
            one_way: self.one_way,
        }
    }
}

impl<Req, Resp> RpcClient<Req, Resp> {
    /// A derived client talking to the same server but paying a different
    /// one-way network delay (e.g. a caller in another region).
    pub fn with_delay(&self, one_way: Duration) -> RpcClient<Req, Resp> {
        RpcClient {
            tx: self.tx.clone(),
            one_way,
        }
    }

    /// Issues a call and waits up to `timeout` for the reply (network delay
    /// included in the budget).
    pub fn call(&self, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        if self.one_way > Duration::ZERO {
            std::thread::sleep(self.one_way);
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Envelope {
                req,
                reply: reply_tx,
            })
            .map_err(|_| RpcError::Disconnected)?;
        let resp = match reply_rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => return Err(RpcError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(RpcError::Disconnected),
        };
        if self.one_way > Duration::ZERO {
            std::thread::sleep(self.one_way);
        }
        Ok(resp)
    }
}

/// Server handle: owned by the serving thread.
pub struct RpcServer<Req, Resp> {
    rx: Receiver<Envelope<Req, Resp>>,
}

impl<Req, Resp> RpcServer<Req, Resp> {
    /// Serves at most one pending request using `handler`, waiting up to
    /// `timeout` for one to arrive. Returns whether a request was served.
    pub fn serve_next(
        &self,
        timeout: Duration,
        handler: impl FnOnce(Req) -> Resp,
    ) -> Result<bool, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                let resp = handler(env.req);
                let _ = env.reply.send(resp); // caller may have timed out
                Ok(true)
            }
            Err(RecvTimeoutError::Timeout) => Ok(false),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }
}

/// Creates a client/server pair with the given one-way network delay.
pub fn rpc_pair<Req, Resp>(one_way: Duration) -> (RpcClient<Req, Resp>, RpcServer<Req, Resp>) {
    let (tx, rx) = channel::unbounded();
    (RpcClient { tx, one_way }, RpcServer { rx })
}

// The in-process channel RPC doubles as the byte-level transport backend:
// `Bytes → Bytes` instances implement the object-safe caller/responder
// traits that `ftc-core`'s typed control-plane wrappers are built on.

impl crate::transport::RpcCaller for RpcClient<bytes::Bytes, bytes::Bytes> {
    fn call_bytes(&self, req: bytes::Bytes, timeout: Duration) -> Result<bytes::Bytes, RpcError> {
        self.call(req, timeout)
    }

    fn with_delay(&self, one_way: Duration) -> Box<dyn crate::transport::RpcCaller> {
        Box::new(RpcClient::with_delay(self, one_way))
    }

    fn clone_caller(&self) -> Box<dyn crate::transport::RpcCaller> {
        Box::new(self.clone())
    }
}

impl crate::transport::RpcResponder for RpcServer<bytes::Bytes, bytes::Bytes> {
    fn serve_next_bytes(
        &mut self,
        timeout: Duration,
        handler: &mut dyn FnMut(bytes::Bytes) -> bytes::Bytes,
    ) -> Result<bool, RpcError> {
        self.serve_next(timeout, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn call_and_reply() {
        let (client, server) = rpc_pair::<u32, u32>(Duration::ZERO);
        let h = std::thread::spawn(move || {
            server
                .serve_next(Duration::from_secs(1), |x| x * 2)
                .unwrap()
        });
        let resp = client.call(21, Duration::from_secs(1)).unwrap();
        assert_eq!(resp, 42);
        assert!(h.join().unwrap());
    }

    #[test]
    fn wan_delay_is_paid_both_ways() {
        let one_way = Duration::from_millis(15);
        let (client, server) = rpc_pair::<(), ()>(one_way);
        std::thread::spawn(move || {
            let _ = server.serve_next(Duration::from_secs(1), |()| ());
        });
        let t0 = Instant::now();
        client.call((), Duration::from_secs(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn timeout_when_server_silent() {
        let (client, _server) = rpc_pair::<(), ()>(Duration::ZERO);
        let err = client.call((), Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn disconnect_when_server_dropped() {
        let (client, server) = rpc_pair::<(), ()>(Duration::ZERO);
        drop(server);
        let err = client.call((), Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RpcError::Disconnected);
    }

    #[test]
    fn server_sees_no_request_on_timeout() {
        let (_client, server) = rpc_pair::<(), ()>(Duration::ZERO);
        let served = server
            .serve_next(Duration::from_millis(5), |()| ())
            .unwrap();
        assert!(!served);
    }
}
