//! The threaded network substrate FTC runs on.
//!
//! The paper's testbed is a rack of servers joined by 10/40 GbE links. This
//! crate reproduces that environment in-process so the *protocol* behaves
//! identically while running on a single machine:
//!
//! * [`link`] — unidirectional byte-frame links with configurable latency,
//!   jitter, loss, reordering and bandwidth; built on crossbeam channels.
//! * [`reliable`] — the sequenced, NACK-based reliable delivery layer the
//!   paper assumes between replicas ("FTC uses sequence numbers, similar to
//!   TCP, to handle out-of-order deliveries and packet drops", §4.1).
//! * [`nic`] — a multi-queue NIC model with receive-side scaling by
//!   symmetric flow hash, so both directions of a flow reach the same
//!   worker thread (§2).
//! * [`server`] — fail-stop servers: named thread groups with a shared
//!   liveness token; killing a server stops its threads and drops its state.
//! * [`topology`] — named regions with an RTT matrix, reproducing the
//!   multi-region SAVI cloud used in the recovery evaluation (§7.5).
//! * [`rpc`] — a minimal request/response channel with injected WAN delay,
//!   used by the control plane (state fetch, heartbeats).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod nic;
pub mod reliable;
pub mod rpc;
pub mod server;
pub mod topology;

pub use link::{duplex, simplex, LinkConfig, LinkRx, LinkTx};
pub use reliable::{reliable_pair, ReliableReceiver, ReliableSender};
pub use server::{AliveToken, Server};
pub use topology::{RegionId, Topology};
