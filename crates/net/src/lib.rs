//! The network substrate FTC runs on.
//!
//! The paper's testbed is a rack of servers joined by 10/40 GbE links.
//! This crate provides that environment behind a backend-agnostic
//! [`transport`] abstraction with two interchangeable backends:
//!
//! * **In-process** — impaired crossbeam channels reproduce the testbed on
//!   a single machine, deterministically (seeded impairments), so the
//!   protocol model checker and audit harness can explore schedules.
//! * **Socket** ([`sock`]) — tokio TCP/UDS connections with length-prefixed
//!   framing and one multiplexed connection per peer pair, so a chain
//!   deploys as N OS processes (`ftc node`).
//!
//! Modules:
//!
//! * [`transport`] — the `Transport`/`FrameTx`/`FrameRx`/`RpcCaller`/
//!   `RpcResponder` trait surfaces plus [`Endpoint`]/[`PeerAddr`] naming;
//!   the one way to describe and configure a link.
//! * [`reliable`] — the sequenced, NACK-based reliable delivery layer the
//!   paper assumes between replicas ("FTC uses sequence numbers, similar to
//!   TCP, to handle out-of-order deliveries and packet drops", §4.1); runs
//!   over any `RawLink`.
//! * [`sock`] — the tokio TCP/UDS backend.
//! * [`nic`] — a multi-queue NIC model with receive-side scaling by
//!   symmetric flow hash, so both directions of a flow reach the same
//!   worker thread (§2).
//! * [`server`] — fail-stop servers: named thread groups with a shared
//!   liveness token; killing a server stops its threads and drops its state.
//! * [`topology`] — named regions with an RTT matrix, reproducing the
//!   multi-region SAVI cloud used in the recovery evaluation (§7.5).
//! * [`rpc`] — the in-process request/response channel with injected WAN
//!   delay, used by the control plane (state fetch, heartbeats).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod link;
pub mod nic;
pub mod reliable;
pub mod rpc;
pub mod server;
pub mod sock;
pub mod topology;
pub mod transport;

pub use reliable::{reliable_pair, reliable_pair_on, ReliableReceiver, ReliableSender};
pub use server::{AliveToken, Server};
pub use topology::{RegionId, Topology};
pub use transport::{
    Disconnected, Endpoint, FrameRx, FrameTx, InProcTransport, PeerAddr, RawLink, RpcCaller,
    RpcResponder, Transport,
};
