//! Multi-region topology with an RTT matrix (the SAVI cloud of §7.5).

use std::time::Duration;

/// Index of a region (datacenter) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub usize);

/// A set of named regions and the round-trip times between them.
#[derive(Debug, Clone)]
pub struct Topology {
    names: Vec<String>,
    /// rtt[a][b] — symmetric, zero diagonal.
    rtt: Vec<Vec<Duration>>,
    /// Multiplier applied to every delay, so tests can shrink WAN latencies
    /// without changing their ratios.
    scale: f64,
}

impl Topology {
    /// A single-region (rack-local) topology.
    pub fn single() -> Topology {
        Topology {
            names: vec!["local".into()],
            rtt: vec![vec![Duration::ZERO]],
            scale: 1.0,
        }
    }

    /// Builds a topology from region names and a symmetric RTT matrix.
    pub fn new(names: Vec<String>, rtt: Vec<Vec<Duration>>) -> Topology {
        assert_eq!(names.len(), rtt.len());
        for (i, row) in rtt.iter().enumerate() {
            assert_eq!(row.len(), names.len(), "matrix must be square");
            assert_eq!(row[i], Duration::ZERO, "diagonal must be zero");
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, rtt[j][i], "matrix must be symmetric");
            }
        }
        Topology {
            names,
            rtt,
            scale: 1.0,
        }
    }

    /// A topology modelled on the paper's distributed cloud: several
    /// Canadian regions with wide-area RTTs in the tens of milliseconds.
    pub fn savi_like() -> Topology {
        let ms = Duration::from_millis;
        Topology::new(
            vec![
                "core".into(),     // hosts the orchestrator
                "neighbor".into(), // close to core
                "remote".into(),   // across the country
                "far".into(),
            ],
            vec![
                vec![ms(0), ms(4), ms(48), ms(62)],
                vec![ms(4), ms(0), ms(44), ms(58)],
                vec![ms(48), ms(44), ms(0), ms(22)],
                vec![ms(62), ms(58), ms(22), ms(0)],
            ],
        )
    }

    /// Scales every delay (e.g. `0.1` to run WAN experiments 10× faster).
    pub fn scaled(mut self, scale: f64) -> Topology {
        assert!(scale >= 0.0);
        self.scale = scale;
        self
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.names.len()
    }

    /// Region name.
    pub fn name(&self, r: RegionId) -> &str {
        &self.names[r.0]
    }

    /// Scaled round-trip time between two regions.
    pub fn rtt(&self, a: RegionId, b: RegionId) -> Duration {
        self.rtt[a.0][b.0].mul_f64(self.scale)
    }

    /// Scaled one-way delay between two regions.
    pub fn one_way(&self, a: RegionId, b: RegionId) -> Duration {
        self.rtt(a, b) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_region_is_free() {
        let t = Topology::single();
        assert_eq!(t.rtt(RegionId(0), RegionId(0)), Duration::ZERO);
        assert_eq!(t.regions(), 1);
    }

    #[test]
    fn savi_like_is_symmetric_and_scaled() {
        let t = Topology::savi_like();
        let a = RegionId(0);
        let r = RegionId(2);
        assert_eq!(t.rtt(a, r), t.rtt(r, a));
        assert_eq!(t.rtt(a, r), Duration::from_millis(48));
        let fast = t.clone().scaled(0.25);
        assert_eq!(fast.rtt(a, r), Duration::from_millis(12));
        assert_eq!(fast.one_way(a, r), Duration::from_millis(6));
        assert_eq!(fast.name(r), "remote");
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        Topology::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Duration::ZERO, Duration::from_millis(1)],
                vec![Duration::from_millis(2), Duration::ZERO],
            ],
        );
    }
}
