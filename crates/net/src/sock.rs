//! The tokio TCP/UDS transport backend.
//!
//! Each OS process hosts one [`SockNode`]: a listener plus a set of
//! connections, each carrying any number of logical streams multiplexed by
//! the unified frame codec's `stream` field ([`ftc_packet::frame`]). A
//! [`SockTransport`] built over the node implements the same
//! [`Transport`] trait as the in-process backend, so a chain deploys as N
//! processes with zero changes above the transport layer.
//!
//! # Connection model
//!
//! * **One connection per peer pair.** The first stream opened toward a
//!   peer dials it; later streams share the cached connection. Each
//!   connection runs a reader task (decode frames, route to per-stream
//!   queues) and a writer task (drain a queue of pre-encoded frames).
//! * **Learned-source routing.** Listen-side endpoints (a reliable
//!   receiver's ACK/NACKs, an RPC responder's replies) do not dial; they
//!   answer on the connection that most recently delivered a frame for
//!   their stream. An ACK always follows a DATA frame and a response
//!   always follows a request, so the source is known by the time a reply
//!   is sent — even across a peer's reconnect.
//! * **Resets are loss.** A dead connection silently drops outbound frames
//!   (exactly like an impaired in-process link) while the send path
//!   redials with rate-limited backoff. The reliable layer's RTO/NACK
//!   machinery retransmits whatever the dead connection swallowed; nothing
//!   at the transport level resumes streams.
//! * **Dial retry/backoff.** Processes of a chain start in arbitrary
//!   order, so the initial (patient) dial retries with exponential backoff
//!   until the peer binds or the endpoint's `connect_timeout` budget is
//!   exhausted. Send-path (impatient) redials attempt at most one connect
//!   per `retry_backoff` interval.
//!
//! RPC rides the same connections: requests carry a correlation id in the
//! frame `seq` field, a per-caller dispatcher task pairs responses with
//! pending calls, and because correlation is per-frame the channel is
//! fully pipelined — concurrent callers share one connection without
//! head-of-line blocking at the protocol level.
//!
//! # Deterministic checking
//!
//! The same backend runs unmodified under the vendored tokio's [det
//! mode](tokio::det): [`PeerAddr::Sim`] endpoints ride in-memory
//! `tokio::sim` streams, every blocking wait in this module branches to a
//! cooperative det-executor wait (`det::block_until` / [`tokio::det::IdleWait`]),
//! and time flows through [`crate::clock`] (virtual under det mode). That
//! is what lets `ftc_audit::async_check` drive *this* code — reconnect,
//! demux, RPC correlation — through seeded interleaving × fault schedules
//! and replay any failure from a `(plan, seed)` witness.

use crate::clock;
use crate::transport::{
    Disconnected, Endpoint, FrameRx, FrameTx, PeerAddr, RawLink, RpcCaller, RpcResponder, SockOpts,
    Transport,
};
use crate::{ReliableReceiver, ReliableSender};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use ftc_packet::frame::{self, kind, Frame, FrameDecoder};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use tokio::det;
use tokio::net::{OwnedReadHalf, OwnedWriteHalf, TcpListener, TcpStream, UnixListener, UnixStream};
use tokio::runtime::Runtime;
use tokio::sim;
use tokio::sync::mpsc;

/// One live connection: a queue into the writer task plus liveness state.
struct Conn {
    out: mpsc::Sender<BytesMut>,
    cancel: Option<tokio::net::CancelHandle>,
    alive: AtomicBool,
}

impl Conn {
    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Queue a pre-encoded frame; `false` if the connection is dead (the
    /// frame is dropped — loss semantics).
    fn send(&self, frame: BytesMut) -> bool {
        self.is_alive() && self.out.try_send(frame).is_ok()
    }

    fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        if let Some(c) = &self.cancel {
            c.cancel();
        }
    }
}

/// Both halves of a stream's frame queue (MPMC so every handle clone of
/// either half stays live).
type StreamQueue = (Sender<Frame>, Receiver<Frame>);

/// Routes inbound frames to per-stream queues and remembers which
/// connection last delivered each stream (learned-source routing).
#[derive(Default)]
struct Router {
    queues: Mutex<HashMap<u16, StreamQueue>>,
    sources: Mutex<HashMap<u16, Weak<Conn>>>,
}

impl Router {
    fn queue_tx(&self, stream: u16) -> Sender<Frame> {
        self.queues
            .lock()
            .entry(stream)
            .or_insert_with(channel::unbounded)
            .0
            .clone()
    }

    fn queue_rx(&self, stream: u16) -> Receiver<Frame> {
        self.queues
            .lock()
            .entry(stream)
            .or_insert_with(channel::unbounded)
            .1
            .clone()
    }

    fn learn(&self, stream: u16, conn: &Arc<Conn>) {
        self.sources.lock().insert(stream, Arc::downgrade(conn));
    }

    fn source(&self, stream: u16) -> Option<Arc<Conn>> {
        self.sources
            .lock()
            .get(&stream)
            .and_then(Weak::upgrade)
            .filter(|c| c.is_alive())
    }
}

#[derive(Default)]
struct DialSlot {
    conn: Option<Arc<Conn>>,
    last_attempt: Option<Instant>,
}

struct Shared {
    rt: Runtime,
    local: PeerAddr,
    router: Router,
    dial: Mutex<HashMap<PeerAddr, DialSlot>>,
    /// Every connection ever adopted, for fault injection.
    conns: Mutex<Vec<Weak<Conn>>>,
}

impl Shared {
    /// Start reader + writer tasks for a freshly established connection.
    fn adopt(self: &Arc<Shared>, read: OwnedReadHalf, write: OwnedWriteHalf) -> Arc<Conn> {
        let (out_tx, out_rx) = mpsc::unbounded_channel::<BytesMut>();
        let conn = Arc::new(Conn {
            out: out_tx,
            cancel: read.cancel_handle().ok(),
            alive: AtomicBool::new(true),
        });
        self.conns.lock().push(Arc::downgrade(&conn));
        let _writer = self.rt.spawn(writer_task(write, out_rx, Arc::clone(&conn)));
        let _reader = self
            .rt
            .spawn(reader_task(read, Arc::clone(self), Arc::clone(&conn)));
        conn
    }

    fn connect_once(&self, addr: &PeerAddr) -> io::Result<(OwnedReadHalf, OwnedWriteHalf)> {
        match addr {
            PeerAddr::Tcp(a) => {
                let s = std::net::TcpStream::connect(a)?;
                let s = TcpStream::from_std(s)?;
                let _ = s.set_nodelay(true);
                Ok(s.into_split())
            }
            PeerAddr::Uds(p) => {
                let s = std::os::unix::net::UnixStream::connect(p)?;
                Ok(UnixStream::from_std(s)?.into_split())
            }
            PeerAddr::Sim(name) => Ok(sim::connect(name)?.into_split()),
        }
    }

    /// Return a live connection to `addr`, dialing if necessary.
    ///
    /// `patient` dials retry with exponential backoff up to the endpoint's
    /// `connect_timeout` (used at wiring time, when peers may not have
    /// bound yet); impatient dials (the send path, after a reset) attempt
    /// at most one connect per `retry_backoff` interval so a dead peer
    /// costs one cheap failed `connect` instead of a stall.
    fn dial(
        self: &Arc<Shared>,
        addr: &PeerAddr,
        opts: &SockOpts,
        patient: bool,
    ) -> Option<Arc<Conn>> {
        {
            let mut cache = self.dial.lock();
            let slot = cache.entry(addr.clone()).or_default();
            if let Some(conn) = &slot.conn {
                if conn.is_alive() {
                    return Some(Arc::clone(conn));
                }
            }
            if !patient {
                if let Some(t) = slot.last_attempt {
                    if clock::since(t) < opts.retry_backoff {
                        return None;
                    }
                }
            }
            slot.last_attempt = Some(clock::now());
        }
        // Connect without holding the cache lock; a concurrent dial to the
        // same peer may race us, in which case the last connection stored
        // wins and the loser is torn down by its peer's idle close — the
        // reliable layer tolerates either.
        let deadline = clock::now() + opts.connect_timeout;
        let mut backoff = opts.retry_backoff;
        loop {
            match self.connect_once(addr) {
                Ok((read, write)) => {
                    let conn = self.adopt(read, write);
                    // Preamble so packet captures identify the dialer.
                    let hello = frame::encode(kind::HELLO, 0, 0, self.local.to_string().as_bytes());
                    conn.send(hello);
                    let mut cache = self.dial.lock();
                    let slot = cache.entry(addr.clone()).or_default();
                    slot.conn = Some(Arc::clone(&conn));
                    slot.last_attempt = Some(clock::now());
                    return Some(conn);
                }
                Err(_) if patient && clock::now() + backoff < deadline => {
                    clock::block_sleep(backoff);
                    backoff = (backoff * 2).min(opts.max_backoff);
                }
                Err(_) => return None,
            }
        }
    }
}

async fn writer_task(mut write: OwnedWriteHalf, mut rx: mpsc::Receiver<BytesMut>, conn: Arc<Conn>) {
    while let Some(buf) = rx.recv().await {
        if write.write_all(buf.as_ref()).await.is_err() {
            conn.kill();
            break;
        }
    }
    let _ = write.shutdown().await;
}

async fn reader_task(mut read: OwnedReadHalf, shared: Arc<Shared>, conn: Arc<Conn>) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    // Per-connection caches so the router's locks are taken once per
    // stream, not once per frame.
    let mut queue_cache: HashMap<u16, Sender<Frame>> = HashMap::new();
    let mut learned: HashSet<u16> = HashSet::new();
    'conn: loop {
        let n = match read.read(&mut buf).await {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        dec.extend(&buf[..n]);
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => {
                    if f.kind == kind::HELLO {
                        continue;
                    }
                    if learned.insert(f.stream) {
                        shared.router.learn(f.stream, &conn);
                    }
                    let tx = queue_cache
                        .entry(f.stream)
                        .or_insert_with(|| shared.router.queue_tx(f.stream));
                    let _ = tx.send(f);
                    // Crossbeam queues are invisible to the det executor's
                    // progress tracking; a parked dispatcher task must be
                    // woken to see this frame. No-op outside det mode.
                    det::note_progress();
                }
                Ok(None) => break,
                // Corrupt stream: tear the connection down; the reliable
                // layer retransmits over a fresh one.
                Err(_) => break 'conn,
            }
        }
    }
    conn.kill();
}

/// A process-local socket hub: one listener plus the connections (dialed
/// and accepted) that this process's streams ride. Cheap to clone.
#[derive(Clone)]
pub struct SockNode {
    shared: Arc<Shared>,
}

impl SockNode {
    /// Bind a listener at `addr` and start accepting. For UDS a stale
    /// socket file from a previous run is removed first. For TCP, port 0
    /// binds an ephemeral port — read it back with [`local_addr`].
    ///
    /// [`local_addr`]: SockNode::local_addr
    pub fn bind(addr: &PeerAddr) -> io::Result<SockNode> {
        let rt = tokio::runtime::Builder::new_multi_thread()
            .enable_all()
            .build()?;
        enum Listener {
            Tcp(TcpListener),
            Uds(UnixListener),
            Sim(sim::SimListener),
        }
        let (listener, local) = match addr {
            PeerAddr::Tcp(a) => {
                let l = TcpListener::from_std(std::net::TcpListener::bind(a)?)?;
                let local = PeerAddr::Tcp(l.local_addr()?);
                (Listener::Tcp(l), local)
            }
            PeerAddr::Uds(p) => {
                let _ = std::fs::remove_file(p);
                let l = UnixListener::from_std(std::os::unix::net::UnixListener::bind(p)?)?;
                (Listener::Uds(l), addr.clone())
            }
            PeerAddr::Sim(name) => (Listener::Sim(sim::SimListener::bind(name)?), addr.clone()),
        };
        let shared = Arc::new(Shared {
            rt,
            local,
            router: Router::default(),
            dial: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let _accept = shared.rt.spawn(async move {
            loop {
                let halves = match &listener {
                    Listener::Tcp(l) => match l.accept().await {
                        Ok((s, _)) => {
                            let _ = s.set_nodelay(true);
                            s.into_split()
                        }
                        Err(_) => break,
                    },
                    Listener::Uds(l) => match l.accept().await {
                        Ok((s, _)) => s.into_split(),
                        Err(_) => break,
                    },
                    Listener::Sim(l) => match l.accept().await {
                        Ok((s, _)) => s.into_split(),
                        Err(_) => break,
                    },
                };
                accept_shared.adopt(halves.0, halves.1);
            }
        });
        Ok(SockNode { shared })
    }

    /// The bound listener address (resolves TCP port 0).
    pub fn local_addr(&self) -> &PeerAddr {
        &self.shared.local
    }

    /// Fault injection: hard-kill every connection (dialed and accepted),
    /// as if the network reset them. Streams recover via redial + the
    /// reliable layer's retransmission.
    pub fn kill_connections(&self) {
        for conn in self.shared.conns.lock().iter().filter_map(Weak::upgrade) {
            conn.kill();
        }
    }

    /// Drops every frame currently queued for `stream`, returning how many
    /// were discarded. Used when a fresh reliable endpoint is installed
    /// over an existing stream after a peer respawn: frames from the dead
    /// peer's epoch (stale data, acknowledgments for a retired sequence
    /// space) must not leak into the new endpoint's sequence space.
    pub fn drain_stream(&self, stream: u16) -> usize {
        let rx = self.shared.router.queue_rx(stream);
        let mut n = 0;
        while rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }
}

/// A raw frame link riding a [`SockNode`]: outbound frames go to the dialed
/// peer (or the learned source when `peer` is `None`), inbound frames pop
/// from the node's per-stream queue.
pub struct SockRawLink {
    shared: Arc<Shared>,
    peer: Option<(PeerAddr, SockOpts)>,
    stream: u16,
    rxq: Receiver<Frame>,
}

impl SockRawLink {
    fn new(node: &SockNode, peer: Option<(PeerAddr, SockOpts)>, stream: u16) -> SockRawLink {
        let rxq = node.shared.router.queue_rx(stream);
        SockRawLink {
            shared: Arc::clone(&node.shared),
            peer,
            stream,
            rxq,
        }
    }

    fn conn_for_send(&self) -> Option<Arc<Conn>> {
        match &self.peer {
            Some((addr, opts)) => self.shared.dial(addr, opts, false),
            None => self.shared.router.source(self.stream),
        }
    }
}

impl RawLink for SockRawLink {
    fn send_frame(&mut self, fkind: u8, seq: u64, payload: &[u8]) -> Result<(), Disconnected> {
        let buf = frame::encode(fkind, self.stream, seq, payload);
        if let Some(conn) = self.conn_for_send() {
            conn.send(buf);
        }
        // No connection = loss; the reliable layer retransmits.
        Ok(())
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Frame>, Disconnected> {
        if timeout.is_zero() {
            return match self.rxq.try_recv() {
                Ok(f) => Ok(Some(f)),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => Err(Disconnected),
            };
        }
        if det::active() {
            // Cooperative wait: run det-executor steps (reader/writer
            // tasks, virtual time) until a frame lands or the virtual
            // timeout passes. Never blocks the executor thread.
            let rxq = &self.rxq;
            return match det::block_until(Some(timeout), || match rxq.try_recv() {
                Ok(f) => Some(Ok(f)),
                Err(TryRecvError::Disconnected) => Some(Err(Disconnected)),
                Err(TryRecvError::Empty) => None,
            }) {
                Some(Ok(f)) => Ok(Some(f)),
                Some(Err(d)) => Err(d),
                None => Ok(None),
            };
        }
        match self.rxq.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Disconnected),
        }
    }

    fn stream(&self) -> u16 {
        self.stream
    }
}

struct RpcState {
    pending: Mutex<HashMap<u64, Sender<Bytes>>>,
    next_id: AtomicU64,
}

/// RPC client over a [`SockNode`]: correlation ids in the frame `seq`
/// field, a shared dispatcher task pairing responses to pending calls, so
/// concurrent callers pipeline over one connection.
pub struct SockRpcCaller {
    shared: Arc<Shared>,
    peer: (PeerAddr, SockOpts),
    stream: u16,
    state: Arc<RpcState>,
}

impl SockRpcCaller {
    fn new(node: &SockNode, peer: (PeerAddr, SockOpts), stream: u16) -> SockRpcCaller {
        let state = Arc::new(RpcState {
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        });
        let rxq = node.shared.router.queue_rx(stream);
        let weak = Arc::downgrade(&state);
        let _dispatch = node.shared.rt.spawn(async move {
            loop {
                // Exit once every caller clone is gone.
                let Some(state) = weak.upgrade() else { break };
                drop(state);
                let f = if det::active() {
                    // Det mode: an async task must not block in poll, so
                    // try_recv and park on activity-or-timer instead of
                    // the condvar-backed recv_timeout.
                    match rxq.try_recv() {
                        Ok(f) => f,
                        Err(TryRecvError::Empty) => {
                            det::idle_wait(Duration::from_millis(100)).await;
                            continue;
                        }
                        Err(TryRecvError::Disconnected) => break,
                    }
                } else {
                    // The non-det runtime is thread-per-task — this poll
                    // owns its thread and a bounded condvar wait is the
                    // cheapest wakeup; det mode takes the branch above.
                    // async-ok: blocking is the non-det execution model
                    match rxq.recv_timeout(Duration::from_millis(100)) {
                        Ok(f) => f,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                };
                if f.kind == kind::RPC_RESP {
                    if let Some(state) = weak.upgrade() {
                        if let Some(tx) = state.pending.lock().remove(&f.seq) {
                            let _ = tx.send(f.payload);
                            det::note_progress();
                        }
                    }
                }
            }
        });
        SockRpcCaller {
            shared: Arc::clone(&node.shared),
            peer,
            stream,
            state,
        }
    }
}

impl SockRpcCaller {
    /// Build a concrete caller over `node` toward `peer` (a socket
    /// endpoint), dispatcher task started. [`Transport::rpc_caller`] is the
    /// trait-object path; this constructor additionally exposes
    /// [`SockRpcCaller::call_start`] for pipelined calls driven from one
    /// thread (the async-transport checker's T2 property needs that).
    pub fn connect(node: &SockNode, peer: &Endpoint, stream: u16) -> SockRpcCaller {
        let parts = SockTransport::peer_parts(peer);
        let _ = node.shared.dial(&parts.0, &parts.1, true);
        SockRpcCaller::new(node, parts, stream)
    }

    /// Start a call without blocking: register the correlation id, encode
    /// the request, and attempt a first send. Drive the returned handle
    /// with [`PendingCall::try_complete`] — this is how concurrent calls
    /// pipeline over one connection from a single driver thread (the
    /// async-transport checker exercises exactly this path).
    pub fn call_start(&self, req: Bytes, timeout: Duration) -> PendingCall {
        let id = self.state.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.state.pending.lock().insert(id, tx);
        let wire = frame::encode(kind::RPC_REQ, self.stream, id, &req);
        let mut call = PendingCall {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&self.state),
            peer: self.peer.clone(),
            id,
            rx,
            wire,
            sent: false,
            deadline: clock::now() + timeout,
        };
        call.try_send();
        call
    }
}

/// An in-flight pipelined RPC call started by [`SockRpcCaller::call_start`].
/// Resolves at most once; drop it to abandon the call (the correlation-id
/// entry is cleaned up either way).
pub struct PendingCall {
    shared: Arc<Shared>,
    state: Arc<RpcState>,
    peer: (PeerAddr, SockOpts),
    id: u64,
    rx: Receiver<Bytes>,
    wire: BytesMut,
    sent: bool,
    deadline: Instant,
}

impl PendingCall {
    /// The correlation id carried in the request frame's `seq` field.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Hand the request to a live connection if that has not succeeded
    /// yet. Redials impatiently (rate-limited by the endpoint's
    /// `retry_backoff`), so a reset before the send costs a redial, not an
    /// error.
    fn try_send(&mut self) -> bool {
        if self.sent {
            return true;
        }
        self.sent = self
            .shared
            .dial(&self.peer.0, &self.peer.1, false)
            .map(|conn| conn.send(self.wire.clone()))
            .unwrap_or(false);
        self.sent
    }

    /// Non-blocking progress check: retries the send while unsent, then
    /// looks for the correlated response. `None` = still pending;
    /// `Some(Err(Timeout))` once the call budget is exhausted.
    pub fn try_complete(&mut self) -> Option<Result<Bytes, crate::rpc::RpcError>> {
        self.try_send();
        match self.rx.try_recv() {
            Ok(resp) => Some(Ok(resp)),
            Err(TryRecvError::Empty) if clock::now() < self.deadline => None,
            Err(_) => {
                self.state.pending.lock().remove(&self.id);
                Some(Err(crate::rpc::RpcError::Timeout))
            }
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        self.state.pending.lock().remove(&self.id);
    }
}

impl RpcCaller for SockRpcCaller {
    fn call_bytes(&self, req: Bytes, timeout: Duration) -> Result<Bytes, crate::rpc::RpcError> {
        let mut call = self.call_start(req, timeout);
        if det::active() {
            // Cooperative wait: det-executor steps run the dispatcher,
            // reader, and writer tasks while this call resolves.
            return det::block_until(Some(timeout), || call.try_complete())
                .unwrap_or(Err(crate::rpc::RpcError::Timeout));
        }
        // Keep trying to hand the request to a live connection until the
        // call budget runs out — a reset mid-call costs a redial, not an
        // error, as long as the peer comes back in time.
        while !call.sent {
            if Instant::now() + Duration::from_millis(5) >= call.deadline {
                return Err(crate::rpc::RpcError::Timeout);
            }
            clock::block_sleep(Duration::from_millis(5));
            call.try_send();
        }
        match call.rx.recv_deadline(call.deadline) {
            Ok(resp) => Ok(resp),
            Err(_) => Err(crate::rpc::RpcError::Timeout),
        }
    }

    fn with_delay(&self, _one_way: Duration) -> Box<dyn RpcCaller> {
        // Socket delays are real; simulated extra delay is an in-process
        // backend concept.
        self.clone_caller()
    }

    fn clone_caller(&self) -> Box<dyn RpcCaller> {
        Box::new(SockRpcCaller {
            shared: Arc::clone(&self.shared),
            peer: self.peer.clone(),
            stream: self.stream,
            state: Arc::clone(&self.state),
        })
    }
}

/// RPC responder over a [`SockNode`]: pops requests from the stream queue
/// and replies on the connection that delivered them.
pub struct SockRpcResponder {
    shared: Arc<Shared>,
    stream: u16,
    rxq: Receiver<Frame>,
}

impl RpcResponder for SockRpcResponder {
    fn serve_next_bytes(
        &mut self,
        timeout: Duration,
        handler: &mut dyn FnMut(Bytes) -> Bytes,
    ) -> Result<bool, crate::rpc::RpcError> {
        let deadline = clock::now() + timeout;
        loop {
            let next = if det::active() {
                // Cooperative pop: step the det executor until a frame for
                // this stream arrives or the (virtual) budget runs out.
                let rxq = &self.rxq;
                let budget = deadline.saturating_duration_since(clock::now());
                match det::block_until(Some(budget), || match rxq.try_recv() {
                    Ok(f) => Some(Ok(f)),
                    Err(TryRecvError::Disconnected) => Some(Err(())),
                    Err(TryRecvError::Empty) => None,
                }) {
                    Some(Ok(f)) => Ok(f),
                    Some(Err(())) => Err(RecvTimeoutError::Disconnected),
                    None => Err(RecvTimeoutError::Timeout),
                }
            } else {
                let budget = deadline.saturating_duration_since(Instant::now());
                self.rxq.recv_timeout(budget)
            };
            match next {
                Ok(f) if f.kind == kind::RPC_REQ => {
                    let resp = handler(f.payload);
                    if let Some(conn) = self.shared.router.source(self.stream) {
                        conn.send(frame::encode(kind::RPC_RESP, self.stream, f.seq, &resp));
                    }
                    return Ok(true);
                }
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => return Ok(false),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(crate::rpc::RpcError::Disconnected)
                }
            }
        }
    }
}

/// The socket [`Transport`]: wires frame links and RPC channels over a
/// process's [`SockNode`]. `peer` endpoints must be socket endpoints; the
/// `local` argument of `open_rx`/`rpc_responder` is unused (the node's
/// listener is the local side).
pub struct SockTransport {
    node: SockNode,
}

impl SockTransport {
    /// Build a transport over a bound node.
    pub fn new(node: SockNode) -> SockTransport {
        SockTransport { node }
    }

    /// The underlying node (e.g. for fault injection in tests).
    pub fn node(&self) -> &SockNode {
        &self.node
    }

    fn peer_parts(peer: &Endpoint) -> (PeerAddr, SockOpts) {
        let opts = peer.sock_opts();
        (opts.addr.clone(), opts.clone())
    }
}

impl Transport for SockTransport {
    fn open_tx(&self, peer: &Endpoint, stream: u16) -> Box<dyn FrameTx> {
        let parts = Self::peer_parts(peer);
        // Patient dial at wiring time: wait out peers that have not bound
        // yet. A failure here is not fatal — the send path keeps redialing.
        let _ = self.node.shared.dial(&parts.0, &parts.1, true);
        Box::new(ReliableSender::over(Box::new(SockRawLink::new(
            &self.node,
            Some(parts),
            stream,
        ))))
    }

    fn open_rx(&self, _local: &Endpoint, stream: u16) -> Box<dyn FrameRx> {
        Box::new(ReliableReceiver::over(Box::new(SockRawLink::new(
            &self.node, None, stream,
        ))))
    }

    fn rpc_caller(&self, peer: &Endpoint, stream: u16) -> Box<dyn RpcCaller> {
        let parts = Self::peer_parts(peer);
        let _ = self.node.shared.dial(&parts.0, &parts.1, true);
        Box::new(SockRpcCaller::new(&self.node, parts, stream))
    }

    fn rpc_responder(&self, _local: &Endpoint, stream: u16) -> Box<dyn RpcResponder> {
        Box::new(SockRpcResponder {
            shared: Arc::clone(&self.node.shared),
            stream,
            rxq: self.node.shared.router.queue_rx(stream),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uds_pair(tag: &str) -> (PeerAddr, PeerAddr) {
        let dir = std::env::temp_dir().join(format!("ftc-sock-test-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        (
            PeerAddr::Uds(dir.join("a.sock")),
            PeerAddr::Uds(dir.join("b.sock")),
        )
    }

    #[test]
    fn reliable_stream_over_uds() {
        let (addr_a, addr_b) = uds_pair("stream");
        let a = SockNode::bind(&addr_a).expect("bind a");
        let b = SockNode::bind(&addr_b).expect("bind b");
        let ta = SockTransport::new(a);
        let tb = SockTransport::new(b);
        let peer = Endpoint::sock(addr_b.clone());
        let mut tx = ta.open_tx(&peer, 7);
        let mut rx = tb.open_rx(&Endpoint::sock(addr_b), 7);
        for i in 0..200u32 {
            tx.send(BytesMut::from(&i.to_be_bytes()[..])).expect("send");
        }
        for i in 0..200u32 {
            let mut got = None;
            let deadline = Instant::now() + Duration::from_secs(5);
            while got.is_none() && Instant::now() < deadline {
                tx.poll().expect("poll");
                got = rx.recv_timeout(Duration::from_millis(20)).expect("recv");
            }
            let p = got.expect("delivered in time");
            assert_eq!(u32::from_be_bytes(p.as_ref().try_into().expect("4b")), i);
        }
    }

    #[test]
    fn rpc_over_tcp_pipelines_and_correlates() {
        let any = PeerAddr::parse("127.0.0.1:0").expect("addr");
        let a = SockNode::bind(&any).expect("bind a");
        let b = SockNode::bind(&any).expect("bind b");
        let b_addr = b.local_addr().clone();
        let ta = SockTransport::new(a);
        let tb = SockTransport::new(b);
        let caller = ta.rpc_caller(&Endpoint::sock(b_addr.clone()), 100);
        let mut responder = tb.rpc_responder(&Endpoint::sock(b_addr), 100);
        let server = std::thread::spawn(move || {
            let mut served = 0;
            while served < 8 {
                let ok = responder
                    .serve_next_bytes(Duration::from_secs(5), &mut |req| {
                        let mut out = BytesMut::from(req.as_slice());
                        out.extend_from_slice(b"-pong");
                        out.freeze()
                    })
                    .expect("serve");
                if ok {
                    served += 1;
                }
            }
        });
        let mut clients = Vec::new();
        for i in 0..8 {
            let c = caller.clone_caller();
            clients.push(std::thread::spawn(move || {
                let req = Bytes::copy_from_slice(format!("ping{i}").as_bytes());
                let resp = c.call_bytes(req, Duration::from_secs(5)).expect("call");
                assert_eq!(resp.as_slice(), format!("ping{i}-pong").as_bytes());
            }));
        }
        for c in clients {
            c.join().expect("client");
        }
        server.join().expect("server");
    }

    #[test]
    fn reset_recovers_via_redial_and_retransmit() {
        let (addr_a, addr_b) = uds_pair("reset");
        let a = SockNode::bind(&addr_a).expect("bind a");
        let b = SockNode::bind(&addr_b).expect("bind b");
        let ta = SockTransport::new(a);
        let tb = SockTransport::new(b);
        let mut tx = ta.open_tx(&Endpoint::sock(addr_b.clone()), 3);
        let mut rx = tb.open_rx(&Endpoint::sock(addr_b), 3);
        let n = 300u32;
        let mut got = Vec::new();
        for i in 0..n {
            tx.send(BytesMut::from(&i.to_be_bytes()[..])).expect("send");
            if i == 100 {
                // Hard-reset every connection mid-stream, both sides.
                ta.node().kill_connections();
                tb.node().kill_connections();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while got.len() < n as usize {
            assert!(
                Instant::now() < deadline,
                "no convergence after reset: {} of {n}",
                got.len()
            );
            tx.poll().expect("poll");
            while let Some(p) = rx.recv_timeout(Duration::from_millis(10)).expect("recv") {
                got.push(u32::from_be_bytes(p.as_ref().try_into().expect("4b")));
            }
        }
        let expect: Vec<u32> = (0..n).collect();
        assert_eq!(got, expect, "gapless in-order delivery across resets");
    }
}
