//! Sequenced reliable delivery over lossy raw links.
//!
//! The paper assumes reliable state transmission between servers: "for
//! reliable state transmission between servers, FTC uses sequence numbers,
//! similar to TCP, to handle out-of-order deliveries and packet drops
//! within the network" (§4.1), and "if a packet is lost, a replica requests
//! its predecessor to retransmit the piggyback log with the lost sequence
//! number" (§4.1). This module implements exactly that: a sender that
//! stamps transport sequence numbers and buffers unacknowledged frames; a
//! receiver that delivers in order, NACKs gaps, and acknowledges progress
//! so the sender can prune.
//!
//! Both halves run over any [`RawLink`] — the deterministic in-process
//! channel or a multiplexed socket stream — and speak the unified
//! [`ftc_packet::frame`] codec (DATA/ACK/NACK kinds), so the reliable
//! machinery is backend-agnostic and the wire bytes are identical across
//! backends. The same machinery that masks simulated loss also recovers
//! from socket resets: a torn connection degrades into silent frame loss
//! while the backend redials, and the RTO/NACK path retransmits whatever
//! the dead connection swallowed.

use crate::transport::{Disconnected, Endpoint, FrameRx, FrameTx, RawLink};
use bytes::BytesMut;
use ftc_packet::frame::kind;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How often the receiver acknowledges cumulative progress.
const ACK_EVERY: u64 = 32;
/// Sender retransmission timeout for unacknowledged frames.
const DEFAULT_RTO: Duration = Duration::from_millis(5);

/// Statistics for a reliable channel endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames sent (first transmissions).
    pub sent: u64,
    /// Frames retransmitted (NACK- or RTO-triggered).
    pub retransmits: u64,
    /// Frames delivered in order to the application.
    pub delivered: u64,
    /// Duplicate frames discarded.
    pub duplicates: u64,
    /// NACKs sent (receiver) or honoured (sender).
    pub nacks: u64,
}

/// Sending endpoint of a reliable channel.
pub struct ReliableSender {
    link: Box<dyn RawLink>,
    next_seq: u64,
    /// seq → (payload, last transmission time); pruned by cumulative ACKs.
    unacked: BTreeMap<u64, (BytesMut, Instant)>,
    rto: Duration,
    /// Statistics.
    pub stats: ReliableStats,
}

impl ReliableSender {
    /// Wraps a raw link in the sending half of a reliable channel.
    pub fn over(link: Box<dyn RawLink>) -> ReliableSender {
        ReliableSender {
            link,
            next_seq: 0,
            unacked: BTreeMap::new(),
            rto: DEFAULT_RTO,
            stats: ReliableStats::default(),
        }
    }

    /// Sends a payload with the next sequence number.
    pub fn send(&mut self, payload: BytesMut) -> Result<(), Disconnected> {
        self.process_control()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.link.send_frame(kind::DATA, seq, &payload)?;
        self.unacked.insert(seq, (payload, crate::clock::now()));
        self.stats.sent += 1;
        Ok(())
    }

    /// Handles incoming ACK/NACK control frames and performs RTO-based
    /// retransmission. Call periodically (e.g. on idle).
    pub fn poll(&mut self) -> Result<(), Disconnected> {
        self.process_control()?;
        let now = crate::clock::now();
        let mut due: Vec<u64> = Vec::new();
        for (&seq, (_, last)) in &self.unacked {
            if now.duration_since(*last) >= self.rto {
                due.push(seq);
            }
        }
        // Bug fixture for the async-transport model checker: the moment a
        // retransmission comes due, forget the resend queue instead. Any
        // frame whose first transmission was swallowed by a reset is then
        // acknowledged-by-nobody and never delivered — the checker's T3
        // property must catch this with a replayable witness.
        #[cfg(feature = "sabotage-drop-resend")]
        if !due.is_empty() {
            self.unacked.clear();
            return Ok(());
        }
        for seq in due {
            self.retransmit(seq)?;
        }
        Ok(())
    }

    /// Number of frames awaiting acknowledgment.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    fn process_control(&mut self) -> Result<(), Disconnected> {
        while let Some(frame) = self.link.try_recv_frame()? {
            match frame.kind {
                kind::ACK => {
                    // Cumulative: everything < seq received.
                    self.unacked = self.unacked.split_off(&frame.seq);
                }
                kind::NACK => {
                    self.stats.nacks += 1;
                    self.retransmit(frame.seq)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn retransmit(&mut self, seq: u64) -> Result<(), Disconnected> {
        if let Some((payload, last)) = self.unacked.get_mut(&seq) {
            *last = crate::clock::now();
            self.stats.retransmits += 1;
            self.link.send_frame(kind::DATA, seq, payload)?;
        }
        Ok(())
    }
}

impl FrameTx for ReliableSender {
    fn send(&mut self, payload: BytesMut) -> Result<(), Disconnected> {
        ReliableSender::send(self, payload)
    }

    fn poll(&mut self) -> Result<(), Disconnected> {
        ReliableSender::poll(self)
    }

    fn in_flight(&self) -> usize {
        self.unacked_len()
    }
}

/// Receiving endpoint of a reliable channel.
pub struct ReliableReceiver {
    link: Box<dyn RawLink>,
    /// Next expected sequence number.
    expected: u64,
    /// Out-of-order frames waiting for the gap to fill.
    ooo: BTreeMap<u64, BytesMut>,
    /// In-order frames ready for the application.
    ready: std::collections::VecDeque<BytesMut>,
    /// Sequences we have NACKed and when, to avoid NACK storms.
    nacked: BTreeMap<u64, Instant>,
    /// Statistics.
    pub stats: ReliableStats,
}

impl ReliableReceiver {
    /// Wraps a raw link in the receiving half of a reliable channel.
    pub fn over(link: Box<dyn RawLink>) -> ReliableReceiver {
        ReliableReceiver {
            link,
            expected: 0,
            ooo: BTreeMap::new(),
            ready: std::collections::VecDeque::new(),
            nacked: BTreeMap::new(),
            stats: ReliableStats::default(),
        }
    }

    /// Receives the next in-order payload, waiting up to `timeout`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<BytesMut>, Disconnected> {
        let deadline = crate::clock::now() + timeout;
        loop {
            if let Some(p) = self.ready.pop_front() {
                return Ok(Some(p));
            }
            let now = crate::clock::now();
            let budget = deadline.saturating_duration_since(now);
            match self.link.recv_frame(budget)? {
                Some(frame) => self.ingest(frame.kind, frame.seq, &frame.payload)?,
                None => return Ok(None),
            }
        }
    }

    /// Number of out-of-order frames parked.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }

    fn ingest(&mut self, fkind: u8, seq: u64, payload: &[u8]) -> Result<(), Disconnected> {
        if fkind != kind::DATA {
            return Ok(());
        }
        if seq < self.expected || self.ooo.contains_key(&seq) {
            self.stats.duplicates += 1;
            // A duplicate means the sender has not seen our progress (its
            // RTO fired). Re-acknowledge immediately, otherwise a burst
            // that ends short of the next ACK_EVERY boundary is
            // retransmitted forever on an idle link.
            self.link.send_frame(kind::ACK, self.expected, &[])?;
            return Ok(());
        }
        self.ooo.insert(seq, BytesMut::from(payload));
        // Deliver the contiguous prefix.
        while let Some(p) = self.ooo.remove(&self.expected) {
            self.ready.push_back(p);
            self.nacked.remove(&self.expected);
            self.expected += 1;
            self.stats.delivered += 1;
            if self.expected.is_multiple_of(ACK_EVERY) {
                self.link.send_frame(kind::ACK, self.expected, &[])?;
            }
        }
        // NACK any remaining gap ("request the predecessor to retransmit").
        if let Some((&first_ooo, _)) = self.ooo.iter().next() {
            let now = crate::clock::now();
            for missing in self.expected..first_ooo {
                let stale = self
                    .nacked
                    .get(&missing)
                    .is_none_or(|t| now.duration_since(*t) > DEFAULT_RTO);
                if stale {
                    self.nacked.insert(missing, now);
                    self.stats.nacks += 1;
                    self.link.send_frame(kind::NACK, missing, &[])?;
                }
            }
        }
        Ok(())
    }
}

impl FrameRx for ReliableReceiver {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<BytesMut>, Disconnected> {
        ReliableReceiver::recv_timeout(self, timeout)
    }
}

/// Creates a reliable channel over an in-process duplex link described by
/// `ep` (stream id 0). Socket-backed channels are wired through
/// [`crate::sock::SockTransport`] instead.
pub fn reliable_pair(ep: &Endpoint) -> (ReliableSender, ReliableReceiver) {
    reliable_pair_on(ep, 0)
}

/// Like [`reliable_pair`], tagging frames with an explicit stream id so
/// tests can compare wire bytes against a socket backend's stream.
pub fn reliable_pair_on(ep: &Endpoint, stream: u16) -> (ReliableSender, ReliableReceiver) {
    let (a, b) = crate::transport::raw_pair(ep, stream);
    (
        ReliableSender::over(Box::new(a)),
        ReliableReceiver::over(Box::new(b)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u32) -> BytesMut {
        BytesMut::from(&i.to_be_bytes()[..])
    }

    fn read_u32(b: &[u8]) -> u32 {
        u32::from_be_bytes(b[..4].try_into().unwrap())
    }

    #[test]
    fn in_order_delivery_over_ideal_link() {
        let (mut tx, mut rx) = reliable_pair(&Endpoint::in_proc());
        for i in 0..100 {
            tx.send(payload(i)).unwrap();
        }
        for i in 0..100 {
            let p = rx
                .recv_timeout(Duration::from_millis(100))
                .unwrap()
                .unwrap();
            assert_eq!(read_u32(&p), i);
        }
        assert_eq!(rx.stats.delivered, 100);
        assert_eq!(rx.stats.nacks, 0);
    }

    #[test]
    fn recovers_from_heavy_loss_and_reorder() {
        let (mut tx, mut rx) = reliable_pair(&Endpoint::lossy(0.25, 0.2, 99));
        let n = 400u32;
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut sent = 0;
        while got.len() < n as usize {
            assert!(
                Instant::now() < deadline,
                "did not converge: {} of {n}",
                got.len()
            );
            if sent < n {
                tx.send(payload(sent)).unwrap();
                sent += 1;
            }
            tx.poll().unwrap();
            while let Some(p) = rx.recv_timeout(Duration::from_micros(200)).unwrap() {
                got.push(read_u32(&p));
            }
        }
        let expect: Vec<u32> = (0..n).collect();
        assert_eq!(got, expect, "delivery must be gapless and in order");
        assert!(
            tx.stats.retransmits > 0,
            "loss must have caused retransmits"
        );
    }

    #[test]
    fn acks_prune_sender_buffer() {
        let (mut tx, mut rx) = reliable_pair(&Endpoint::in_proc());
        let n = 4 * ACK_EVERY as u32;
        for i in 0..n {
            tx.send(payload(i)).unwrap();
        }
        for _ in 0..n {
            rx.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        }
        tx.poll().unwrap();
        assert!(
            (tx.unacked_len() as u64) < ACK_EVERY + 1,
            "unacked {} not pruned",
            tx.unacked_len()
        );
    }

    #[test]
    fn idle_tail_window_stops_retransmitting() {
        // Regression: a burst smaller than ACK_EVERY used to retransmit
        // forever on an idle link because the receiver only ACKed at
        // 32-boundaries; duplicates now trigger an immediate re-ACK.
        let (mut tx, mut rx) = reliable_pair(&Endpoint::in_proc());
        for i in 0..5u32 {
            tx.send(BytesMut::from(&i.to_be_bytes()[..])).unwrap();
        }
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        }
        // First RTO: the sender retransmits the unACKed tail once…
        std::thread::sleep(DEFAULT_RTO + Duration::from_millis(1));
        tx.poll().unwrap();
        // …the receiver re-ACKs on the duplicates…
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        // …and after the ACK lands the sender's buffer is empty: further
        // polls retransmit nothing.
        tx.poll().unwrap();
        assert_eq!(tx.unacked_len(), 0, "tail window must be pruned");
        let before = tx.stats.retransmits;
        std::thread::sleep(DEFAULT_RTO + Duration::from_millis(1));
        tx.poll().unwrap();
        assert_eq!(tx.stats.retransmits, before, "no further retransmissions");
    }

    #[test]
    fn duplicates_are_discarded() {
        // Force duplicates via RTO retransmission on a slow-ACK path.
        let (mut tx, mut rx) = reliable_pair(&Endpoint::in_proc());
        tx.send(payload(1)).unwrap();
        std::thread::sleep(DEFAULT_RTO + Duration::from_millis(1));
        tx.poll().unwrap(); // retransmits seq 0
        let p = rx.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(read_u32(&p), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        assert_eq!(rx.stats.duplicates, 1);
        assert_eq!(rx.stats.delivered, 1);
    }
}
