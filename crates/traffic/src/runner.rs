//! Traffic drivers over any [`ChainSystem`].

use crate::workload::{Workload, WorkloadConfig};
use crate::Histogram;
use ftc_core::ChainSystem;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Result of a maximum-throughput (closed-loop) run.
#[derive(Debug, Clone, Serialize)]
pub struct ClosedLoopReport {
    /// Wall-clock duration of the run.
    pub elapsed_s: f64,
    /// Packets injected.
    pub sent: u64,
    /// Packets received at egress.
    pub received: u64,
    /// Achieved throughput in packets/s.
    pub pps: f64,
    /// Per-second received counts (the paper reports the average of
    /// per-second maxima over a 10 s interval).
    pub per_second: Vec<u64>,
}

/// Result of a fixed-offered-rate (open-loop) run.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopReport {
    /// Offered load in packets/s.
    pub offered_pps: f64,
    /// Achieved egress rate in packets/s.
    pub achieved_pps: f64,
    /// Packets injected.
    pub sent: u64,
    /// Packets received.
    pub received: u64,
    /// End-to-end latency distribution.
    #[serde(skip)]
    pub latency: Histogram,
}

/// Drives workloads through chain systems.
pub struct TrafficRunner {
    cfg: WorkloadConfig,
}

impl TrafficRunner {
    /// Creates a runner with the given workload shape.
    pub fn new(cfg: WorkloadConfig) -> TrafficRunner {
        TrafficRunner { cfg }
    }

    /// Closed-loop run: keep up to `window` packets in flight for
    /// `duration`, then drain. Measures sustainable throughput.
    pub fn closed_loop(
        &self,
        system: &dyn ChainSystem,
        window: usize,
        duration: Duration,
    ) -> ClosedLoopReport {
        let mut wl = Workload::new(self.cfg.clone());
        let start = Instant::now();
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut in_flight = 0usize;
        let mut per_second = Vec::new();
        let mut this_second = 0u64;
        let mut second_mark = start + Duration::from_secs(1);

        while start.elapsed() < duration {
            while in_flight < window {
                system.inject_pkt(wl.next_packet());
                sent += 1;
                in_flight += 1;
            }
            while let Some(_p) = system.egress_pkt(Duration::from_micros(200)) {
                received += 1;
                this_second += 1;
                in_flight = in_flight.saturating_sub(1);
                if in_flight >= window {
                    break;
                }
            }
            let now = Instant::now();
            if now >= second_mark {
                per_second.push(this_second);
                this_second = 0;
                second_mark = now + Duration::from_secs(1);
            }
        }
        // Drain what is still in flight (bounded wait).
        let drain_deadline = Instant::now() + Duration::from_secs(2);
        while in_flight > 0 && Instant::now() < drain_deadline {
            if system.egress_pkt(Duration::from_millis(5)).is_some() {
                received += 1;
                this_second += 1;
                in_flight -= 1;
            }
        }
        if this_second > 0 {
            per_second.push(this_second);
        }
        let elapsed = start.elapsed().as_secs_f64();
        ClosedLoopReport {
            elapsed_s: elapsed,
            sent,
            received,
            pps: received as f64 / elapsed,
            per_second,
        }
    }

    /// Open-loop run at `rate_pps` for `duration`; records end-to-end
    /// latency of every received packet.
    pub fn open_loop(
        &self,
        system: &dyn ChainSystem,
        rate_pps: f64,
        duration: Duration,
    ) -> OpenLoopReport {
        assert!(rate_pps > 0.0);
        let mut wl = Workload::new(self.cfg.clone());
        let epoch = wl.epoch();
        let gap = Duration::from_secs_f64(1.0 / rate_pps);
        let start = Instant::now();
        let mut next_send = start;
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut latency = Histogram::new();

        while start.elapsed() < duration {
            let now = Instant::now();
            if now >= next_send {
                system.inject_pkt(wl.next_packet());
                sent += 1;
                next_send += gap;
                // If we fell far behind (scheduling hiccup), resynchronize
                // instead of bursting unboundedly.
                if now > next_send + Duration::from_millis(5) {
                    next_send = now + gap;
                }
            }
            let wait = next_send.saturating_duration_since(Instant::now());
            if let Some(p) = system.egress_pkt(wait.min(Duration::from_micros(500))) {
                if let Some(lat) = Workload::decode_latency(epoch, &p) {
                    latency.record(lat);
                }
                received += 1;
            }
        }
        // Drain.
        let drain_deadline = Instant::now() + Duration::from_secs(1);
        while Instant::now() < drain_deadline {
            match system.egress_pkt(Duration::from_millis(2)) {
                Some(p) => {
                    if let Some(lat) = Workload::decode_latency(epoch, &p) {
                        latency.record(lat);
                    }
                    received += 1;
                }
                None => break,
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        OpenLoopReport {
            offered_pps: rate_pps,
            achieved_pps: received as f64 / elapsed,
            sent,
            received,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::config::ChainConfig;
    use ftc_core::FtcChain;
    use ftc_mbox::MbSpec;

    fn small_chain() -> FtcChain {
        FtcChain::deploy(
            ChainConfig::new(vec![
                MbSpec::Monitor { sharing_level: 1 },
                MbSpec::Monitor { sharing_level: 1 },
            ])
            .with_f(1),
        )
    }

    #[test]
    fn closed_loop_reports_throughput() {
        let chain = small_chain();
        let runner = TrafficRunner::new(WorkloadConfig::default());
        let report = runner.closed_loop(&chain, 32, Duration::from_millis(500));
        assert!(report.sent > 0);
        assert!(report.received > 0, "closed loop must make progress");
        assert!(report.pps > 0.0);
        assert!(report.received <= report.sent);
    }

    #[test]
    fn open_loop_measures_latency() {
        let chain = small_chain();
        let runner = TrafficRunner::new(WorkloadConfig::default());
        let report = runner.open_loop(&chain, 2_000.0, Duration::from_millis(500));
        assert!(report.received > 0);
        assert!(!report.latency.is_empty());
        let mean = report.latency.mean().unwrap();
        assert!(mean > Duration::ZERO && mean < Duration::from_secs(1));
    }
}
