//! Re-export of the shared latency histogram.
//!
//! The log-bucketed histogram moved to [`ftc_core::hist`] so the chain's
//! own metrics (Table-2 stages) and the traffic generators (Fig-11 CDFs)
//! share one implementation. This module remains so existing
//! `ftc_traffic::Histogram` paths keep working.

pub use ftc_core::hist::Histogram;
