//! Summary statistics across repeated measurements.
//!
//! The paper reports "the average of maximum throughput values measured
//! every second in a 10 second interval" and averages hundreds of latency
//! samples; these helpers compute those aggregates plus confidence
//! intervals for the multi-trial cloud experiments (§7.1, [4]).

use serde::Serialize;

/// Mean, standard deviation and a 95% normal-approximation confidence
/// half-width over a set of samples.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// 95% confidence half-width (1.96 σ/√n).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a slice of samples. Returns `None` for an empty slice.
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let ci95 = 1.96 * stddev / (n as f64).sqrt();
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        stddev,
        ci95,
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[4.0]).unwrap();
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (4.0, 4.0));
    }

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935299395).abs() < 1e-9);
        assert_eq!((s.min, s.max), (2.0, 9.0));
        assert!(s.ci95 > 0.0);
    }
}
