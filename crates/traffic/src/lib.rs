//! Traffic generation and measurement (the MoonGen/pktgen role, §7.1).
//!
//! * [`workload`] — flow-oriented packet generation: configurable flow
//!   counts, packet sizes, and flow popularity (uniform or zipf), with
//!   timestamps embedded in payloads for end-to-end latency measurement.
//! * [`histogram`] — a log-bucketed latency histogram with percentile
//!   extraction (mean/median/p99/CDF), implemented in-repo to stay within
//!   the offline dependency set.
//! * [`stats`] — summary statistics across repeated runs.
//! * [`runner`] — open-loop (fixed offered rate) and closed-loop (maximum
//!   throughput) drivers over any [`ftc_core::ChainSystem`], reporting the
//!   paper's quantities: Mpps achieved and per-packet latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod runner;
pub mod stats;
pub mod workload;

pub use histogram::Histogram;
pub use runner::{ClosedLoopReport, OpenLoopReport, TrafficRunner};
pub use workload::{FlowMix, Workload, WorkloadConfig};
