//! Traffic generation and measurement (the MoonGen/pktgen role, §7.1).
//!
//! * [`workload`] — flow-oriented packet generation: configurable flow
//!   counts, packet sizes, and flow popularity (uniform or zipf), with
//!   timestamps embedded in payloads for end-to-end latency measurement.
//! * [`Histogram`] (re-exported from [`ftc_core::hist`]) — a log-bucketed
//!   latency histogram with percentile extraction (mean/median/p99/CDF).
//! * [`stats`] — summary statistics across repeated runs.
//! * [`runner`] — open-loop (fixed offered rate) and closed-loop (maximum
//!   throughput) drivers over any [`ftc_core::ChainSystem`], reporting the
//!   paper's quantities: Mpps achieved and per-packet latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod stats;
pub mod workload;

pub use ftc_core::hist::Histogram;
pub use runner::{ClosedLoopReport, OpenLoopReport, TrafficRunner};
pub use workload::{FlowMix, Workload, WorkloadConfig};
