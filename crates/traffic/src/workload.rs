//! Flow-oriented workload generation.
//!
//! Packets carry a generator timestamp in the first payload bytes so the
//! sink can compute end-to-end latency, the way hardware generators stamp
//! packets (MoonGen, §7.1).

use bytes::BytesMut;
use ftc_packet::builder::UdpPacketBuilder;
use ftc_packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::time::Instant;

/// How flows are selected per packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowMix {
    /// Round-robin across flows (uniform).
    Uniform,
    /// Zipf-distributed flow popularity with the given exponent.
    Zipf(f64),
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of distinct flows.
    pub flows: usize,
    /// Total frame size in bytes (Ethernet..payload; the paper's default is
    /// 256 B, §7.1).
    pub frame_len: usize,
    /// Flow selection.
    pub mix: FlowMix,
    /// RNG seed.
    pub seed: u64,
    /// Whether frames reserve the FTC IP option (required for FTC chains,
    /// harmless for baselines).
    pub ftc_option: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            flows: 64,
            frame_len: 256,
            mix: FlowMix::Uniform,
            seed: 1,
            ftc_option: true,
        }
    }
}

/// Offset of the 8-byte timestamp within the UDP payload.
const TS_OFFSET: usize = 0;

/// A packet workload generator.
pub struct Workload {
    cfg: WorkloadConfig,
    templates: Vec<Packet>,
    rng: StdRng,
    counter: u64,
    epoch: Instant,
    zipf_cdf: Vec<f64>,
}

impl Workload {
    /// Creates a generator; templates are prebuilt per flow so per-packet
    /// cost is a copy + timestamp.
    pub fn new(cfg: WorkloadConfig) -> Workload {
        assert!(cfg.flows >= 1);
        let mut templates = Vec::with_capacity(cfg.flows);
        for fl in 0..cfg.flows {
            let b = UdpPacketBuilder::new()
                .src(
                    Ipv4Addr::new(10, 1, (fl >> 8) as u8, fl as u8),
                    10_000 + (fl % 40_000) as u16,
                )
                .dst(Ipv4Addr::new(10, 200, 0, 1), 80)
                .frame_len(cfg.frame_len);
            let b = if cfg.ftc_option {
                b
            } else {
                b.without_ftc_option()
            };
            templates.push(b.build());
        }
        let zipf_cdf = match cfg.mix {
            FlowMix::Zipf(s) => {
                let mut weights: Vec<f64> =
                    (1..=cfg.flows).map(|r| 1.0 / (r as f64).powf(s)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
            FlowMix::Uniform => Vec::new(),
        };
        Workload {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            templates,
            counter: 0,
            epoch: Instant::now(),
            zipf_cdf,
        }
    }

    /// The generator's epoch; latency decoding needs it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Produces the next packet, stamped with the current time.
    pub fn next_packet(&mut self) -> Packet {
        let flow = match self.cfg.mix {
            FlowMix::Uniform => (self.counter % self.cfg.flows as u64) as usize,
            FlowMix::Zipf(_) => {
                let u: f64 = self.rng.gen();
                self.zipf_cdf
                    .partition_point(|&c| c < u)
                    .min(self.cfg.flows - 1)
            }
        };
        self.counter += 1;
        let mut data = BytesMut::from(self.templates[flow].bytes());
        let ts = self.epoch.elapsed().as_nanos() as u64;
        let payload_off = self.payload_offset();
        data[payload_off + TS_OFFSET..payload_off + TS_OFFSET + 8]
            .copy_from_slice(&ts.to_be_bytes());
        Packet::from_frame_unchecked(data)
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.counter
    }

    fn payload_offset(&self) -> usize {
        ftc_packet::ether::HEADER_LEN
            + if self.cfg.ftc_option {
                ftc_packet::ip::MIN_HEADER_LEN + ftc_packet::ip::OPTION_FTC_LEN
            } else {
                ftc_packet::ip::MIN_HEADER_LEN
            }
            + ftc_packet::l4::UDP_HEADER_LEN
    }

    /// Reads the embedded timestamp out of a received packet and returns
    /// the elapsed latency relative to `epoch`, if decodable.
    pub fn decode_latency(epoch: Instant, pkt: &Packet) -> Option<std::time::Duration> {
        let l4 = pkt.l4().ok()?;
        let payload = l4.get(ftc_packet::l4::UDP_HEADER_LEN..)?;
        let ts = u64::from_be_bytes(payload.get(TS_OFFSET..TS_OFFSET + 8)?.try_into().ok()?);
        let now = epoch.elapsed().as_nanos() as u64;
        Some(std::time::Duration::from_nanos(now.saturating_sub(ts)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn packets_are_valid_and_sized() {
        let mut w = Workload::new(WorkloadConfig {
            frame_len: 256,
            ..Default::default()
        });
        let p = w.next_packet();
        assert_eq!(p.wire_len(), 256);
        p.ipv4().unwrap().verify_checksum().unwrap();
        assert!(p.flow_key().is_ok());
    }

    #[test]
    fn uniform_mix_cycles_flows() {
        let mut w = Workload::new(WorkloadConfig {
            flows: 4,
            ..Default::default()
        });
        let mut seen = HashMap::new();
        for _ in 0..40 {
            let p = w.next_packet();
            *seen.entry(p.flow_key().unwrap()).or_insert(0) += 1;
        }
        assert_eq!(seen.len(), 4);
        assert!(seen.values().all(|&c| c == 10));
    }

    #[test]
    fn zipf_mix_skews_towards_head_flows() {
        let mut w = Workload::new(WorkloadConfig {
            flows: 50,
            mix: FlowMix::Zipf(1.2),
            seed: 7,
            ..Default::default()
        });
        let mut counts: HashMap<u16, u32> = HashMap::new();
        for _ in 0..5000 {
            let p = w.next_packet();
            *counts.entry(p.flow_key().unwrap().src_port).or_insert(0) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = 5000 / counts.len() as u32;
        assert!(
            max > mean * 3,
            "zipf head flow must dominate: max={max} mean={mean}"
        );
    }

    #[test]
    fn latency_roundtrip() {
        let mut w = Workload::new(WorkloadConfig::default());
        let epoch = w.epoch();
        let p = w.next_packet();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let lat = Workload::decode_latency(epoch, &p).unwrap();
        assert!(lat >= std::time::Duration::from_millis(5));
        assert!(lat < std::time::Duration::from_secs(1));
    }

    #[test]
    fn latency_survives_piggyback_attach_detach() {
        let mut w = Workload::new(WorkloadConfig::default());
        let epoch = w.epoch();
        let mut p = w.next_packet();
        p.attach_piggyback(&ftc_packet::PiggybackMessage::default())
            .unwrap();
        p.detach_piggyback().unwrap();
        assert!(Workload::decode_latency(epoch, &p).is_some());
    }
}
