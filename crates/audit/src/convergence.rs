//! Replica-convergence checking by adversarial replay.
//!
//! Paper §4.3 claims that replicas applying piggyback logs under the
//! `MAX`-vector partial-order rule converge to the head's state no matter
//! how the network reorders log delivery. This module checks that claim
//! mechanically: it replays a recorded history into fresh replica stores
//! under many adversarial delivery orders and diffs every final
//! [`StoreSnapshot`] against the primary's.
//!
//! Two delivery modes alternate across schedules, covering both replica
//! implementations:
//!
//! * **offer** — every log is delivered exactly once in a (seeded) random
//!   permutation; out-of-order logs park inside the [`MaxVector`] and are
//!   drained when their dependencies arrive. Any permutation thus induces
//!   a dep-respecting application order.
//! * **try-apply** — the checker repeatedly sweeps the not-yet-applied
//!   logs in shuffled order and applies whichever are `Ready`, modelling
//!   replicas that park whole packets and retry. Each sweep order is a
//!   random linear extension of the dependency partial order.
//!
//! Schedule 0 is the exact reverse of the recorded commit order — the
//! most adversarial FIFO-breaking delivery.
//!
//! Replays start from empty stores, so the history must have been
//! recorded from a fresh store (all partition sequences starting at 0);
//! a history with a non-zero base stalls and is reported as divergent.

use crate::history::History;
use bytes::Bytes;
use ftc_stm::{Applicability, MaxVector, StateStore, StoreSnapshot};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Outcome of [`replay`] / [`replay_against`].
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Number of adversarial schedules replayed.
    pub schedules: usize,
    /// Number of logs in the replayed history.
    pub logs: usize,
    /// Human-readable description of every divergence found (empty =
    /// every schedule converged to the primary state).
    pub divergences: Vec<String>,
}

impl ConvergenceReport {
    /// True iff every schedule converged.
    pub fn converged(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Replays `history` under `schedules` adversarial orders and checks that
/// each converges to `primary` (the head store's final snapshot).
pub fn replay_against(
    history: &History,
    primary: &StoreSnapshot,
    partitions: usize,
    schedules: usize,
    seed: u64,
) -> ConvergenceReport {
    let logs: Vec<_> = history
        .txns
        .iter()
        .map(|t| (t.deps.clone(), t.writes.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut divergences = Vec::new();

    for s in 0..schedules {
        let mut order: Vec<usize> = (0..logs.len()).collect();
        if s == 0 {
            order.reverse();
        } else {
            order.shuffle(&mut rng);
        }

        let store = StateStore::new(partitions);
        let max = MaxVector::new(partitions);
        let mut applied = 0usize;
        if s % 2 == 0 {
            // Offer mode: parking absorbs the reordering.
            for &i in &order {
                let (deps, writes) = &logs[i];
                applied += max.offer(deps, writes, &store).applied;
            }
            if max.parked_len() != 0 {
                divergences.push(format!(
                    "schedule {s}: {} logs still parked after delivery",
                    max.parked_len()
                ));
            }
        } else {
            // Try-apply mode: sweep until a fixpoint.
            let mut pending = order;
            loop {
                let before = pending.len();
                pending.retain(|&i| {
                    let (deps, writes) = &logs[i];
                    match max.try_apply(deps, writes, &store) {
                        Applicability::Ready => {
                            applied += 1;
                            false
                        }
                        Applicability::Stale => false,
                        Applicability::NotYet => true,
                    }
                });
                if pending.is_empty() || pending.len() == before {
                    break;
                }
                pending.shuffle(&mut rng);
            }
            if !pending.is_empty() {
                divergences.push(format!(
                    "schedule {s}: {} logs never became applicable",
                    pending.len()
                ));
            }
        }

        if applied != logs.len() {
            divergences.push(format!(
                "schedule {s}: applied {applied} of {} logs",
                logs.len()
            ));
        }
        let snap = store.snapshot();
        if canonical(&snap) != canonical(primary) {
            divergences.push(format!("schedule {s}: final key/value state diverges"));
        }
        if snap.seqs != primary.seqs {
            divergences.push(format!(
                "schedule {s}: sequence vector {:?} != primary {:?}",
                snap.seqs, primary.seqs
            ));
        }
        if max.vector() != primary.seqs {
            divergences.push(format!(
                "schedule {s}: MAX vector {:?} != primary {:?}",
                max.vector(),
                primary.seqs
            ));
        }
    }

    ConvergenceReport {
        schedules,
        logs: logs.len(),
        divergences,
    }
}

/// Like [`replay_against`], deriving the primary state by replaying the
/// history once in recorded commit order.
pub fn replay(
    history: &History,
    partitions: usize,
    schedules: usize,
    seed: u64,
) -> ConvergenceReport {
    let store = StateStore::new(partitions);
    let max = MaxVector::new(partitions);
    for t in &history.txns {
        max.offer(&t.deps, &t.writes, &store);
    }
    if max.parked_len() != 0 {
        return ConvergenceReport {
            schedules: 0,
            logs: history.txns.len(),
            divergences: vec![format!(
                "primary replay stalled with {} logs parked (history incomplete \
                 or recorded from a warm store)",
                max.parked_len()
            )],
        };
    }
    replay_against(history, &store.snapshot(), partitions, schedules, seed)
}

/// Sorted per-partition key/value pairs, so snapshots of `HashMap`-backed
/// partitions compare by content rather than iteration order.
fn canonical(snap: &StoreSnapshot) -> Vec<Vec<(Bytes, Bytes)>> {
    snap.maps
        .iter()
        .map(|m| {
            let mut kv = m.clone();
            kv.sort();
            kv
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use bytes::Bytes;

    /// Builds a history of `n` increments of one hot key plus `n` writes
    /// of distinct keys, recorded from a live store.
    fn record_history(n: u64, partitions: usize) -> (History, StoreSnapshot) {
        let store = StateStore::new(partitions);
        let rec = crate::Recorder::attach(&store);
        let hot = Bytes::from_static(b"hot");
        for i in 0..n {
            store.transaction(|txn| {
                let c = txn.read_u64(&hot)?.unwrap_or(0);
                txn.write_u64(hot.clone(), c + 1)?;
                Ok(())
            });
            let k = Bytes::from(format!("cold:{i}"));
            store.transaction(|txn| {
                txn.write_u64(k.clone(), i)?;
                Ok(())
            });
        }
        (rec.history(), store.snapshot())
    }

    #[test]
    fn recorded_history_converges_under_adversarial_replay() {
        let (history, primary) = record_history(20, 8);
        let report = replay_against(&history, &primary, 8, 6, 42);
        assert!(report.converged(), "{:?}", report.divergences);
        assert_eq!(report.logs, 40);
    }

    #[test]
    fn self_derived_primary_matches_live_store() {
        let (history, primary) = record_history(10, 4);
        // replay() derives its own primary; it must equal the live one.
        let report = replay(&history, 4, 4, 7);
        assert!(report.converged(), "{:?}", report.divergences);
        let report2 = replay_against(&history, &primary, 4, 4, 7);
        assert!(report2.converged(), "{:?}", report2.divergences);
    }

    #[test]
    fn dropped_log_is_detected() {
        let (mut history, primary) = record_history(10, 4);
        history.txns.remove(5); // lose one committed log
        let report = replay_against(&history, &primary, 4, 4, 3);
        assert!(!report.converged(), "a lost log must break convergence");
    }

    #[test]
    fn tampered_write_is_detected() {
        let (mut history, primary) = record_history(10, 4);
        // Tamper the LAST write: earlier writes to the hot key are masked
        // by later ones, but the final write of any key must survive into
        // the replica's final state.
        let t = history
            .txns
            .iter_mut()
            .rev()
            .find(|t| !t.writes.is_empty())
            .unwrap();
        t.writes[0].value = Bytes::from_static(b"\x00\x00\x00\x00\x00\x00\x00\x63");
        let report = replay_against(&history, &primary, 4, 2, 3);
        assert!(!report.converged(), "a tampered write must surface");
    }

    #[test]
    fn warm_history_stalls_and_is_reported() {
        let (mut history, _) = record_history(6, 4);
        // Drop the first few logs: the remainder has a non-zero base.
        history.txns.drain(0..4);
        let report = replay(&history, 4, 2, 9);
        assert!(!report.converged());
    }
}
