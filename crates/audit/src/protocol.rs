//! Protocol-level model checker: bounded, deterministic exploration of
//! failure schedules against the real chain objects.
//!
//! The checker drives a miniature chain — forwarder → middleboxes → buffer,
//! built from the *same* protocol state ([`SyncChain`] wires the production
//! [`ReplicaState`](ftc_core::replica::ReplicaState) /
//! [`BufferState`](ftc_core::buffer::BufferState) /
//! [`ForwarderState`](ftc_core::forwarder::ForwarderState) objects without
//! threads) — through every interleaving of a small packet workload crossed
//! with every crash point: each server × each protocol step phase
//! ([`CrashPhase::PrePiggyback`], [`CrashPhase::PostApplyPreForward`],
//! [`CrashPhase::PostForward`], quiesced kills, and crashes *during*
//! recovery), using the [`ProtocolProbe`] hooks in `ftc-core`.
//!
//! Checked invariants, each with a concrete witness schedule on failure:
//!
//! * **I1 — release implies replication**: every packet released by the
//!   buffer has its state updates applied on every *live* member of the
//!   owning replication group (the f+1 copies of §5.1). Dead members are
//!   excused: their replacement re-fetches state from a live member that
//!   this same invariant shows to be dominating.
//! * **I2 — post-recovery convergence**: at final quiescence every group
//!   member holds the head's committed prefix, byte for byte (snapshots are
//!   canonicalized before comparison — no lost or phantom updates).
//! * **I3 — ring re-formation and liveness**: after replacing a replica at
//!   the failure position the ring re-forms with the correct replication
//!   groups ([`RingMath::replicated_by`]), nothing stays fail-stopped, the
//!   buffer drains, and post-recovery traffic releases end to end.
//! * **I4 — dependency-vector monotonicity**: surviving replicas' `MAX`
//!   vectors never move backwards across a failover.
//!
//! The module also hosts the *dynamic half* of the static/dynamic agreement
//! check: [`check_abstract_deploy`] explores bounded failure schedules on an
//! abstract ring model for raw [`DeploySpec`] topologies — including the
//! structurally infeasible ones that [`ftc_mbox::verify_deploy_spec`]
//! rejects and that the real chain constructor refuses to build — so
//! property tests can confirm that every statically rejected spec has a
//! concrete dynamic counterexample, and every accepted one has none.

use ftc_core::testkit::{CrashPhase, CrashPoint, Step, SyncChain};
use ftc_core::{ChainConfig, ProbePoint, ProbeVerdict, ProtocolProbe, RingMath};
use ftc_mbox::{DeploySpec, MbSpec};
use ftc_packet::builder::UdpPacketBuilder;
use ftc_stm::StoreSnapshot;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Cap on stored witnesses; beyond it only the count grows (a sabotaged
/// buffer violates I1 on nearly every schedule, which would otherwise
/// accumulate thousands of identical reports).
const WITNESS_CAP: usize = 64;

// ---------------------------------------------------------------------------
// Probe: schedule-controlled crashes + release observations
// ---------------------------------------------------------------------------

/// Dependency claims attached to one buffer release: per `(mbox, dep
/// entries)` pair, the sequence numbers the buffer asserts are committed.
type ReleaseDeps = Vec<(usize, Vec<(u16, u64)>)>;

#[derive(Default)]
struct ProbeInner {
    /// Armed crash target; disarmed permanently once fired (single-crash
    /// schedules — the replacement must not die at the same point again).
    target: Option<CrashPoint>,
    /// Matching observations seen so far (for [`CrashPoint::trigger`]).
    seen: usize,
    /// Victim of a fired crash, consumed by the explorer via `take_fired`.
    fired: Option<usize>,
    /// Buffer releases observed since the last harvest: per release, the
    /// `(mbox, dep entries)` requirements the buffer claims are committed.
    releases: Vec<ReleaseDeps>,
}

/// The model checker's [`ProtocolProbe`]: records every buffer release and
/// fail-stops a configured victim at its `trigger`-th observation of the
/// configured phase.
struct SchedProbe {
    inner: Mutex<ProbeInner>,
}

impl SchedProbe {
    fn new() -> Arc<SchedProbe> {
        Arc::new(SchedProbe {
            inner: Mutex::new(ProbeInner::default()),
        })
    }

    fn arm(&self, point: CrashPoint) {
        let mut g = self.inner.lock();
        g.target = Some(point);
        g.seen = 0;
    }

    fn disarm(&self) {
        let mut g = self.inner.lock();
        g.target = None;
        g.fired = None;
    }

    /// The victim of a crash that fired since the last call, if any.
    fn take_fired(&self) -> Option<usize> {
        self.inner.lock().fired.take()
    }

    fn drain_releases(&self) -> Vec<ReleaseDeps> {
        std::mem::take(&mut self.inner.lock().releases)
    }
}

fn point_matches(target: &CrashPoint, point: &ProbePoint) -> bool {
    match (target.phase, point) {
        (CrashPhase::PrePiggyback, ProbePoint::PrePiggyback { replica }) => {
            *replica == target.victim
        }
        (CrashPhase::PostApplyPreForward, ProbePoint::PostApplyPreForward { replica }) => {
            *replica == target.victim
        }
        (CrashPhase::PostForward, ProbePoint::PostForward { replica }) => *replica == target.victim,
        (CrashPhase::DuringRecovery, ProbePoint::RecoveryFetch { recovering, .. }) => {
            *recovering == target.victim
        }
        _ => false,
    }
}

impl ProtocolProbe for SchedProbe {
    fn on_step(&self, point: ProbePoint) -> ProbeVerdict {
        let mut g = self.inner.lock();
        if let ProbePoint::BufferRelease { reqs } = &point {
            g.releases.push(reqs.clone());
        }
        let Some(target) = g.target else {
            return ProbeVerdict::Continue;
        };
        if !point_matches(&target, &point) {
            return ProbeVerdict::Continue;
        }
        if g.seen < target.trigger {
            g.seen += 1;
            return ProbeVerdict::Continue;
        }
        g.target = None;
        g.fired = Some(target.victim);
        ProbeVerdict::Crash
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// A concrete counterexample: which invariant broke, on which schedule, and
/// what the violating state looked like.
#[derive(Debug, Clone)]
pub struct Witness {
    /// `"I1"`..`"I4"`, or `"liveness"` for step-budget exhaustion.
    pub invariant: &'static str,
    /// The schedule that produced it (crash case + actor interleaving).
    pub schedule: String,
    /// Human-readable description of the violating state.
    pub detail: String,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.schedule, self.detail)
    }
}

/// Aggregate result of an exploration.
#[derive(Debug, Default)]
pub struct ProtocolReport {
    /// Schedules executed (crash cases × interleavings).
    pub schedules: usize,
    /// Distinct crash cases in the matrix.
    pub crash_cases: usize,
    /// Actor interleavings per crash case.
    pub interleavings: usize,
    /// Productive state transitions explored across all schedules.
    pub steps: usize,
    /// Schedules on which the armed crash actually fired (step-phase
    /// triggers can be unreachable under some interleavings).
    pub crashes_fired: usize,
    /// Packets released across all schedules.
    pub releases: usize,
    /// Total invariant violations found (may exceed `witnesses.len()`).
    pub violations: usize,
    /// Stored witnesses, capped at [`WITNESS_CAP`].
    pub witnesses: Vec<Witness>,
}

impl ProtocolReport {
    /// True when no schedule violated any invariant.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// One-line summary for test output and CI logs.
    pub fn summary(&self) -> String {
        format!(
            "explored {} schedules ({} crash cases × {} interleavings), \
             {} state transitions, {} crashes fired, {} packets released, \
             {} violation(s)",
            self.schedules,
            self.crash_cases,
            self.interleavings,
            self.steps,
            self.crashes_fired,
            self.releases,
            self.violations,
        )
    }
}

// ---------------------------------------------------------------------------
// Configuration and crash matrix
// ---------------------------------------------------------------------------

/// What to explore.
#[derive(Debug, Clone)]
pub struct ProtocolCheckConfig {
    /// The chain under test (stateful middleboxes make the invariants
    /// meaningful; [`ChainConfig`] pads to `f + 1` stages if shorter).
    pub specs: Vec<MbSpec>,
    /// Tolerated failures.
    pub f: usize,
    /// Packets injected before the crash.
    pub warm: usize,
    /// Packets injected after recovery (the "traffic resumes" leg of I3).
    pub post: usize,
    /// Step-phase crashes fire at the victim's 0th..`triggers`-1-th
    /// observation of the phase, multiplying the crash matrix.
    pub triggers: usize,
    /// Cap on actor interleavings (`None` = all `(n + 2)!` permutations);
    /// capped runs stride-sample the permutation space for diversity.
    pub perm_limit: Option<usize>,
    /// Per-schedule transition budget; exhausting it is a liveness witness.
    pub max_steps: usize,
    /// Negative fixture: loosen the buffer's release rule by one
    /// commit-vector entry (must produce I1 witnesses on a correct chain).
    pub sabotage_buffer: bool,
}

impl ProtocolCheckConfig {
    /// The PR-gate configuration: a 3-middlebox, `f = 1` monitor chain,
    /// explored exhaustively (every single-crash schedule × all 120
    /// interleavings of the five steppable actors).
    pub fn f1_exhaustive() -> ProtocolCheckConfig {
        ProtocolCheckConfig {
            specs: vec![MbSpec::Monitor { sharing_level: 1 }; 3],
            f: 1,
            warm: 3,
            post: 2,
            triggers: 2,
            perm_limit: None,
            max_steps: 6000,
            sabotage_buffer: false,
        }
    }

    /// The nightly configuration: a 4-middlebox, `f = 2` chain with a
    /// bounded, stride-sampled interleaving set and the double-failure,
    /// fallback-fetch, and recovery-abort cases in the matrix.
    pub fn f2_nightly() -> ProtocolCheckConfig {
        ProtocolCheckConfig {
            specs: vec![MbSpec::Monitor { sharing_level: 1 }; 4],
            f: 2,
            warm: 3,
            post: 2,
            triggers: 2,
            perm_limit: Some(48),
            max_steps: 9000,
            sabotage_buffer: false,
        }
    }
}

/// One crash case in the exploration matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashCase {
    /// Fault-free baseline (every packet must release, exactly once).
    None,
    /// Fail-stop at a protocol step phase, driven by the probe.
    StepPhase(CrashPoint),
    /// Classic kill between packets.
    Quiesced { victim: usize },
    /// The recovering replacement dies mid-fetch; recovery restarts fresh.
    DuringRecovery { victim: usize },
    /// A fetch source refuses mid-recovery (models the source dying): at
    /// `f = 1` recovery must fail and the retry succeed; at `f ≥ 2` the
    /// §4.1 fallback order must reach another group member.
    SourceDeath { victim: usize, refuse: usize },
    /// Two adjacent quiesced kills (`f ≥ 2` tolerance check).
    DoubleKill { first: usize, second: usize },
}

impl CrashCase {
    fn label(&self) -> String {
        match self {
            CrashCase::None => "no-crash".into(),
            CrashCase::StepPhase(p) => {
                format!("crash[r{}@{:?}#{}]", p.victim, p.phase, p.trigger)
            }
            CrashCase::Quiesced { victim } => format!("kill[r{victim}@quiesced]"),
            CrashCase::DuringRecovery { victim } => format!("crash[r{victim}@recovery-fetch]"),
            CrashCase::SourceDeath { victim, refuse } => {
                format!("kill[r{victim}]+source-death[r{refuse}]")
            }
            CrashCase::DoubleKill { first, second } => format!("kill[r{first},r{second}]"),
        }
    }
}

/// Builds the crash matrix for an `n`-replica chain tolerating `f`.
///
/// At `f = 1` the matrix is exhaustive: every victim × every step phase ×
/// every trigger, plus quiesced kills, recovery-abort, and source-death
/// cases for every victim. At `f ≥ 2` step-phase crashes are restricted to
/// the first replica: a mid-chain fail-stop at `f ≥ 2` can lose a log whose
/// head survives while a *non-replaced* downstream group member still needs
/// it — recovery only rebuilds the victim, so that gap is unrecoverable by
/// design (the paper recovers it only for `f = 1`-shaped pipelines and for
/// wrapped groups, where the buffer resends). The supported `f ≥ 2` shapes
/// — quiesced kills including double failures, fallback fetches, and
/// recovery aborts — are all in the matrix.
fn crash_matrix(n: usize, f: usize, triggers: usize) -> Vec<CrashCase> {
    let phases = [
        CrashPhase::PrePiggyback,
        CrashPhase::PostApplyPreForward,
        CrashPhase::PostForward,
    ];
    let mut cases = vec![CrashCase::None];
    let step_victims: Vec<usize> = if f == 1 { (0..n).collect() } else { vec![0] };
    for &victim in &step_victims {
        for phase in phases {
            for trigger in 0..triggers {
                cases.push(CrashCase::StepPhase(CrashPoint {
                    victim,
                    phase,
                    trigger,
                }));
            }
        }
    }
    for victim in 0..n {
        cases.push(CrashCase::Quiesced { victim });
    }
    if f == 1 {
        for victim in 0..n {
            cases.push(CrashCase::DuringRecovery { victim });
            // Refusing the victim's sole successor starves at least the
            // own-store fetch: the first attempt must fail, the retry heal.
            cases.push(CrashCase::SourceDeath {
                victim,
                refuse: (victim + 1) % n,
            });
        }
    } else {
        cases.push(CrashCase::DuringRecovery { victim: 1 });
        cases.push(CrashCase::SourceDeath {
            victim: 1,
            refuse: 2,
        });
        if n >= 4 {
            cases.push(CrashCase::DoubleKill {
                first: 1,
                second: 2,
            });
        }
    }
    cases
}

/// All permutations of `items` (Heap's algorithm, deterministic order).
/// Shared with the reconfiguration checker in [`crate::reconfig`].
pub(crate) fn permutations<T: Copy>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut a = items.to_vec();
    let n = a.len();
    let mut c = vec![0usize; n];
    out.push(a.clone());
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            out.push(a.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Single-schedule runner
// ---------------------------------------------------------------------------

enum DriveExit {
    Quiescent,
    CrashFired(usize),
    Budget,
}

struct Runner {
    chain: SyncChain,
    probe: Arc<SchedProbe>,
    ring: RingMath,
    label: String,
    max_steps: usize,
    steps: usize,
    released: usize,
    budget_blown: bool,
    next_ident: u16,
    /// I4 baseline: `(holder, mbox) → MAX vector` captured at crash time
    /// for replicas that survive the failover.
    baseline: HashMap<(usize, usize), Vec<u64>>,
    witnesses: Vec<Witness>,
    /// Violations found on this schedule (harvest may drop detail past the
    /// caller's cap, so the count is tracked separately).
    violations: usize,
    crash_fired: bool,
}

impl Runner {
    fn witness(&mut self, invariant: &'static str, detail: String) {
        self.violations += 1;
        if self.witnesses.len() < WITNESS_CAP {
            self.witnesses.push(Witness {
                invariant,
                schedule: self.label.clone(),
                detail,
            });
        }
    }

    fn inject(&mut self, count: usize) {
        for _ in 0..count {
            self.next_ident = self.next_ident.wrapping_add(1);
            let pkt = UdpPacketBuilder::new()
                .src(Ipv4Addr::new(10, 2, 0, 1), 1000 + self.next_ident % 4000)
                .dst(Ipv4Addr::new(10, 3, 0, 1), 80)
                .ident(self.next_ident)
                .build();
            self.chain.inject(pkt);
        }
    }

    /// Checks I1 for every release the probe recorded since the last call
    /// and counts egressed packets. `SyncChain` is single-threaded, so the
    /// chain state inspected here is exactly the state at release time.
    fn harvest(&mut self) {
        for reqs in self.probe.drain_releases() {
            self.check_i1(&reqs);
        }
        self.released += self.chain.egress().drain().len();
    }

    fn check_i1(&mut self, reqs: &[(usize, Vec<(u16, u64)>)]) {
        for (m, deps) in reqs {
            for r in self.ring.group(*m) {
                if self.chain.is_dead(r) {
                    // A dead member is mid-replacement; its successor
                    // re-fetches from a live member this loop does check.
                    continue;
                }
                let vec = if r == *m {
                    self.chain.replicas[r].own_store.seq_vector()
                } else {
                    match self.chain.replicas[r].replicated.get(m) {
                        Some(g) => g.max.vector(),
                        None => {
                            self.witness(
                                "I1",
                                format!(
                                    "live replica r{r} holds no replicated \
                                     store for mbox {m} at release time"
                                ),
                            );
                            continue;
                        }
                    }
                };
                for &(p, seq) in deps {
                    let have = vec.get(p as usize).copied().unwrap_or(0);
                    if have <= seq {
                        self.witness(
                            "I1",
                            format!(
                                "buffer released a packet depending on mbox \
                                 {m} partition {p} seq {seq}, but live group \
                                 member r{r} has only applied {have} entries \
                                 there — fewer than f+1 live copies exist"
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Steps actors in `perm` order until quiescence, a probe crash, or
    /// budget exhaustion. Timers fire only on idle passes, mirroring
    /// [`SyncChain::run_to_quiescence`].
    fn drive(&mut self, perm: &[Step]) -> DriveExit {
        loop {
            if self.steps >= self.max_steps {
                if !self.budget_blown {
                    self.budget_blown = true;
                    self.witness(
                        "liveness",
                        format!(
                            "step budget {} exhausted before quiescence \
                             (possible livelock or wedged dependency)",
                            self.max_steps
                        ),
                    );
                }
                return DriveExit::Budget;
            }
            let mut progressed = false;
            for &actor in perm {
                if self.chain.step(actor) {
                    self.steps += 1;
                    progressed = true;
                }
                self.harvest();
                if let Some(victim) = self.probe.take_fired() {
                    self.chain.mark_dead(victim);
                    return DriveExit::CrashFired(victim);
                }
            }
            if !progressed {
                self.chain.step(Step::BufferTimer);
                let timer_work = self.chain.step(Step::ForwarderTimer);
                let more = {
                    let b = self.chain.step(Step::Buffer);
                    let r = self.chain.step(Step::Replica(0));
                    b || r
                };
                self.harvest();
                if let Some(victim) = self.probe.take_fired() {
                    self.chain.mark_dead(victim);
                    return DriveExit::CrashFired(victim);
                }
                if !timer_work && !more {
                    return DriveExit::Quiescent;
                }
                self.steps += 1;
            }
        }
    }

    /// Bounded settle between a mid-step crash and its recovery: drains
    /// surviving in-flight work while the victim is still fail-stopped.
    ///
    /// While a replica is dead the buffer→forwarder retransmission cycle
    /// never quiesces *by design*: the buffer re-sends its uncommitted
    /// wrapped logs every tick and the forwarder keeps emitting propagating
    /// carriers into the dead server until a replacement absorbs them —
    /// that standing retry loop is exactly the mechanism that lets recovery
    /// pick up where the victim left off. Demanding quiescence here would
    /// misreport the protocol's own liveness machinery as a livelock (and
    /// burn the whole step budget doing it), so this variant instead stops
    /// after `idle_cap` timer passes yield no non-timer progress. Real
    /// quiescence is still enforced by the post-recovery [`Self::drive`],
    /// which runs with every replica alive.
    fn drive_settle(&mut self, perm: &[Step], idle_cap: usize) {
        let mut idle_passes = 0;
        while idle_passes < idle_cap {
            if self.steps >= self.max_steps {
                if !self.budget_blown {
                    self.budget_blown = true;
                    self.witness(
                        "liveness",
                        format!(
                            "step budget {} exhausted during the post-crash \
                             settle (non-timer work kept progressing)",
                            self.max_steps
                        ),
                    );
                }
                return;
            }
            let mut progressed = false;
            for &actor in perm {
                if self.chain.step(actor) {
                    self.steps += 1;
                    progressed = true;
                }
            }
            self.harvest();
            if !progressed {
                idle_passes += 1;
                self.chain.step(Step::BufferTimer);
                let timer_work = self.chain.step(Step::ForwarderTimer);
                let more = {
                    let b = self.chain.step(Step::Buffer);
                    let r = self.chain.step(Step::Replica(0));
                    b || r
                };
                self.harvest();
                if !timer_work && !more {
                    return;
                }
                self.steps += 1;
            }
        }
    }

    /// Captures the I4 baseline: every surviving replica's applied-prefix
    /// vector for every store it holds, at the moment of the crash.
    fn capture_i4(&mut self, victims: &[usize]) {
        self.baseline.clear();
        for (r, rep) in self.chain.replicas.iter().enumerate() {
            if victims.contains(&r) || self.chain.is_dead(r) {
                continue;
            }
            self.baseline.insert((r, r), rep.own_store.seq_vector());
            for (m, g) in &rep.replicated {
                self.baseline.insert((r, *m), g.max.vector());
            }
        }
    }

    fn check_i4(&mut self) {
        let entries: Vec<((usize, usize), Vec<u64>)> =
            self.baseline.iter().map(|(k, v)| (*k, v.clone())).collect();
        for ((r, m), before) in entries {
            let rep = &self.chain.replicas[r];
            let after = if m == r {
                rep.own_store.seq_vector()
            } else {
                match rep.replicated.get(&m) {
                    Some(g) => g.max.vector(),
                    None => continue, // structural damage — I3 reports it
                }
            };
            for (p, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
                if a < b {
                    self.witness(
                        "I4",
                        format!(
                            "survivor r{r}'s MAX vector for mbox {m} moved \
                             backwards across failover: partition {p} went \
                             {b} → {a}"
                        ),
                    );
                }
            }
        }
    }

    fn recover(&mut self, victim: usize) {
        if let Err(e) = self.chain.try_fail_and_recover(victim, &|_, _| true) {
            self.witness(
                "I3",
                format!("recovery of r{victim} with all sources live failed: {e}"),
            );
        }
    }

    /// Final checks: I2 convergence, I3 structure + liveness, delivery.
    fn check_final(&mut self, post_expected: usize, post_released: usize, exact: Option<usize>) {
        if self.budget_blown {
            return; // liveness witness already recorded; state is mid-flight
        }
        if self.chain.held() != 0 {
            self.witness(
                "I3",
                format!(
                    "{} packet(s) still withheld by the buffer at final \
                     quiescence",
                    self.chain.held()
                ),
            );
        }
        if post_released < post_expected {
            self.witness(
                "I3",
                format!(
                    "only {post_released} of {post_expected} post-recovery \
                     packets released: traffic did not resume"
                ),
            );
        }
        if let Some(total) = exact {
            if self.released != total {
                self.witness(
                    "I3",
                    format!(
                        "released {} packets, expected exactly {total} \
                         (no in-flight loss is possible on this schedule)",
                        self.released
                    ),
                );
            }
        }
        let n = self.chain.replicas.len();
        for i in 0..n {
            if self.chain.is_dead(i) {
                self.witness("I3", format!("replica r{i} still fail-stopped at the end"));
                continue;
            }
            let claimed_idx = self.chain.replicas[i].idx;
            if claimed_idx != i {
                self.witness(
                    "I3",
                    format!("replica at ring position {i} believes it is r{claimed_idx}"),
                );
            }
            let mut want = self.ring.replicated_by(i);
            want.sort_unstable();
            let mut got: Vec<usize> = self.chain.replicas[i].replicated.keys().copied().collect();
            got.sort_unstable();
            if got != want {
                self.witness(
                    "I3",
                    format!(
                        "r{i} replicates groups {got:?} after failover, ring \
                         arithmetic requires {want:?}"
                    ),
                );
            }
        }
        // I2: every member converged to the head's committed prefix.
        for m in 0..n {
            let head_vec = self.chain.replicas[m].own_store.seq_vector();
            let head_snap = canonical(self.chain.replicas[m].own_store.snapshot());
            for r in self.ring.group(m) {
                if r == m {
                    continue;
                }
                let Some((member_vec, member_snap)) = self.chain.replicas[r]
                    .replicated
                    .get(&m)
                    .map(|g| (g.max.vector(), g.store.snapshot()))
                else {
                    continue; // reported by the I3 structure check above
                };
                if member_vec != head_vec {
                    self.witness(
                        "I2",
                        format!(
                            "r{r}'s applied prefix for mbox {m} is \
                             {member_vec:?}, head committed {head_vec:?}"
                        ),
                    );
                } else if canonical(member_snap) != head_snap {
                    self.witness(
                        "I2",
                        format!(
                            "r{r}'s replicated store for mbox {m} diverges \
                             from the head's content despite equal vectors"
                        ),
                    );
                }
            }
        }
    }
}

/// Sorts each partition's entries so snapshot comparison is independent of
/// `HashMap` iteration order.
pub(crate) fn canonical(mut snap: StoreSnapshot) -> StoreSnapshot {
    for part in &mut snap.maps {
        part.sort();
    }
    snap
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

fn run_schedule(
    cfg: &ProtocolCheckConfig,
    perm: &[Step],
    perm_idx: usize,
    case: &CrashCase,
) -> Runner {
    let chain_cfg = ChainConfig::new(cfg.specs.clone()).with_f(cfg.f);
    let ring = chain_cfg.ring();
    let chain = SyncChain::new(chain_cfg);
    if cfg.sabotage_buffer {
        chain.buffer().sabotage_early_release();
    }
    let probe = SchedProbe::new();
    chain.install_probe(Arc::clone(&probe) as Arc<dyn ProtocolProbe>);
    let mut run = Runner {
        chain,
        probe,
        ring,
        label: format!("{}/perm{}", case.label(), perm_idx),
        max_steps: cfg.max_steps,
        steps: 0,
        released: 0,
        budget_blown: false,
        next_ident: 0,
        baseline: HashMap::new(),
        witnesses: Vec::new(),
        violations: 0,
        crash_fired: false,
    };

    if let CrashCase::StepPhase(point) = case {
        run.probe.arm(*point);
    }
    run.inject(cfg.warm);
    let exit = run.drive(perm);

    // `exact` delivery counting holds whenever no packet can die in flight.
    let mut exact = Some(cfg.warm + cfg.post);
    match *case {
        CrashCase::None => {}
        CrashCase::StepPhase(_) => {
            if let DriveExit::CrashFired(victim) = exit {
                run.crash_fired = true;
                exact = None; // frames queued at the victim die with it
                run.capture_i4(&[victim]);
                run.drive_settle(perm, run.ring.n + 2);
                run.recover(victim);
                run.drive(perm);
            } else {
                // The trigger was unreachable under this interleaving
                // (e.g. the victim saw fewer matching steps); the schedule
                // still counts as a fault-free execution.
                run.probe.disarm();
            }
        }
        CrashCase::Quiesced { victim } => {
            run.crash_fired = true;
            run.capture_i4(&[victim]);
            run.recover(victim);
            run.drive(perm);
        }
        CrashCase::DuringRecovery { victim } => {
            run.crash_fired = true;
            run.capture_i4(&[victim]);
            run.chain.mark_dead(victim);
            run.probe.arm(CrashPoint {
                victim,
                phase: CrashPhase::DuringRecovery,
                trigger: 0,
            });
            match run.chain.try_fail_and_recover(victim, &|_, _| true) {
                Err(ftc_core::recovery::RecoveryError::Aborted { .. }) => {}
                Ok(_) => run.witness(
                    "I3",
                    "recovery completed although the replacement was \
                     crashed at its first fetch"
                        .into(),
                ),
                Err(e) => run.witness(
                    "I3",
                    format!("crashed recovery surfaced the wrong error: {e}"),
                ),
            }
            run.probe.disarm();
            if !run.chain.is_dead(victim) {
                run.witness(
                    "I3",
                    "victim rewired into the ring despite an aborted recovery".into(),
                );
            }
            run.recover(victim); // fresh retry, fetch runs clean
            run.drive(perm);
        }
        CrashCase::SourceDeath { victim, refuse } => {
            run.crash_fired = true;
            run.capture_i4(&[victim]);
            match run
                .chain
                .try_fail_and_recover(victim, &|src, _| src != refuse)
            {
                Ok(_) => {
                    // f ≥ 2: the fallback order reached another member.
                }
                Err(_) if cfg.f == 1 => {
                    // Sole source refused; the victim must stay dead and a
                    // retry with sources back must heal the ring.
                    if !run.chain.is_dead(victim) {
                        run.witness(
                            "I3",
                            "victim rewired although every fetch source died".into(),
                        );
                    }
                    run.recover(victim);
                }
                Err(e) => run.witness(
                    "I3",
                    format!(
                        "f = {} recovery failed although a fallback source \
                         survived: {e}",
                        cfg.f
                    ),
                ),
            }
            run.drive(perm);
        }
        CrashCase::DoubleKill { first, second } => {
            run.crash_fired = true;
            run.capture_i4(&[first, second]);
            run.chain.mark_dead(first);
            run.chain.mark_dead(second);
            run.recover(first);
            run.recover(second);
            run.drive(perm);
        }
    }

    run.check_i4();
    let before_post = run.released;
    run.inject(cfg.post);
    run.drive(perm);
    let post_released = run.released - before_post;
    run.check_final(cfg.post, post_released, exact);
    run
}

/// Runs the full exploration: every crash case in the matrix × every
/// (sampled) interleaving of the steppable actors, with all four invariants
/// checked on every schedule.
pub fn explore(cfg: &ProtocolCheckConfig) -> ProtocolReport {
    let n = ChainConfig::new(cfg.specs.clone())
        .with_f(cfg.f)
        .effective_middleboxes()
        .len();
    let mut actors: Vec<Step> = (0..n).map(Step::Replica).collect();
    actors.push(Step::Buffer);
    actors.push(Step::ForwarderFeedback);
    let mut perms = permutations(&actors);
    if let Some(limit) = cfg.perm_limit {
        if perms.len() > limit {
            let stride = perms.len() / limit;
            perms = perms
                .into_iter()
                .step_by(stride.max(1))
                .take(limit)
                .collect();
        }
    }
    let cases = crash_matrix(n, cfg.f, cfg.triggers);

    let mut report = ProtocolReport {
        crash_cases: cases.len(),
        interleavings: perms.len(),
        ..ProtocolReport::default()
    };
    for case in &cases {
        for (perm_idx, perm) in perms.iter().enumerate() {
            let run = run_schedule(cfg, perm, perm_idx, case);
            report.schedules += 1;
            report.steps += run.steps;
            report.releases += run.released;
            report.violations += run.violations;
            if run.crash_fired {
                report.crashes_fired += 1;
            }
            for w in run.witnesses {
                if report.witnesses.len() < WITNESS_CAP {
                    report.witnesses.push(w);
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Abstract deployment model (dynamic half of static/dynamic agreement)
// ---------------------------------------------------------------------------

/// A counterexample schedule found on the abstract ring model.
#[derive(Debug, Clone)]
pub struct AbstractWitness {
    /// Failure class (`"under-replication"`, `"processing-gap"`, …).
    pub code: &'static str,
    /// The concrete abstract schedule that exhibits it.
    pub schedule: String,
}

impl std::fmt::Display for AbstractWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.schedule)
    }
}

/// Bounded failure-schedule exploration on an *abstract* ring model of a
/// raw [`DeploySpec`] topology.
///
/// The real chain constructor cannot build structurally infeasible
/// topologies (it pads and asserts), so the dynamic checker explores them
/// on an abstraction instead: one packet traverses ring slots
/// `0..ring_len`, each chain position `m` emits one state update that is
/// copied to the `f` following slots, and the buffer at `buffer_pos`
/// releases the packet subject to the commit evidence reachable there.
/// Schedules crash up to `f` slots before/after the release and check the
/// same I1-style survival property the concrete checker enforces.
///
/// Each statically rejected shape maps to a concrete dynamic failure:
///
/// | static code ([`ftc_mbox::verify_deploy_spec`]) | abstract witness |
/// |---|---|
/// | `empty-chain` | `no-delivery` |
/// | `ring-too-short` | `under-replication` |
/// | `ring-shorter-than-chain` | `no-replica-slot` |
/// | `buffer-before-tail` | `processing-gap` / `never-released` |
/// | `partitions-lt-workers` | `seq-collision` |
/// | `unknown-engine` | `no-engine` |
pub fn check_abstract_deploy(spec: &DeploySpec) -> Vec<AbstractWitness> {
    let mut out = Vec::new();
    if spec.middleboxes.is_empty() {
        out.push(AbstractWitness {
            code: "no-delivery",
            schedule: "inject one packet: the chain has no stage to process \
                       or release it"
                .into(),
        });
    }
    if spec.ring_len > 0 {
        if spec.buffer_pos + 1 < spec.ring_len {
            out.push(AbstractWitness {
                code: "processing-gap",
                schedule: format!(
                    "inject one packet: it is released at slot {} and never \
                     traverses slots {}..={}, whose commit evidence the \
                     release rule therefore cannot await",
                    spec.buffer_pos,
                    spec.buffer_pos + 1,
                    spec.ring_len - 1
                ),
            });
        } else if spec.buffer_pos >= spec.ring_len {
            out.push(AbstractWitness {
                code: "never-released",
                schedule: format!(
                    "inject one packet: it leaves the ring at slot {} but \
                     the buffer sits at position {}, so it is withheld \
                     forever",
                    spec.ring_len - 1,
                    spec.buffer_pos
                ),
            });
        }
    }
    for (m, mb) in spec.middleboxes.iter().enumerate() {
        if m >= spec.ring_len {
            out.push(AbstractWitness {
                code: "no-replica-slot",
                schedule: format!(
                    "inject one packet: the update from `{}` (position {m}) \
                     has no ring slot, so zero copies exist when the packet \
                     egresses",
                    mb.name()
                ),
            });
            continue;
        }
        // Distinct slots in position m's replication group.
        let group: BTreeSet<usize> = (0..=spec.f).map(|k| (m + k) % spec.ring_len).collect();
        // Members provably holding the update when the packet is released:
        // downstream members the packet traversed before the buffer, plus
        // wrapped members only if the buffer sits at the ring tail (the
        // feedback loop's commit vectors are awaited there and only there).
        let holders: BTreeSet<usize> = group
            .iter()
            .copied()
            .filter(|&s| {
                if s >= m {
                    s <= spec.buffer_pos
                } else {
                    spec.buffer_pos + 1 == spec.ring_len
                }
            })
            .collect();
        if holders.len() < spec.f + 1 {
            out.push(AbstractWitness {
                code: "under-replication",
                schedule: format!(
                    "release the packet carrying position {m}'s update, then \
                     crash slot(s) {holders:?} — {} failure(s) ≤ f = {} — \
                     and every copy of a released update is gone",
                    holders.len(),
                    spec.f
                ),
            });
        }
    }
    if spec.partitions < spec.workers {
        out.push(AbstractWitness {
            code: "seq-collision",
            schedule: format!(
                "run workers 0 and {} concurrently: with {} partition(s) for \
                 {} worker(s) both draw the same per-partition seq, and a \
                 replica applies one update while rejecting the other as \
                 stale",
                spec.workers - 1,
                spec.partitions,
                spec.workers
            ),
        });
    }
    if spec.engine.parse::<ftc_stm::EngineKind>().is_err() {
        out.push(AbstractWitness {
            code: "no-engine",
            schedule: format!(
                "build position 0's state store: no engine named `{}` \
                 exists, so the first packet transaction has nothing to \
                 begin on",
                spec.engine
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_mbox::verify_deploy_spec;

    fn mini_cfg() -> ProtocolCheckConfig {
        ProtocolCheckConfig {
            specs: vec![MbSpec::Monitor { sharing_level: 1 }; 2],
            f: 1,
            warm: 2,
            post: 1,
            triggers: 1,
            perm_limit: Some(4),
            max_steps: 4000,
            sabotage_buffer: false,
        }
    }

    #[test]
    fn mini_exploration_is_violation_free() {
        let report = explore(&mini_cfg());
        assert!(report.ok(), "unexpected witnesses: {:#?}", report.witnesses);
        assert!(report.schedules > 0 && report.steps > 0);
        assert!(
            report.crashes_fired > 0,
            "the matrix must actually crash replicas: {}",
            report.summary()
        );
    }

    #[test]
    fn sabotaged_buffer_yields_i1_witness() {
        let cfg = ProtocolCheckConfig {
            sabotage_buffer: true,
            perm_limit: Some(1),
            ..mini_cfg()
        };
        let report = explore(&cfg);
        assert!(
            !report.ok(),
            "sabotage must be caught: {}",
            report.summary()
        );
        assert!(
            report.witnesses.iter().any(|w| w.invariant == "I1"),
            "expected an I1 witness, got: {:#?}",
            report.witnesses
        );
    }

    #[test]
    fn abstract_model_agrees_with_static_verifier_on_canonical_specs() {
        let mon = || MbSpec::Monitor { sharing_level: 1 };
        let cases = [
            DeploySpec::feasible(vec![mon(); 3], 1),
            DeploySpec {
                middleboxes: vec![mon()],
                f: 2,
                ring_len: 1,
                buffer_pos: 0,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            DeploySpec {
                middleboxes: vec![mon(); 4],
                f: 1,
                ring_len: 2,
                buffer_pos: 1,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            DeploySpec {
                middleboxes: vec![mon(); 3],
                f: 1,
                ring_len: 3,
                buffer_pos: 1,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            DeploySpec {
                middleboxes: vec![],
                f: 0,
                ring_len: 1,
                buffer_pos: 0,
                partitions: 1,
                workers: 4,
                engine: "twopl".into(),
            },
        ];
        for spec in &cases {
            let statically_ok = verify_deploy_spec(spec).is_ok();
            let dynamic = check_abstract_deploy(spec);
            assert_eq!(
                statically_ok,
                dynamic.is_empty(),
                "static and dynamic verdicts disagree on {spec:?}: {dynamic:?}"
            );
        }
    }

    #[test]
    fn permutations_cover_the_factorial() {
        assert_eq!(permutations(&[0, 1, 2]).len(), 6);
        assert_eq!(permutations(&[0usize; 0]).len(), 1);
    }
}
