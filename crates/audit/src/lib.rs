//! Offline concurrency audit for the FTC transactional core.
//!
//! The paper's correctness argument rests on two claims: the head's strict
//! 2PL + wound-wait commit path produces **strictly serializable**
//! histories (§4.2), and replicas applying the resulting piggyback logs
//! under the `MAX`-vector rule **converge** to the head state regardless
//! of delivery order (§4.3). This crate checks both claims against real
//! executions instead of trusting the implementation:
//!
//! * [`Recorder`] — a [`ftc_stm::HistorySink`] that taps a live
//!   [`StateStore`](ftc_stm::StateStore) and accumulates every committed
//!   `TxnLog` (plus every replica-side apply) into a [`History`].
//! * [`serializability::check`] — builds the direct serialization graph
//!   from the recorded [`DepVector`](ftc_stm::DepVector)s, rejects
//!   duplicate or gapped sequence stamps, and reports any cycle with a
//!   concrete witness.
//! * [`convergence::replay`] / [`convergence::replay_against`] — replays
//!   the history into fresh replicas under adversarial delivery orders
//!   and diffs the final snapshots against the primary.
//! * [`protocol`] — the protocol-level model checker: drives a miniature
//!   chain (real [`ftc_core::testkit::SyncChain`] objects) through every
//!   interleaving × crash-point schedule in a bounded matrix, checking
//!   release-implies-replication, post-recovery convergence, ring
//!   re-formation, and `MAX`-vector monotonicity — plus the abstract
//!   deployment model backing the static/dynamic agreement property.
//! * [`reconfig`] — the crash-during-reconfiguration model checker:
//!   executes the scale/migrate/splice handshake of
//!   [`ftc_core::reconfig`] on the same miniature chain while
//!   fail-stopping each participant at each phase, applies the documented
//!   repair, and checks I1–I4 plus the reconfiguration invariants I5
//!   (exactly one serviceable owner per flow partition at every
//!   observable point) and I6 (migrated state equals the sealed
//!   committed prefix).
//! * [`async_check`] — the async-transport model checker: drives the real
//!   socket backend (`ftc_net::sock`) under the vendored tokio's
//!   deterministic executor through seeded task-interleaving × fault
//!   schedules, checking exactly-once delivery, RPC correlation,
//!   reconnect convergence, and quiescence (T1–T4).
//!
//! [`audit`] runs the whole battery. Typical use in a test:
//!
//! ```
//! use bytes::Bytes;
//! use ftc_audit::Recorder;
//! use ftc_stm::StateStore;
//!
//! let store = StateStore::new(8);
//! let rec = Recorder::attach(&store);
//! store.transaction(|txn| {
//!     txn.write_u64(Bytes::from_static(b"k"), 1)?;
//!     Ok(())
//! });
//! let report = ftc_audit::audit(&rec.history(), &store.snapshot(), 8);
//! assert!(report.passed(), "{}", report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_check;
pub mod convergence;
pub mod history;
pub mod protocol;
pub mod reconfig;
pub mod serializability;

pub use async_check::{AsyncCheckConfig, TransportReport, TransportWitness};
pub use convergence::ConvergenceReport;
pub use history::{AppliedLog, CommittedTxn, History, Recorder};
pub use protocol::{
    check_abstract_deploy, explore, AbstractWitness, ProtocolCheckConfig, ProtocolReport, Witness,
};
pub use reconfig::{explore_reconfig, replay, ReconfigCheckConfig, ReconfigReport};
pub use serializability::{SerializabilityReport, Violation};

/// Number of adversarial replay schedules [`audit`] runs.
pub const DEFAULT_SCHEDULES: usize = 8;

/// Fixed seed for [`audit`]'s replay schedules, so failures reproduce.
pub const DEFAULT_SEED: u64 = 0xf7c_5fc;

/// Combined outcome of a full audit run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The serializability check's outcome.
    pub serializability: SerializabilityReport,
    /// The convergence replay's outcome. `None` when the serializability
    /// check already failed (replaying a broken history proves nothing).
    pub convergence: Option<ConvergenceReport>,
}

impl AuditReport {
    /// True iff the history is serializable and every replay converged.
    pub fn passed(&self) -> bool {
        self.serializability.is_serializable()
            && self.convergence.as_ref().is_some_and(|c| c.converged())
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serializability: {} txns, {} edges, {} violation(s)",
            self.serializability.txns,
            self.serializability.edges,
            self.serializability.violations.len()
        )?;
        for v in &self.serializability.violations {
            writeln!(f, "  - {v}")?;
        }
        match &self.convergence {
            None => writeln!(f, "convergence: skipped (history not serializable)"),
            Some(c) => {
                writeln!(
                    f,
                    "convergence: {} logs x {} schedules, {} divergence(s)",
                    c.logs,
                    c.schedules,
                    c.divergences.len()
                )?;
                for d in &c.divergences {
                    writeln!(f, "  - {d}")?;
                }
                Ok(())
            }
        }
    }
}

/// Runs the full audit battery on `history`, recorded from a fresh
/// `partitions`-way store whose final state is `primary`.
///
/// Serializability is checked first; convergence replay (against
/// `primary`, [`DEFAULT_SCHEDULES`] schedules, [`DEFAULT_SEED`]) only
/// runs when the history is serializable.
pub fn audit(
    history: &History,
    primary: &ftc_stm::StoreSnapshot,
    partitions: usize,
) -> AuditReport {
    let serializability = serializability::check(history);
    let convergence = serializability.is_serializable().then(|| {
        convergence::replay_against(
            history,
            primary,
            partitions,
            DEFAULT_SCHEDULES,
            DEFAULT_SEED,
        )
    });
    AuditReport {
        serializability,
        convergence,
    }
}
