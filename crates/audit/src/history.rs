//! Recording committed histories from live stores.

use ftc_stm::{CommitRecord, DepVector, HistorySink, StateBackend, StateStore, StateWrite};
use parking_lot::Mutex;
use std::sync::Arc;

/// One committed writing transaction in a recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Recorder arrival index (linearization hint only; see
    /// [`ftc_stm::CommitRecord::commit_index`]).
    pub commit_index: u64,
    /// Hash of the committing thread id.
    pub thread: u64,
    /// Pre-increment per-partition sequence numbers (read or written).
    pub deps: DepVector,
    /// The committed write set.
    pub writes: Vec<StateWrite>,
}

/// A replicated log applied at a (replica) store, as recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedLog {
    /// The log's dependency vector.
    pub deps: DepVector,
    /// The applied writes.
    pub writes: Vec<StateWrite>,
}

/// An immutable committed-transaction history, the input to the
/// [`serializability`](crate::serializability) and
/// [`convergence`](crate::convergence) checkers.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Committed writing transactions, in recorder arrival order.
    pub txns: Vec<CommittedTxn>,
    /// Logs applied through `apply_writes` (replica side), if any.
    pub applied: Vec<AppliedLog>,
}

impl History {
    /// Builds a fixture history from `(deps, writes)` pairs, stamping
    /// arrival indices in the given order. Used by tests to construct
    /// adversarial histories the live runtime would never produce.
    pub fn from_logs(logs: impl IntoIterator<Item = (DepVector, Vec<StateWrite>)>) -> History {
        History {
            txns: logs
                .into_iter()
                .enumerate()
                .map(|(i, (deps, writes))| CommittedTxn {
                    commit_index: i as u64,
                    thread: 0,
                    deps,
                    writes,
                })
                .collect(),
            applied: Vec::new(),
        }
    }

    /// Number of committed writing transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if no transaction was recorded.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// The smallest partition count that covers every dependency entry
    /// (partitions are 0-based, so this is `max index + 1`).
    pub fn min_partitions(&self) -> usize {
        self.txns
            .iter()
            .flat_map(|t| t.deps.entries())
            .map(|&(p, _)| p as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A [`HistorySink`] that accumulates commit and apply events in memory.
///
/// Attach it with [`Recorder::attach`]; the store keeps reporting until
/// [`StateStore::clear_recorder`] is called or the store is dropped.
///
/// ```
/// use bytes::Bytes;
/// use ftc_audit::Recorder;
/// use ftc_stm::StateStore;
///
/// let store = StateStore::new(8);
/// let rec = Recorder::attach(&store);
/// store.transaction(|txn| {
///     txn.write_u64(Bytes::from_static(b"k"), 7)?;
///     Ok(())
/// });
/// let history = rec.history();
/// assert_eq!(history.len(), 1);
/// ```
#[derive(Default)]
pub struct Recorder {
    commits: Mutex<Vec<CommittedTxn>>,
    applied: Mutex<Vec<AppliedLog>>,
}

impl Recorder {
    /// Creates a detached recorder (attach it yourself via
    /// [`StateStore::set_recorder`]).
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder::default())
    }

    /// Creates a recorder and attaches it to `store`.
    pub fn attach(store: &StateStore) -> Arc<Recorder> {
        let rec = Recorder::new();
        store.set_recorder(Arc::<Recorder>::clone(&rec));
        rec
    }

    /// Creates a recorder and attaches it to any [`StateBackend`] engine
    /// (the tap is part of the backend contract, so the same audit runs
    /// against 2PL and epoch-batched stores alike).
    pub fn attach_backend(store: &dyn StateBackend) -> Arc<Recorder> {
        let rec = Recorder::new();
        store.set_recorder(Arc::<Recorder>::clone(&rec));
        rec
    }

    /// Snapshot of everything recorded so far.
    pub fn history(&self) -> History {
        History {
            txns: self.commits.lock().clone(),
            applied: self.applied.lock().clone(),
        }
    }

    /// Number of commits recorded so far.
    pub fn commit_count(&self) -> usize {
        self.commits.lock().len()
    }

    /// Number of applied logs recorded so far.
    pub fn applied_count(&self) -> usize {
        self.applied.lock().len()
    }
}

impl HistorySink for Recorder {
    fn on_commit(&self, rec: CommitRecord) {
        self.commits.lock().push(CommittedTxn {
            commit_index: rec.commit_index,
            thread: rec.thread,
            deps: rec.deps,
            writes: rec.writes,
        });
    }

    fn on_apply(&self, deps: &DepVector, writes: &[StateWrite]) {
        self.applied.lock().push(AppliedLog {
            deps: deps.clone(),
            writes: writes.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn recorder_sees_writing_txns_only() {
        let store = StateStore::new(8);
        let rec = Recorder::attach(&store);
        store.transaction(|txn| txn.read(b"nope")); // read-only: no log
        store.transaction(|txn| {
            txn.write_u64(Bytes::from_static(b"a"), 1)?;
            Ok(())
        });
        store.transaction(|txn| {
            txn.write_u64(Bytes::from_static(b"b"), 2)?;
            Ok(())
        });
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.txns[0].commit_index, 0);
        assert_eq!(h.txns[1].commit_index, 1);
        assert!(h.txns.iter().all(|t| t.writes.len() == 1));
    }

    #[test]
    fn recorder_sees_applied_logs() {
        let head = StateStore::new(8);
        let replica = StateStore::new(8);
        let rec = Recorder::attach(&replica);
        let out = head.transaction(|txn| {
            txn.write_u64(Bytes::from_static(b"a"), 1)?;
            Ok(())
        });
        let log = out.log.unwrap();
        replica.apply_writes(&log.deps, &log.writes);
        assert_eq!(rec.applied_count(), 1);
        assert_eq!(rec.commit_count(), 0, "applies are not commits");
    }

    #[test]
    fn clear_recorder_stops_reporting() {
        let store = StateStore::new(8);
        let rec = Recorder::attach(&store);
        store.transaction(|txn| {
            txn.write_u64(Bytes::from_static(b"a"), 1)?;
            Ok(())
        });
        store.clear_recorder();
        store.transaction(|txn| {
            txn.write_u64(Bytes::from_static(b"a"), 2)?;
            Ok(())
        });
        assert_eq!(rec.commit_count(), 1);
    }

    #[test]
    fn min_partitions_covers_all_entries() {
        let h = History::from_logs([(
            DepVector::from_entries(vec![(3, 0), (7, 2)]).unwrap(),
            vec![],
        )]);
        assert_eq!(h.min_partitions(), 8);
        assert_eq!(History::default().min_partitions(), 0);
    }
}
